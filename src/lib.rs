//! `pbrs` — Piggybacked-RS erasure codes and the Facebook warehouse-cluster
//! recovery-traffic study, reproduced in Rust.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`gf`] — GF(2^8) arithmetic and matrices ([`pbrs_gf`]);
//! * [`erasure`] — the [`erasure::ErasureCode`] trait, Reed–Solomon,
//!   replication and LRC baselines ([`pbrs_erasure`]);
//! * [`code`] — the Piggybacked-RS code, the paper's contribution
//!   ([`pbrs_core`]);
//! * [`cluster`] — the warehouse-cluster simulator ([`pbrs_cluster`]);
//! * [`trace`] — calibrated synthetic traces, statistics and report writers
//!   ([`pbrs_trace`]).
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison of every figure.
//!
//! # Quick start
//!
//! ```
//! use pbrs::prelude::*;
//!
//! # fn main() -> Result<(), pbrs::erasure::CodeError> {
//! // Encode a stripe with the paper's proposed (10, 4) Piggybacked-RS code.
//! let code = PiggybackedRs::new(10, 4)?;
//! let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 64]).collect();
//! let mut stripe = Stripe::from_encoding(&code, &data)?;
//!
//! // Lose a block, repair it, and observe the reduced download.
//! stripe.erase(7);
//! let outcome = code.repair(7, stripe.as_slice())?;
//! assert_eq!(outcome.shard, data[7]);
//! assert!(outcome.metrics.bytes_transferred < 10 * 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use pbrs_cluster as cluster;
pub use pbrs_core as code;
pub use pbrs_erasure as erasure;
pub use pbrs_gf as gf;
pub use pbrs_trace as trace;

/// Convenient single-import prelude with the most frequently used items.
pub mod prelude {
    pub use pbrs_core::{PiggybackDesign, PiggybackedRs, SavingsReport};
    pub use pbrs_erasure::{
        CodeError, CodeParams, ErasureCode, Lrc, LrcParams, ReedSolomon, RepairMetrics,
        RepairPlan, Replication, Stripe,
    };
    pub use pbrs_gf::Gf256;
}
