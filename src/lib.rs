//! `pbrs` — Piggybacked-RS erasure codes and the Facebook warehouse-cluster
//! recovery-traffic study, reproduced in Rust.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`gf`] — GF(2^8) arithmetic and matrices ([`pbrs_gf`]);
//! * [`erasure`] — the [`erasure::ErasureCode`] trait, the zero-copy shard
//!   views ([`erasure::ShardSet`] / [`erasure::ShardSetMut`] /
//!   [`erasure::ShardBuffer`]), the [`erasure::CodeSpec`] naming scheme, and
//!   the Reed–Solomon / replication / LRC baselines ([`pbrs_erasure`]);
//! * [`code`] — the Piggybacked-RS code and the unified
//!   [`code::registry`] that builds any code from a spec ([`pbrs_core`]);
//! * [`cluster`] — the warehouse-cluster simulator ([`pbrs_cluster`]);
//! * [`trace`] — calibrated synthetic traces, statistics and report writers
//!   ([`pbrs_trace`]);
//! * [`obs`] — the observability core: lock-free latency histograms,
//!   per-stage request timers, a named metric registry, and the bounded
//!   structured event journal ([`pbrs_obs`]);
//! * [`store`] — a file-backed erasure-coded block store with degraded
//!   reads and a background repair daemon ([`pbrs_store`]);
//! * [`chunkd`] — a per-"disk" TCP chunk server and client, so a store can
//!   mount remote disks and repair over real sockets ([`pbrs_chunkd`]);
//! * [`gateway`] — a streaming object gateway in front of the store: a
//!   readiness-based reactor serving `PUT`/`GET`/`DELETE` stripe by
//!   stripe over length-prefixed frames ([`pbrs_gateway`]).
//!
//! See the `examples/` directory for runnable end-to-end scenarios.
//!
//! # Quick start
//!
//! Codes are selected by spec string through one registry — `"rs-10-4"`,
//! `"piggyback-10-4"`, `"lrc-10-2-4"`, `"rep-3"` — and every code offers
//! both the classic owned-`Vec` API and an allocation-free core
//! (`encode_into` / `reconstruct_in_place` / `repair_into`) over borrowed
//! shard views:
//!
//! ```
//! use pbrs::prelude::*;
//!
//! # fn main() -> Result<(), pbrs::erasure::CodeError> {
//! // The paper's proposed (10, 4) Piggybacked-RS code, built by name.
//! let code = build_code("piggyback-10-4")?;
//!
//! // Zero-copy encode: the whole stripe lives in one contiguous buffer and
//! // parity is written in place right behind the data it protects.
//! let (k, n) = (10, 14);
//! let mut stripe = ShardBuffer::zeroed(n, 64);
//! for i in 0..k {
//!     stripe.shard_mut(i).fill(i as u8);
//! }
//! let (data, mut parity) = stripe.split_mut(k);
//! code.encode_into(&data, &mut parity)?;
//!
//! // A machine holding block 7 fails: rebuild just that block, reading
//! // ~30% fewer bytes than the production RS code would.
//! let mut rebuilt = vec![0u8; 64];
//! code.repair_into(7, &stripe.as_set(), &mut rebuilt)?;
//! assert_eq!(rebuilt, vec![7u8; 64]);
//!
//! // The repair plan prices that rebuild for the simulator: 6.5 or 7.0
//! // shard-equivalents instead of RS's 10.
//! let mut available = vec![true; n];
//! available[7] = false;
//! let plan = code.repair_plan(7, &available)?;
//! assert!(plan.total_fraction() < 10.0);
//! # Ok(())
//! # }
//! ```
//!
//! The owned-`Vec` methods ([`erasure::ErasureCode::encode`],
//! [`erasure::ErasureCode::reconstruct`], [`erasure::ErasureCode::repair`])
//! remain available as thin wrappers over the zero-copy core, so existing
//! call sites keep working.
//!
//! # Kernel backends: how fast the bytes move
//!
//! Every parity byte above was produced by the GF(2^8) bulk kernels in
//! [`gf::slice_ops`]. They dispatch once per process to the fastest
//! implementation the CPU supports — `scalar` (256-entry lookup rows, the
//! reference oracle), `swar` (portable bit-sliced blocks), or the x86-64
//! `pshufb` split-nibble paths `ssse3`/`avx2` — and encodes run through
//! the cache-blocked multi-output [`gf::slice_ops::matrix_mul_into`],
//! which reads each data shard once for *all* parity outputs. All
//! backends are bit-identical (property-tested against the scalar
//! oracle); only throughput differs.
//!
//! Set the `PBRS_GF_BACKEND` environment variable to `scalar`, `swar`,
//! `ssse3`, `avx2` or `auto` to pin the choice — overrides naming a
//! backend this CPU lacks fall back to auto-detection, so a pinned config
//! is portable. Benchmarks can switch programmatically:
//!
//! ```
//! use pbrs::gf::backend;
//!
//! // What is this process encoding with, and what could it use?
//! println!("active gf backend: {}", backend::active());
//! for candidate in backend::supported() {
//!     println!("supported: {candidate}");
//! }
//! ```
//!
//! `cargo run --release -p pbrs-bench --bin gf_kernels` measures every
//! supported backend (and multi-output vs row-at-a-time encode) and
//! writes the machine-readable `BENCH_gf_kernels.json`.
//!
//! # Storing real bytes
//!
//! The [`store`] crate turns the codecs into an embeddable block store: one
//! directory per "disk", fixed-size stripes of CRC-checksummed chunk files,
//! transparent degraded reads, and a background repair daemon whose
//! counters reproduce the paper's repair-traffic savings on real file I/O
//! (see `examples/local_store.rs` for the full lose-a-disk cycle):
//!
//! ```
//! use pbrs::prelude::*;
//! use pbrs::store::testing::TempDir;
//!
//! # fn main() -> Result<(), pbrs::store::StoreError> {
//! let dir = TempDir::new("facade-quickstart");
//! let store = BlockStore::open(
//!     StoreConfig::new(dir.path().join("store"), "piggyback-10-4".parse().unwrap())
//!         .chunk_len(4096),
//! )?;
//!
//! let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
//! store.put("dataset", &payload[..])?;
//!
//! // Lose a disk: reads degrade transparently along the cheapest repair
//! // path, and the helper bytes that crossed disks are counted.
//! std::fs::remove_dir_all(store.disk_path(0)).unwrap();
//! assert_eq!(store.get("dataset")?, payload);
//! assert!(store.metrics().degraded_helper_bytes > 0);
//! # Ok(())
//! # }
//! ```
//!
//! # Putting the network back in the picture
//!
//! The paper's numbers are about bytes crossing a *network* during
//! recovery. The [`chunkd`] crate closes that gap: each "disk" can be a
//! TCP chunk server ([`chunkd::ChunkServer`]), mounted into a store as a
//! [`chunkd::RemoteDisk`] via [`store::BlockStore::open_with_backends`].
//! The wire protocol serves exactly the byte ranges
//! [`erasure::ErasureCode::repair_reads`] names — half-chunks for
//! Piggybacked-RS — and per-connection counters
//! ([`store::BlockStore::socket_counters`]) report the helper bytes that
//! actually crossed each socket. `examples/networked_repair.rs` wipes one
//! remote disk and measures the paper's ~30 % saving on those counters.
//!
//! # Gateway: serving objects over the wire
//!
//! The [`gateway`] crate puts a network front door on the store. A
//! [`gateway::Gateway`] is a single reactor thread multiplexing
//! non-blocking sockets with `poll(2)` plus a small worker pool doing the
//! erasure work; objects stream **stripe by stripe** in both directions,
//! so a 10 GiB `GET` holds O(stripe) gateway memory, not O(object).
//! Backpressure is explicit: a global admission cap sheds with a `BUSY`
//! status (never silent queueing), and per-connection stripe budgets keep
//! one slow client from ballooning the output queues. Every `GET` stream
//! ends by reporting how many stripes were served *degraded* — the
//! paper's recovery cost, measured at the serving edge:
//!
//! ```
//! use std::sync::Arc;
//! use pbrs::prelude::*;
//! use pbrs::store::testing::TempDir;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = TempDir::new("facade-gateway");
//! let store = Arc::new(BlockStore::open(
//!     StoreConfig::new(dir.path().join("store"), "piggyback-4-2".parse().unwrap())
//!         .chunk_len(1024),
//! )?);
//! let gw = Gateway::serve(Arc::clone(&store), "127.0.0.1:0", GatewayConfig::default())?;
//!
//! let mut client = GatewayClient::connect(gw.local_addr())?;
//! let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
//! client.put("dataset", &payload)?;
//!
//! // Lose a disk: the gateway keeps serving, and says it degraded.
//! std::fs::remove_dir_all(store.disk_path(0)).unwrap();
//! let got = client.get("dataset")?;
//! assert_eq!(got.data, payload);
//! assert!(got.degraded_stripes > 0);
//! # Ok(())
//! # }
//! ```
//!
//! `cargo run --release -p pbrs-bench --bin load_gateway` drives a
//! gateway from hundreds of concurrent connections (closed- or open-loop,
//! zipfian object popularity, configurable degraded fraction) and writes
//! `BENCH_gateway.json` with p50/p95/p99 latency split healthy vs
//! degraded. `OPERATIONS.md` documents the knobs and the metrics schema.
//!
//! # Placement & racks
//!
//! The paper's network problem is *made* by placement: §2.1's rack-disjoint
//! layout puts every block of a stripe in a different rack, so every helper
//! byte of a recovery crosses a top-of-rack switch. The [`placement`] crate
//! is the one model of that decision, shared by the simulator and the
//! store: a [`placement::RackMap`] groups a disk (or machine) pool into
//! named racks, and a [`placement::PlacementPolicy`] — `rack-disjoint`,
//! `rack-aware` (grouped), or `identity` — deterministically assigns each
//! stripe its disk set.
//!
//! A store can mount a backend pool *larger* than the code width
//! ([`store::BlockStore::open_with_backends`] takes the rack map and
//! policy), persists each stripe's placement in its manifest, and repairs
//! *locality-first*: helper choice prefers same-rack survivors when the
//! code allows it ([`erasure::ErasureCode::repair_reads_ranked`]), with
//! every helper byte accounted intra-rack vs cross-rack down to per-socket
//! counters. `examples/rack_aware_repair.rs` stands up 14 racks of chunkd
//! servers, kills a disk, and prints the paper-style cross-rack traffic
//! table for both codes under both policies — Piggybacked-RS moves ~33 %
//! fewer cross-rack bytes under rack-disjoint placement, and the rack-aware
//! policy keeps ~10 % of the repair traffic inside the rack.

#![forbid(unsafe_code)]

pub use pbrs_chunkd as chunkd;
pub use pbrs_cluster as cluster;
pub use pbrs_core as code;
pub use pbrs_erasure as erasure;
pub use pbrs_gateway as gateway;
pub use pbrs_gf as gf;
pub use pbrs_obs as obs;
pub use pbrs_placement as placement;
pub use pbrs_store as store;
pub use pbrs_trace as trace;

/// Convenient single-import prelude with the most frequently used items.
pub mod prelude {
    pub use pbrs_chunkd::{ChunkServer, RemoteDisk};
    pub use pbrs_core::registry::{build as build_spec, build_str as build_code, DynCode};
    pub use pbrs_core::{PiggybackDesign, PiggybackedRs, SavingsReport};
    pub use pbrs_erasure::{
        CodeError, CodeParams, CodeSpec, ErasureCode, Lrc, LrcParams, ReedSolomon, RepairMetrics,
        RepairPlan, Replication, ShardBuffer, ShardRead, ShardSet, ShardSetMut, Stripe,
    };
    pub use pbrs_gateway::{Gateway, GatewayClient, GatewayConfig, GatewayError};
    pub use pbrs_gf::Gf256;
    pub use pbrs_obs::{EventJournal, LatencyHistogram, Registry, Stage, StageTimes};
    pub use pbrs_placement::{PlacementError, PlacementMap, PlacementPolicy, RackMap};
    pub use pbrs_store::{
        BackendCounters, BlockStore, ChunkBackend, DaemonConfig, DiskState, EventKind, FaultPlan,
        FaultyBackend, HealthPolicy, LocalDisk, MetricsSnapshot, RepairDaemon, StoreConfig,
        StoreError,
    };
}
