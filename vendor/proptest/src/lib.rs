//! Minimal, vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! integer/float range strategies, `any::<T>()`, `prop_map`, and
//! `collection::vec`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name) so failures are reproducible; there is no
//! shrinking — the failing inputs are reported as-is.

#![forbid(unsafe_code)]

pub mod rng {
    //! The deterministic generator behind every test case.

    /// SplitMix64: tiny, deterministic, good enough for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test name so each test draws an
        /// independent but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h)
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample below zero");
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    use crate::arbitrary::Arbitrary;
    use crate::rng::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use core::marker::PhantomData;

    use crate::rng::TestRng;
    use crate::strategy::Any;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use core::ops::Range;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and case outcomes.

    /// Test-runner configuration (the subset the macro reads).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another input.
        Reject(String),
        /// An assertion failed — the whole test fails.
        Fail(String),
    }

    /// The outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Defines property tests. Supports the same surface syntax as upstream
/// proptest for simple argument lists:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::rng::TestRng::from_name(concat!(
                    ::core::module_path!(), "::", ::core::stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while accepted < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest: too many rejected cases in {} ({} attempts for {} accepted)",
                        ::core::stringify!($name), attempts, accepted
                    );
                    attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message)
                        ) => panic!(
                            "proptest case failed in {} (case {}): {}",
                            ::core::stringify!($name), accepted, message
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed ({}): left: {:?}, right: {:?}",
                    format!($($fmt)+), left, right
                ),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` != `{}`\n  both: {:?}",
                    stringify!($left), stringify!($right), left
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed ({}): both: {:?}", format!($($fmt)+), left),
            ));
        }
    }};
}

/// Rejects the current case (another input is generated in its place).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                String::from(stringify!($cond)),
            ));
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in 1u8..=4, f in 0.5f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn map_and_vec_compose(
            v in collection::vec(any::<u8>().prop_map(|x| x as u16 + 1), 1..8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (1..=256).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
