//! Minimal, vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! exactly the subset of the `rand 0.9` API surface the workspace uses:
//!
//! * the [`Rng`] trait with `random`, `random_range` and `random_bool`;
//! * [`SeedableRng::seed_from_u64`] and a deterministic [`rngs::StdRng`]
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`;
//! * a [`prelude`] re-exporting the above.
//!
//! Determinism matters more than stream compatibility here: the simulator's
//! tests fix seeds and assert statistical tolerances, so the generator must
//! be stable across runs and platforms, not bit-identical to upstream
//! `rand`.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of randomness, with the sampling helpers the workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a uniformly distributed value of a primitive type.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension alias kept for import compatibility with `rand::{Rng, RngExt}`;
/// every sampling method lives directly on [`Rng`].
pub trait RngExt: Rng {}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical "uniform over the whole domain" distribution.
pub trait StandardUniform {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias of skipping the rejection step is
/// irrelevant for simulation workloads).
#[inline]
fn bounded(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, passes BigCrush, and fully deterministic from the
    /// `seed_from_u64` state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let s: i32 = rng.random_range(-4..9);
            assert!((-4..9).contains(&s));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.25).abs() < 0.01, "{rate}");
    }
}
