//! Minimal, vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, picks an iteration count that fills the
//! measurement window, and prints the mean time per iteration (plus
//! throughput when configured).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// How work is expressed for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name and an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter (the group name carries the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

/// Runs the closure under measurement and records the result for the group
/// to report after the user closure returns.
pub struct Bencher {
    measurement_window: Duration,
    last: Option<BenchStats>,
}

impl Bencher {
    /// Measures `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time a single call.
        let start = Instant::now();
        std::hint::black_box(f());
        let single = start.elapsed().max(Duration::from_nanos(50));

        let target = self.measurement_window;
        let iters = (target.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        self.last = Some(BenchStats {
            iterations: iters,
            total,
        });
    }
}

/// The measurement of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Timed iterations.
    pub iterations: u64,
    /// Total wall-clock time for all iterations.
    pub total: Duration,
}

impl BenchStats {
    fn nanos_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iterations as f64
    }
}

fn human_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn report(label: &str, stats: BenchStats, throughput: Option<Throughput>) {
    let per_iter = stats.nanos_per_iter();
    let mut line = format!(
        "{label:<50} {:>12}/iter ({} iters)",
        human_time(per_iter),
        stats.iterations
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(b) => {
                format!(
                    "{:.1} MiB/s",
                    b as f64 / (per_iter / 1e9) / (1024.0 * 1024.0)
                )
            }
            Throughput::Elements(e) => format!("{:.0} elem/s", e as f64 / (per_iter / 1e9)),
        };
        line.push_str(&format!("  [{per_sec}]"));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the work-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the sample count is fixed here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the window is fixed here.
    pub fn measurement_time(&mut self, _window: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            measurement_window: self.criterion.measurement_window,
            last: None,
        };
        f(&mut bencher);
        if let Some(stats) = bencher.last {
            report(&label, stats, self.throughput);
        }
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short enough that `cargo bench` over the whole workspace stays
            // interactive; long enough for stable means on µs-scale kernels.
            measurement_window: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name.to_string()).bench_function("", f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
