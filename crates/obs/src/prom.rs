//! Prometheus text exposition (format version 0.0.4) rendering helpers.
//!
//! These are append-style building blocks: a caller with a fixed metric
//! struct walks its fields and emits `# TYPE` headers, samples, and full
//! histogram families into one `String`. Histogram inputs are the
//! microsecond-valued [`HistogramSnapshot`]s from [`crate::hist`]; `le`
//! boundaries are emitted in **seconds**, per Prometheus convention.
//! Only non-empty buckets are emitted (buckets are cumulative, so
//! skipping empty ones is lossless), plus the mandatory `+Inf` bucket.

use crate::hist::{bucket_bounds, bucket_index, HistogramSnapshot};

/// Append a `# TYPE name kind` header line.
pub fn type_line(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Append one `name{labels} value` sample line. Pass `&[]` for no
/// labels. Integral values render without a fraction.
pub fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    write_labels(out, labels, None);
    out.push(' ');
    push_f64(out, value);
    out.push('\n');
}

/// An exemplar: one concrete observation, linked to the trace that
/// produced it, to attach to the histogram bucket containing it —
/// rendered in OpenMetrics text syntax
/// (`..._bucket{le="0.05"} 12 # {trace_id="<id>"} 0.0437`). Attach the
/// retained trace of a slow root to the p99-region bucket and a bad
/// percentile becomes a link to a full causal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Hex trace id (as rendered by `TraceId`'s `Display`).
    pub trace_id: String,
    /// The exemplar observation in microseconds (the histogram's unit).
    pub value_us: u64,
}

/// Append a full histogram family member for one label set: cumulative
/// `_bucket` lines (seconds, non-empty buckets plus `+Inf`), `_sum`
/// (seconds) and `_count`.
pub fn histogram_samples(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    histogram_samples_with_exemplar(out, name, labels, snap, None);
}

/// [`histogram_samples`], with an optional [`Exemplar`] appended to the
/// first emitted bucket whose boundary covers the exemplar value (or to
/// `+Inf` if none does).
pub fn histogram_samples_with_exemplar(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
    exemplar: Option<&Exemplar>,
) {
    let ex_bucket = exemplar.map(|e| bucket_index(e.value_us));
    let mut ex_written = false;
    let mut cum = 0u64;
    for (index, count) in snap.nonempty_buckets() {
        cum += count;
        let (_, hi) = bucket_bounds(index);
        // Upper bound in seconds; hi is inclusive so the boundary is hi itself.
        let le = hi as f64 / 1e6;
        out.push_str(name);
        out.push_str("_bucket");
        write_labels(out, labels, Some(&format_le(le)));
        out.push(' ');
        push_f64(out, cum as f64);
        if let (Some(ex), Some(target)) = (exemplar, ex_bucket) {
            if !ex_written && index >= target {
                write_exemplar(out, ex);
                ex_written = true;
            }
        }
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket");
    write_labels(out, labels, Some("+Inf"));
    out.push(' ');
    push_f64(out, snap.count() as f64);
    if let Some(ex) = exemplar {
        if !ex_written {
            write_exemplar(out, ex);
        }
    }
    out.push('\n');

    out.push_str(name);
    out.push_str("_sum");
    write_labels(out, labels, None);
    out.push(' ');
    push_f64(out, snap.sum() as f64 / 1e6);
    out.push('\n');

    out.push_str(name);
    out.push_str("_count");
    write_labels(out, labels, None);
    out.push(' ');
    push_f64(out, snap.count() as f64);
    out.push('\n');
}

fn write_exemplar(out: &mut String, ex: &Exemplar) {
    out.push_str(" # {trace_id=\"");
    escape_into(out, &ex.trace_id);
    out.push_str("\"} ");
    push_f64(out, ex.value_us as f64 / 1e6);
}

fn format_le(le: f64) -> String {
    // Shortest round-trip float formatting keeps boundaries exact.
    format!("{le}")
}

fn write_labels(out: &mut String, labels: &[(&str, &str)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_into(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    #[test]
    fn sample_without_labels() {
        let mut s = String::new();
        sample(&mut s, "pbrs_up", &[], 1.0);
        assert_eq!(s, "pbrs_up 1\n");
    }

    #[test]
    fn sample_with_labels_escapes() {
        let mut s = String::new();
        sample(&mut s, "pbrs_ops_total", &[("op", "get\"x\"")], 3.0);
        assert_eq!(s, "pbrs_ops_total{op=\"get\\\"x\\\"\"} 3\n");
    }

    #[test]
    fn histogram_family_is_cumulative_and_ends_at_inf() {
        let h = LatencyHistogram::new();
        h.record(5); // 5us
        h.record(5);
        h.record(2_000_000); // 2s
        let mut s = String::new();
        histogram_samples(&mut s, "d", &[("path", "healthy")], &h.snapshot());
        let lines: Vec<&str> = s.lines().collect();
        // two non-empty buckets + Inf + sum + count
        assert_eq!(lines.len(), 5, "{s}");
        assert!(lines[0].starts_with("d_bucket{path=\"healthy\",le=\"0.000005\""));
        assert!(lines[0].ends_with(" 2"));
        assert!(lines[1].ends_with(" 3"));
        assert_eq!(lines[2], "d_bucket{path=\"healthy\",le=\"+Inf\"} 3");
        assert!(lines[3].starts_with("d_sum{path=\"healthy\"} 2.00001"));
        assert_eq!(lines[4], "d_count{path=\"healthy\"} 3");
    }

    #[test]
    fn exemplar_lands_on_the_bucket_containing_its_value() {
        let h = LatencyHistogram::new();
        h.record(5);
        h.record(40_000); // 40ms — the "slow" observation
        let ex = Exemplar {
            trace_id: "00c0ffee00c0ffee".to_string(),
            value_us: 40_000,
        };
        let mut s = String::new();
        histogram_samples_with_exemplar(&mut s, "d", &[], &h.snapshot(), Some(&ex));
        let ex_lines: Vec<&str> = s
            .lines()
            .filter(|l| l.contains("# {trace_id=\"00c0ffee00c0ffee\"}"))
            .collect();
        assert_eq!(ex_lines.len(), 1, "exactly one exemplar line: {s}");
        let line = ex_lines[0];
        assert!(line.starts_with("d_bucket"), "{line}");
        assert!(
            !line.contains("le=\"0.000005\""),
            "not the fast bucket: {line}"
        );
        assert!(line.ends_with(" 0.04"), "value in seconds: {line}");
    }

    #[test]
    fn exemplar_beyond_every_bucket_falls_to_inf() {
        let h = LatencyHistogram::new();
        h.record(5);
        let ex = Exemplar {
            trace_id: "ff".to_string(),
            value_us: 10_000_000,
        };
        let mut s = String::new();
        histogram_samples_with_exemplar(&mut s, "d", &[], &h.snapshot(), Some(&ex));
        let inf = s
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("inf bucket");
        assert!(inf.contains("# {trace_id=\"ff\"} 10"), "{inf}");
    }
}
