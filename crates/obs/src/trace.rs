//! Causal request tracing: wire-propagated span trees with a
//! tail-sampling flight recorder.
//!
//! Aggregate histograms ([`crate::hist`]) answer "how slow is the p99?";
//! this module answers "why was *this* request the p99?". A
//! [`TraceCtx`] — a `(TraceId, SpanId)` pair — is minted at the front
//! door (gateway admission), threaded **by value** through the serving
//! path, and propagated across process boundaries by the wire
//! protocols. Every timed section becomes a [`SpanRecord`]: name,
//! parent, start, duration, and free-form tags (disk and rack labels,
//! degraded/hedged/fault annotations).
//!
//! Finished spans land in a bounded ring of independently-locked slots
//! (no global lock on the hot path; pushes are an atomic cursor bump
//! plus one uncontended slot lock). Nothing survives the ring unless
//! the **flight recorder** decides the completed request was
//! interesting: when a *root* span finishes, its whole tree is promoted
//! to a small retained buffer only if the op was slow (per-op
//! threshold), degraded, hedged, errored, or deadline-expired — plus a
//! configurable 1-in-N sample of healthy traffic. Overhead stays near
//! zero; every anomaly is captured whole.
//!
//! Retained trees render two ways: a structured JSON document
//! ([`retained_to_json`]) and Chrome `trace_event` format
//! ([`retained_to_chrome`]) loadable in `chrome://tracing` / Perfetto.
//!
//! This module is the workspace's **only** span-timing clock seam: all
//! `Instant`/`SystemTime` reads for span timestamps happen here (see
//! `lint.toml`'s wall-clock allowlist).

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Identifies one end-to-end request across every process it touches.
/// Always nonzero: zero is the wire encoding of "absent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Wraps a raw id; `None` for zero (reserved for "absent").
    pub fn new(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }

    /// The raw id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace. Always nonzero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// Wraps a raw id; `None` for zero (reserved for "absent").
    pub fn new(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }

    /// The raw id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The by-value trace context: which trace a unit of work belongs to and
/// which span is its parent. `Copy`, two words — cheap to thread through
/// job structs and wire envelopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The end-to-end request id.
    pub trace: TraceId,
    /// The span that child work should parent on.
    pub span: SpanId,
}

impl TraceCtx {
    /// Reconstructs a context from raw wire values; `None` if the trace
    /// id or span id is zero (the "absent" encoding).
    pub fn from_raw(trace: u64, span: u64) -> Option<TraceCtx> {
        Some(TraceCtx {
            trace: TraceId::new(trace)?,
            span: SpanId::new(span)?,
        })
    }
}

/// One finished span: a named, timed section of one process's work on
/// behalf of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span (`None` for the root).
    pub parent: Option<SpanId>,
    /// Section name (`get`, `stripe`, `chunk_io`, …).
    pub name: String,
    /// Recording process (`gateway`, `chunkd:<addr>`, …).
    pub process: String,
    /// Start time, microseconds since the Unix epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form annotations: disk/rack labels, `degraded`, `hedged`,
    /// `abandoned`, fault notes.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// The value of tag `key`, if present.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

// ---------------------------------------------------------------------
// Clocks and ids
// ---------------------------------------------------------------------

/// Epoch anchor: one wall-clock read at first use, then monotonic time
/// carries every timestamp. Spans from one process are therefore
/// mutually consistent (and monotone) even if the wall clock steps.
fn epoch_anchor() -> &'static (u64, Instant) {
    static ANCHOR: OnceLock<(u64, Instant)> = OnceLock::new();
    ANCHOR.get_or_init(|| {
        let unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (unix_us, Instant::now())
    })
}

/// Microseconds since the Unix epoch, derived from the monotonic clock
/// past the first call.
pub fn now_unix_micros() -> u64 {
    let (base_us, base) = epoch_anchor();
    base_us + base.elapsed().as_micros() as u64
}

/// Splittable-mix finalizer: decorrelates sequential counter values into
/// well-spread 64-bit ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Process-unique nonzero 64-bit id: a per-process counter seeded from
/// the wall clock, scrambled through splitmix64.
fn fresh_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        splitmix64(nanos ^ (std::process::id() as u64) << 32)
    });
    loop {
        // Relaxed: the counter only has to hand out distinct values;
        // it publishes no other memory.
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

// ---------------------------------------------------------------------
// Scoped (thread-local) context
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT_CTX: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context installed on this thread by [`ScopedCtx`], if any. This
/// is how layers below a value-threading boundary (the object-safe disk
/// trait, the event journal) observe the active trace without signature
/// changes.
pub fn current_ctx() -> Option<TraceCtx> {
    CURRENT_CTX.with(|c| c.get())
}

/// RAII guard installing a thread-local [`TraceCtx`] for the duration of
/// a scope; the previous context (if any) is restored on drop.
#[derive(Debug)]
pub struct ScopedCtx {
    prev: Option<TraceCtx>,
}

impl ScopedCtx {
    /// Installs `ctx` (a `None` leaves the current context untouched but
    /// still restores correctly, so callers can pass their optional
    /// context straight through).
    pub fn enter(ctx: Option<TraceCtx>) -> ScopedCtx {
        let prev = CURRENT_CTX.with(|c| c.get());
        if let Some(ctx) = ctx {
            CURRENT_CTX.with(|c| c.set(Some(ctx)));
        }
        ScopedCtx { prev }
    }
}

impl Drop for ScopedCtx {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_CTX.with(|c| c.set(prev));
    }
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

/// Flight-recorder and ring sizing / retention policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracerConfig {
    /// Master switch: a disabled tracer mints contexts (so wiring stays
    /// identical) but records and retains nothing.
    pub enabled: bool,
    /// Total finished spans buffered while they await their root. Must
    /// outlast the span fan-out of the requests in flight; when full,
    /// the oldest trace's spans are evicted whole (silently).
    pub ring_capacity: usize,
    /// Complete trees the flight recorder retains (oldest evicted).
    pub retain_capacity: usize,
    /// When nonzero, finished spans are also queued (bounded, oldest
    /// dropped) for another process to drain — the chunkd ship-back path.
    pub export_capacity: usize,
    /// Root duration at or above which an op is "slow" (µs), unless
    /// overridden per op in `slow_us`.
    pub default_slow_us: u64,
    /// Per-op-name overrides of the slow threshold (µs).
    pub slow_us: Vec<(String, u64)>,
    /// Retain 1 in N healthy roots (0 disables healthy sampling).
    pub healthy_sample_n: u64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: true,
            ring_capacity: 4096,
            retain_capacity: 64,
            export_capacity: 0,
            default_slow_us: 50_000,
            slow_us: Vec::new(),
            healthy_sample_n: 128,
        }
    }
}

/// One complete span tree the flight recorder decided to keep, plus why.
#[derive(Clone, Debug)]
pub struct RetainedTrace {
    /// The trace id.
    pub trace: TraceId,
    /// The root span's id.
    pub root: SpanId,
    /// The root op name (`get`, `put`, `repair`, …).
    pub op: String,
    /// Why the tree was retained (`slow`, `degraded`, `hedged`,
    /// `error`, `deadline_expired`, `sampled`).
    pub reasons: Vec<&'static str>,
    /// Every captured span of the trace (local at retention time;
    /// remote spans merge in via [`Tracer::attach_spans`]). Sorted by
    /// start time; includes the root.
    pub spans: Vec<SpanRecord>,
}

impl RetainedTrace {
    /// The root span's duration in microseconds (0 if the root span is
    /// somehow absent).
    pub fn root_dur_us(&self) -> u64 {
        self.spans
            .iter()
            .find(|s| s.id == self.root)
            .map(|s| s.dur_us)
            .unwrap_or(0)
    }

    /// Spans whose parent is `parent`, in start order.
    pub fn children_of(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect()
    }
}

/// Outcome flags the caller knows about the finished root op; combined
/// with span-tag evidence (`hedged`, `abandoned`, `fault`) to decide
/// retention.
#[derive(Clone, Copy, Debug, Default)]
pub struct RootFlags {
    /// The op was served degraded (reconstruction ran).
    pub degraded: bool,
    /// A hedged retry was issued.
    pub hedged: bool,
    /// The op failed.
    pub error: bool,
    /// The op exceeded its deadline.
    pub expired: bool,
}

/// An in-progress span: started on creation, recorded on
/// [`SpanBuilder::finish`]. Carries its own timing, so it can move
/// across threads with the work it measures.
#[derive(Debug)]
pub struct SpanBuilder {
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    start_us: u64,
    started: Instant,
    tags: Vec<(String, String)>,
}

impl SpanBuilder {
    /// The context child work should use to parent on this span.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            span: self.id,
        }
    }

    /// Adds a tag.
    pub fn tag(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.tags.push((key.into(), value.into()));
    }

    /// Microseconds elapsed since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn into_record(self, process: &str) -> SpanRecord {
        let dur_us = self.started.elapsed().as_micros() as u64;
        SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: self.name,
            process: process.to_string(),
            start_us: self.start_us,
            dur_us,
            tags: self.tags,
        }
    }

    /// Finishes the span and records it with `tracer`.
    pub fn finish(self, tracer: &Tracer) {
        tracer.record(self.into_record(&tracer.process));
    }

    /// Finishes a **root** span: records it, then runs the flight
    /// recorder's tail-sampling decision over the whole local tree.
    /// Returns whether the tree was retained.
    pub fn finish_root(self, tracer: &Tracer, flags: RootFlags) -> bool {
        tracer.finish_root(self.into_record(&tracer.process), flags)
    }
}

/// Finished spans awaiting their root, grouped by trace so a finishing
/// root collects its whole local tree in O(own spans) instead of
/// scanning every buffered span. Bounded by total span count; when
/// full, the oldest trace is evicted whole.
#[derive(Debug, Default)]
struct PendingSpans {
    by_trace: HashMap<u64, Vec<SpanRecord>>,
    /// Trace arrival order, for whole-trace eviction. May hold ids of
    /// traces already taken by their root; those are skipped on
    /// eviction and compacted away when the backlog grows.
    order: VecDeque<u64>,
    /// Total spans across `by_trace`.
    total: usize,
}

impl PendingSpans {
    fn push(&mut self, span: SpanRecord, capacity: usize) {
        let key = span.trace.as_u64();
        let entry = self.by_trace.entry(key).or_insert_with(|| {
            self.order.push_back(key);
            Vec::new()
        });
        entry.push(span);
        self.total += 1;
        while self.total > capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.by_trace.remove(&oldest) {
                self.total -= evicted.len();
            }
        }
    }

    fn take(&mut self, trace: TraceId) -> Vec<SpanRecord> {
        let spans = self.by_trace.remove(&trace.as_u64()).unwrap_or_default();
        self.total -= spans.len();
        // `order` keeps a stale id per taken trace; compact once the
        // stale share dominates so it stays proportional to the map.
        if self.order.len() > 2 * self.by_trace.len() + 64 {
            let live = &self.by_trace;
            self.order.retain(|t| live.contains_key(t));
        }
        spans
    }
}

/// Per-process span recorder: bounded pending-span buffer, tail-sampling
/// flight recorder, and (optionally) an export queue for cross-process
/// span ship-back. Instance-scoped — a test can run a gateway tracer and
/// several chunkd tracers in one OS process without crosstalk.
#[derive(Debug)]
pub struct Tracer {
    process: String,
    config: TracerConfig,
    /// Finished spans grouped by trace, awaiting their root.
    pending: Mutex<PendingSpans>,
    retained: Mutex<VecDeque<RetainedTrace>>,
    export: Mutex<VecDeque<SpanRecord>>,
    healthy_seen: AtomicU64,
    /// Roots retained since creation (all reasons).
    retained_total: AtomicU64,
}

impl Tracer {
    /// A tracer for `process` with the given policy.
    pub fn new(process: impl Into<String>, config: TracerConfig) -> Tracer {
        Tracer {
            process: process.into(),
            config,
            pending: Mutex::new(PendingSpans::default()),
            retained: Mutex::new(VecDeque::new()),
            export: Mutex::new(VecDeque::new()),
            healthy_seen: AtomicU64::new(0),
            retained_total: AtomicU64::new(0),
        }
    }

    /// A tracer that mints contexts but records nothing — the "compiled
    /// in but disabled" configuration.
    pub fn disabled(process: impl Into<String>) -> Tracer {
        Tracer::new(
            process,
            TracerConfig {
                enabled: false,
                ring_capacity: 1,
                ..TracerConfig::default()
            },
        )
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The process label stamped on recorded spans.
    pub fn process(&self) -> &str {
        &self.process
    }

    /// Roots the flight recorder has retained since creation.
    pub fn retained_total(&self) -> u64 {
        self.retained_total.load(Ordering::Relaxed)
    }

    /// Starts a new root span. With `supplied` (a client-provided
    /// context), the trace id is reused and the root parents on the
    /// client's span; otherwise a fresh trace is minted.
    pub fn root_span(&self, name: impl Into<String>, supplied: Option<TraceCtx>) -> SpanBuilder {
        let (trace, parent) = match supplied {
            Some(ctx) => (ctx.trace, Some(ctx.span)),
            None => (TraceId(fresh_id()), None),
        };
        SpanBuilder {
            trace,
            id: SpanId(fresh_id()),
            parent,
            name: name.into(),
            start_us: now_unix_micros(),
            started: Instant::now(),
            tags: Vec::new(),
        }
    }

    /// Starts a child span of `ctx`.
    pub fn span(&self, name: impl Into<String>, ctx: TraceCtx) -> SpanBuilder {
        SpanBuilder {
            trace: ctx.trace,
            id: SpanId(fresh_id()),
            parent: Some(ctx.span),
            name: name.into(),
            start_us: now_unix_micros(),
            started: Instant::now(),
            tags: Vec::new(),
        }
    }

    /// Records a finished span into the pending buffer (and export
    /// queue when configured). No-op when disabled.
    pub fn record(&self, span: SpanRecord) {
        if !self.config.enabled {
            return;
        }
        if self.config.export_capacity > 0 {
            let mut q = lock(&self.export);
            if q.len() == self.config.export_capacity {
                q.pop_front();
            }
            q.push_back(span.clone());
        }
        lock(&self.pending).push(span, self.config.ring_capacity.max(1));
    }

    /// The slow threshold (µs) for op `name`.
    pub fn slow_threshold_us(&self, name: &str) -> u64 {
        self.config
            .slow_us
            .iter()
            .find(|(op, _)| op == name)
            .map(|(_, us)| *us)
            .unwrap_or(self.config.default_slow_us)
    }

    /// Flight-recorder decision for a finished root: take the local
    /// tree from the pending buffer, decide retention from caller
    /// flags, span-tag evidence, the per-op slow threshold, and healthy
    /// sampling. Returns whether the tree was retained.
    pub fn finish_root(&self, root: SpanRecord, flags: RootFlags) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut spans = lock(&self.pending).take(root.trace);
        let mut reasons: Vec<&'static str> = Vec::new();
        if root.dur_us >= self.slow_threshold_us(&root.name) {
            reasons.push("slow");
        }
        if flags.degraded || spans.iter().any(|s| s.tag("degraded").is_some()) {
            reasons.push("degraded");
        }
        if flags.hedged || spans.iter().any(|s| s.tag("hedged").is_some()) {
            reasons.push("hedged");
        }
        if flags.error || spans.iter().any(|s| s.tag("fault").is_some()) {
            reasons.push("error");
        }
        if flags.expired {
            reasons.push("deadline_expired");
        }
        if reasons.is_empty() {
            let n = self.config.healthy_sample_n;
            // Relaxed: an independent tally; exact 1-in-N spacing under
            // contention is not part of the sampling contract.
            let seen = self.healthy_seen.fetch_add(1, Ordering::Relaxed);
            if n > 0 && seen.is_multiple_of(n) {
                reasons.push("sampled");
            }
        }
        let retain = !reasons.is_empty();
        let trace = RetainedTrace {
            trace: root.trace,
            root: root.id,
            op: root.name.clone(),
            reasons,
            spans: Vec::new(),
        };
        // The root still ships to exporters (chunkd sends its ops' roots
        // back to the gateway) but does not re-enter the pending buffer:
        // its trace is finished, and a stale entry per op would evict
        // live traces.
        if self.config.export_capacity > 0 {
            let mut q = lock(&self.export);
            if q.len() == self.config.export_capacity {
                q.pop_front();
            }
            q.push_back(root.clone());
        }
        if !retain {
            return false;
        }
        spans.push(root);
        spans.sort_by_key(|s| (s.start_us, s.id.as_u64()));
        let mut trace = trace;
        trace.spans = spans;
        let mut retained = lock(&self.retained);
        if retained.len() == self.config.retain_capacity.max(1) {
            retained.pop_front();
        }
        retained.push_back(trace);
        // Relaxed: a metrics tally sampled by readers; publishes nothing.
        self.retained_total.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Snapshot of the retained trees, oldest first.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        lock(&self.retained).iter().cloned().collect()
    }

    /// Merges externally-recorded spans (e.g. shipped back from chunkd)
    /// into any retained tree with a matching trace id, deduplicating by
    /// span id. Spans matching no retained tree are discarded. Returns
    /// how many were attached.
    pub fn attach_spans(&self, spans: Vec<SpanRecord>) -> usize {
        let mut retained = lock(&self.retained);
        let mut attached = 0;
        for span in spans {
            for tree in retained.iter_mut() {
                if tree.trace == span.trace && !tree.spans.iter().any(|s| s.id == span.id) {
                    let at = tree.spans.partition_point(|s| {
                        (s.start_us, s.id.as_u64()) <= (span.start_us, span.id.as_u64())
                    });
                    tree.spans.insert(at, span);
                    attached += 1;
                    break;
                }
            }
        }
        attached
    }

    /// Drains the export queue (spans finished since the last drain, up
    /// to the configured bound) — the chunkd ship-back primitive.
    pub fn drain_export(&self) -> Vec<SpanRecord> {
        lock(&self.export).drain(..).collect()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    json_escape_into(out, s);
    out.push('"');
}

/// Renders retained trees as a structured JSON document:
/// `{"traces":[{"trace_id","op","reasons",[spans...]}]}`, each span
/// carrying `span_id`/`parent_id` links that encode the tree.
pub fn retained_to_json(traces: &[RetainedTrace]) -> String {
    let mut out = String::from("{\"traces\":[");
    for (ti, t) in traces.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        out.push_str("{\"trace_id\":");
        push_json_str(&mut out, &t.trace.to_string());
        out.push_str(",\"root_id\":");
        push_json_str(&mut out, &t.root.to_string());
        out.push_str(",\"op\":");
        push_json_str(&mut out, &t.op);
        out.push_str(",\"root_dur_us\":");
        out.push_str(&t.root_dur_us().to_string());
        out.push_str(",\"reasons\":[");
        for (i, r) in t.reasons.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, r);
        }
        out.push_str("],\"spans\":[");
        for (si, s) in t.spans.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"span_id\":");
            push_json_str(&mut out, &s.id.to_string());
            out.push_str(",\"parent_id\":");
            match s.parent {
                Some(p) => push_json_str(&mut out, &p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            push_json_str(&mut out, &s.name);
            out.push_str(",\"process\":");
            push_json_str(&mut out, &s.process);
            out.push_str(",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&s.dur_us.to_string());
            out.push_str(",\"tags\":{");
            for (i, (k, v)) in s.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders retained trees in Chrome `trace_event` JSON (the
/// `{"traceEvents":[...]}` object form): one complete (`ph:"X"`) event
/// per span, one pid per recording process (with `process_name`
/// metadata), one tid per trace. Load the output in `chrome://tracing`
/// or [Perfetto](https://ui.perfetto.dev).
pub fn retained_to_chrome(traces: &[RetainedTrace]) -> String {
    // Stable pid per process label, in order of appearance.
    let mut pids: Vec<&str> = Vec::new();
    let mut pid_of = HashMap::new();
    for t in traces {
        for s in &t.spans {
            if !pid_of.contains_key(s.process.as_str()) {
                pid_of.insert(s.process.as_str(), pids.len() + 1);
                pids.push(&s.process);
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, process) in pids.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        out.push_str(&(pid + 1).to_string());
        out.push_str(",\"tid\":0,\"args\":{\"name\":");
        push_json_str(&mut out, process);
        out.push_str("}}");
    }
    for (ti, t) in traces.iter().enumerate() {
        for s in &t.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_str(&mut out, &s.name);
            out.push_str(",\"cat\":\"pbrs\",\"ph\":\"X\",\"ts\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.dur_us.max(1).to_string());
            out.push_str(",\"pid\":");
            out.push_str(
                &pid_of
                    .get(s.process.as_str())
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            );
            out.push_str(",\"tid\":");
            out.push_str(&(ti + 1).to_string());
            out.push_str(",\"args\":{\"trace_id\":");
            push_json_str(&mut out, &t.trace.to_string());
            out.push_str(",\"span_id\":");
            push_json_str(&mut out, &s.id.to_string());
            out.push_str(",\"parent_id\":");
            match s.parent {
                Some(p) => push_json_str(&mut out, &p.to_string()),
                None => out.push_str("null"),
            }
            for (k, v) in &s.tags {
                out.push(',');
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tracer(config: TracerConfig) -> Tracer {
        Tracer::new("test", config)
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id");
        }
    }

    #[test]
    fn scoped_ctx_nests_and_restores() {
        assert_eq!(current_ctx(), None);
        let outer = TraceCtx::from_raw(1, 2).unwrap();
        let inner = TraceCtx::from_raw(3, 4).unwrap();
        {
            let _a = ScopedCtx::enter(Some(outer));
            assert_eq!(current_ctx(), Some(outer));
            {
                let _b = ScopedCtx::enter(Some(inner));
                assert_eq!(current_ctx(), Some(inner));
                {
                    // None passes the current context through.
                    let _c = ScopedCtx::enter(None);
                    assert_eq!(current_ctx(), Some(inner));
                }
            }
            assert_eq!(current_ctx(), Some(outer));
        }
        assert_eq!(current_ctx(), None);
    }

    #[test]
    fn zero_wire_values_decode_to_absent() {
        assert_eq!(TraceCtx::from_raw(0, 5), None);
        assert_eq!(TraceCtx::from_raw(5, 0), None);
        assert!(TraceCtx::from_raw(5, 6).is_some());
    }

    #[test]
    fn degraded_root_is_retained_with_its_children() {
        let t = test_tracer(TracerConfig {
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let root = t.root_span("get", None);
        let mut child = t.span("stripe", root.ctx());
        let leaf = t.span("chunk_io", child.ctx());
        leaf.finish(&t);
        child.tag("degraded", "1");
        child.finish(&t);
        let retained = root.finish_root(
            &t,
            RootFlags {
                degraded: true,
                ..RootFlags::default()
            },
        );
        assert!(retained);
        let trees = t.retained();
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.op, "get");
        assert!(tree.reasons.contains(&"degraded"));
        assert_eq!(tree.spans.len(), 3);
        // Parent links form one tree rooted at the root span.
        let root_span = tree.spans.iter().find(|s| s.id == tree.root).unwrap();
        assert_eq!(root_span.parent, None);
        assert_eq!(tree.children_of(tree.root).len(), 1);
    }

    #[test]
    fn healthy_fast_roots_are_dropped_unless_sampled() {
        let t = test_tracer(TracerConfig {
            healthy_sample_n: 4,
            default_slow_us: u64::MAX,
            ..TracerConfig::default()
        });
        let mut kept = 0;
        for _ in 0..8 {
            let root = t.root_span("get", None);
            if root.finish_root(&t, RootFlags::default()) {
                kept += 1;
            }
        }
        assert_eq!(kept, 2, "1-in-4 sampling over 8 healthy roots");
        assert!(t.retained().iter().all(|tr| tr.reasons == vec!["sampled"]));
    }

    #[test]
    fn slow_threshold_is_per_op() {
        let t = test_tracer(TracerConfig {
            default_slow_us: 0, // everything is slow
            slow_us: vec![("put".to_string(), u64::MAX)],
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        assert!(t
            .root_span("get", None)
            .finish_root(&t, RootFlags::default()));
        assert!(!t
            .root_span("put", None)
            .finish_root(&t, RootFlags::default()));
        assert_eq!(t.retained_total(), 1);
    }

    #[test]
    fn hedged_evidence_in_span_tags_retains_the_tree() {
        let t = test_tracer(TracerConfig {
            default_slow_us: u64::MAX,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let root = t.root_span("get", None);
        let mut child = t.span("rebuild", root.ctx());
        child.tag("hedged", "disk 3 stalled");
        child.finish(&t);
        assert!(root.finish_root(&t, RootFlags::default()));
        assert_eq!(t.retained()[0].reasons, vec!["hedged"]);
    }

    #[test]
    fn disabled_tracer_records_nothing_but_mints_contexts() {
        let t = Tracer::disabled("test");
        let root = t.root_span("get", None);
        let ctx = root.ctx();
        assert_ne!(ctx.trace.as_u64(), 0);
        let leaf = t.span("chunk_io", ctx);
        leaf.finish(&t);
        assert!(!root.finish_root(
            &t,
            RootFlags {
                degraded: true,
                ..RootFlags::default()
            }
        ));
        assert!(t.retained().is_empty());
        assert!(t.drain_export().is_empty());
    }

    #[test]
    fn retained_buffer_is_bounded() {
        let t = test_tracer(TracerConfig {
            default_slow_us: 0,
            retain_capacity: 3,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        for _ in 0..10 {
            t.root_span("get", None)
                .finish_root(&t, RootFlags::default());
        }
        assert_eq!(t.retained().len(), 3);
        assert_eq!(t.retained_total(), 10);
    }

    #[test]
    fn export_queue_ships_and_drains() {
        let t = test_tracer(TracerConfig {
            export_capacity: 4,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let ctx = TraceCtx::from_raw(7, 8).unwrap();
        for _ in 0..6 {
            t.span("disk_read", ctx).finish(&t);
        }
        let drained = t.drain_export();
        assert_eq!(drained.len(), 4, "bounded, oldest dropped");
        assert!(t.drain_export().is_empty());
    }

    #[test]
    fn attach_spans_merges_remote_spans_into_retained_trees() {
        let t = test_tracer(TracerConfig {
            default_slow_us: 0,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let root = t.root_span("get", None);
        let leaf_ctx = {
            let leaf = t.span("chunk_io", root.ctx());
            let ctx = leaf.ctx();
            leaf.finish(&t);
            ctx
        };
        assert!(root.finish_root(&t, RootFlags::default()));
        // A "remote" span parented on the local leaf.
        let remote = SpanRecord {
            trace: leaf_ctx.trace,
            id: SpanId::new(0xdead).unwrap(),
            parent: Some(leaf_ctx.span),
            name: "read_range".to_string(),
            process: "chunkd:127.0.0.1:9000".to_string(),
            start_us: now_unix_micros(),
            dur_us: 42,
            tags: vec![("object".to_string(), "obj".to_string())],
        };
        // Unmatched trace ids are discarded; duplicates attach once.
        let stray = SpanRecord {
            trace: TraceId::new(0xbeef).unwrap(),
            ..remote.clone()
        };
        assert_eq!(t.attach_spans(vec![remote.clone(), stray]), 1);
        assert_eq!(t.attach_spans(vec![remote.clone()]), 0);
        let tree = &t.retained()[0];
        assert!(tree.spans.iter().any(|s| s.id == remote.id));
        assert_eq!(tree.children_of(leaf_ctx.span).len(), 1);
    }

    #[test]
    fn json_rendering_carries_the_tree() {
        let t = test_tracer(TracerConfig {
            default_slow_us: 0,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let root = t.root_span("get", None);
        let mut leaf = t.span("chunk_io", root.ctx());
        leaf.tag("disk", "3");
        leaf.tag("rack", "r\"1\"");
        leaf.finish(&t);
        root.finish_root(&t, RootFlags::default());
        let json = retained_to_json(&t.retained());
        assert!(json.starts_with("{\"traces\":["));
        assert!(json.contains("\"op\":\"get\""));
        assert!(json.contains("\"name\":\"chunk_io\""));
        assert!(json.contains("\"disk\":\"3\""));
        assert!(json.contains("\"rack\":\"r\\\"1\\\"\""), "{json}");
        assert!(json.contains("\"reasons\":[\"slow\"]"));
    }

    #[test]
    fn chrome_rendering_is_trace_event_shaped() {
        let t = test_tracer(TracerConfig {
            default_slow_us: 0,
            healthy_sample_n: 0,
            ..TracerConfig::default()
        });
        let root = t.root_span("get", None);
        let leaf = t.span("chunk_io", root.ctx());
        leaf.finish(&t);
        root.finish_root(&t, RootFlags::default());
        let chrome = retained_to_chrome(&t.retained());
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"M\""), "process metadata");
        assert!(chrome.contains("\"ph\":\"X\""), "complete events");
        assert!(chrome.contains("\"process_name\""));
        assert!(chrome.ends_with("]}"));
    }

    #[test]
    fn unix_micros_are_monotone() {
        let a = now_unix_micros();
        let b = now_unix_micros();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000_000, "after Sep 2020 in µs");
    }
}
