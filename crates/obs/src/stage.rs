//! Per-stage request timing.
//!
//! A request crossing the stack spends its latency in a handful of
//! distinguishable places: waiting in the worker queue, doing erasure
//! arithmetic, moving chunk bytes, and flushing frames onto the socket.
//! [`Stage`] names those places once for the whole workspace;
//! [`StageTimes`] is the plain accumulator a single request threads
//! through its layers; [`StageSet`] is the shared, lock-free bundle of
//! per-stage histograms those accumulators drain into.
//!
//! Overhead discipline: recording into a [`StageSet`] is a few relaxed
//! atomic adds per stage, and the set carries an `enabled` flag — when
//! disabled, [`StageSet::timer`] returns a no-op guard **without reading
//! the clock**, so a disabled set costs one relaxed load per probe point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::hist::{HistogramSnapshot, LatencyHistogram, Summary};

/// The stages a request's latency is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time between enqueueing work for a worker pool and the worker
    /// picking it up.
    Queue,
    /// Erasure arithmetic: encode, planned rebuild, reconstruct.
    Erasure,
    /// Chunk bytes moving to/from disks or chunk servers.
    ChunkIo,
    /// Writing response frames onto the client socket.
    Flush,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 4;

    /// All stages, in display order.
    pub const ALL: [Stage; Stage::COUNT] =
        [Stage::Queue, Stage::Erasure, Stage::ChunkIo, Stage::Flush];

    /// Stable snake_case name, used in metric names and JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Erasure => "erasure",
            Stage::ChunkIo => "chunk_io",
            Stage::Flush => "flush",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Erasure => 1,
            Stage::ChunkIo => 2,
            Stage::Flush => 3,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Plain per-stage microsecond accumulator for one request (or one unit
/// of work). Cheap to copy, merge, and send across threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    us: [u64; Stage::COUNT],
}

impl StageTimes {
    /// All-zero times.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `micros` to a stage.
    #[inline]
    pub fn add(&mut self, stage: Stage, micros: u64) {
        self.us[stage.index()] += micros;
    }

    /// Add a [`Duration`] to a stage.
    #[inline]
    pub fn add_duration(&mut self, stage: Stage, d: Duration) {
        self.add(stage, d.as_micros() as u64);
    }

    /// Microseconds accumulated for a stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.us[stage.index()]
    }

    /// Add another accumulator into this one, stage by stage.
    pub fn merge(&mut self, other: &StageTimes) {
        for i in 0..Stage::COUNT {
            self.us[i] += other.us[i];
        }
    }

    /// Sum across all stages.
    pub fn total(&self) -> u64 {
        self.us.iter().sum()
    }

    /// Difference `self - earlier`, saturating per stage. Used to turn a
    /// cumulative trace into a per-stripe delta.
    pub fn since(&self, earlier: &StageTimes) -> StageTimes {
        let mut out = StageTimes::default();
        for i in 0..Stage::COUNT {
            out.us[i] = self.us[i].saturating_sub(earlier.us[i]);
        }
        out
    }
}

/// A shared bundle of one latency histogram per [`Stage`], with an
/// enable flag making every probe point a near-no-op when off.
pub struct StageSet {
    hists: [LatencyHistogram; Stage::COUNT],
    enabled: AtomicBool,
}

impl Default for StageSet {
    fn default() -> Self {
        Self::new()
    }
}

impl StageSet {
    /// A new, enabled stage set.
    pub fn new() -> Self {
        Self {
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            enabled: AtomicBool::new(true),
        }
    }

    /// A new stage set that starts disabled.
    pub fn new_disabled() -> Self {
        let s = Self::new();
        // Relaxed: `s` is not shared yet; published later via Arc.
        s.enabled.store(false, Ordering::Relaxed);
        s
    }

    /// Is recording enabled?
    #[inline]
    pub fn enabled(&self) -> bool {
        // Relaxed: a sampling gate — a stale read merely records (or
        // skips) one extra sample, it guards no other memory.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record `micros` for one stage (respects the enable flag).
    #[inline]
    pub fn record(&self, stage: Stage, micros: u64) {
        if self.enabled() {
            self.hists[stage.index()].record(micros);
        }
    }

    /// Record a whole request's [`StageTimes`], one sample per stage.
    pub fn record_times(&self, times: &StageTimes) {
        if !self.enabled() {
            return;
        }
        for stage in Stage::ALL {
            self.hists[stage.index()].record(times.get(stage));
        }
    }

    /// Start timing a stage; the returned guard records on drop. When the
    /// set is disabled the guard is inert and the clock is never read.
    #[inline]
    pub fn timer(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            set: self,
            stage,
            start: if self.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Snapshot every stage's histogram.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            stages: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }
}

impl std::fmt::Debug for StageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSet")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

/// Drop guard from [`StageSet::timer`].
pub struct StageTimer<'a> {
    set: &'a StageSet,
    stage: Stage,
    start: Option<Instant>,
}

impl StageTimer<'_> {
    /// Stop early and record; equivalent to dropping the guard.
    pub fn stop(self) {}
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.set
                .record(self.stage, start.elapsed().as_micros() as u64);
        }
    }
}

/// Immutable per-stage histogram snapshots.
#[derive(Clone, Debug)]
pub struct StageSnapshot {
    stages: [HistogramSnapshot; Stage::COUNT],
}

impl StageSnapshot {
    /// Snapshot for one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// Merge another snapshot into this one, stage by stage.
    pub fn merge(&mut self, other: &StageSnapshot) {
        for i in 0..Stage::COUNT {
            self.stages[i].merge(&other.stages[i]);
        }
    }

    /// Render as a JSON object keyed by stage name, each value a
    /// [`Summary`] object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(stage.as_str());
            out.push_str("\":");
            out.push_str(&self.stage(*stage).summary().to_json());
        }
        out.push('}');
        out
    }

    /// Per-stage summaries in [`Stage::ALL`] order.
    pub fn summaries(&self) -> [(Stage, Summary); Stage::COUNT] {
        std::array::from_fn(|i| (Stage::ALL[i], self.stages[i].summary()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_times_accumulate_and_merge() {
        let mut a = StageTimes::new();
        a.add(Stage::Queue, 5);
        a.add(Stage::ChunkIo, 100);
        let mut b = StageTimes::new();
        b.add(Stage::ChunkIo, 50);
        b.add(Stage::Flush, 7);
        a.merge(&b);
        assert_eq!(a.get(Stage::Queue), 5);
        assert_eq!(a.get(Stage::ChunkIo), 150);
        assert_eq!(a.get(Stage::Flush), 7);
        assert_eq!(a.total(), 162);
    }

    #[test]
    fn since_gives_saturating_delta() {
        let mut early = StageTimes::new();
        early.add(Stage::Erasure, 10);
        let mut late = early;
        late.add(Stage::Erasure, 15);
        late.add(Stage::ChunkIo, 3);
        let d = late.since(&early);
        assert_eq!(d.get(Stage::Erasure), 15);
        assert_eq!(d.get(Stage::ChunkIo), 3);
        assert_eq!(early.since(&late).get(Stage::Erasure), 0);
    }

    #[test]
    fn disabled_set_records_nothing() {
        let set = StageSet::new_disabled();
        set.record(Stage::Queue, 100);
        {
            let _t = set.timer(Stage::Flush);
        }
        let snap = set.snapshot();
        for stage in Stage::ALL {
            assert!(snap.stage(stage).is_empty(), "{stage} not empty");
        }
    }

    #[test]
    fn timer_records_on_drop() {
        let set = StageSet::new();
        {
            let _t = set.timer(Stage::Erasure);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = set.snapshot();
        assert_eq!(snap.stage(Stage::Erasure).count(), 1);
        assert!(snap.stage(Stage::Erasure).max() >= 1_000);
    }

    #[test]
    fn record_times_takes_one_sample_per_stage() {
        let set = StageSet::new();
        let mut t = StageTimes::new();
        t.add(Stage::Queue, 10);
        t.add(Stage::Erasure, 20);
        set.record_times(&t);
        set.record_times(&t);
        let snap = set.snapshot();
        for stage in Stage::ALL {
            assert_eq!(snap.stage(stage).count(), 2, "{stage}");
        }
        assert_eq!(snap.stage(Stage::Flush).max(), 0);
    }

    #[test]
    fn stage_json_lists_all_stages() {
        let set = StageSet::new();
        set.record(Stage::ChunkIo, 42);
        let j = set.snapshot().to_json();
        for stage in Stage::ALL {
            assert!(j.contains(&format!("\"{}\":", stage.as_str())), "{j}");
        }
    }
}
