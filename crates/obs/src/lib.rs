//! `pbrs-obs`: the workspace's observability core.
//!
//! The paper's whole argument is measurement — repair and degraded-read
//! traffic *observed* on a production warehouse cluster. This crate
//! gives the serving stack the same discipline about latency that the
//! store already has about bytes:
//!
//! * [`hist`] — lock-free log-linear latency histograms with a fixed
//!   mergeable bucket layout (16 sub-buckets per octave, ≤ 6.25%
//!   relative error), exact sums for means, and interpolated
//!   `p50/p95/p99/p999`;
//! * [`stage`] — the [`stage::Stage`] vocabulary (`Queue`, `Erasure`,
//!   `ChunkIo`, `Flush`), per-request [`stage::StageTimes`]
//!   accumulators, and shared [`stage::StageSet`] histogram bundles
//!   with a near-zero-cost disable flag;
//! * [`registry`] — a named registry over counters / gauges /
//!   histograms for layers whose metrics grow organically;
//! * [`journal`] — a bounded structured [`journal::EventJournal`]
//!   (repairs, scrubs, errors, panics, with timestamps) replacing
//!   single-slot `last_error` strings;
//! * [`prom`] — Prometheus text-exposition rendering over all of the
//!   above, with histogram `le` boundaries in seconds and optional
//!   exemplars linking hot buckets to retained traces;
//! * [`trace`] — causal request tracing: wire-propagated
//!   [`trace::TraceCtx`] span trees recorded into a bounded ring, with
//!   a tail-sampling flight recorder that retains complete trees for
//!   slow/degraded/hedged/errored roots plus a 1-in-N healthy sample.
//!
//! Convention: every histogram in this workspace records
//! **microseconds**. JSON expositions carry `_us` fields; the
//! Prometheus renderer converts to seconds at the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod journal;
pub mod prom;
pub mod registry;
pub mod stage;
pub mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, Summary};
pub use journal::{Event, EventJournal, EventKind};
pub use registry::{Counter, Gauge, Registry};
pub use stage::{Stage, StageSet, StageSnapshot, StageTimes};
pub use trace::{
    RetainedTrace, RootFlags, ScopedCtx, SpanBuilder, SpanId, SpanRecord, TraceCtx, TraceId,
    Tracer, TracerConfig,
};
