//! Lock-free log-linear latency histograms.
//!
//! The layout is the HdrHistogram family's: values are bucketed into
//! octaves (powers of two), each octave split into [`SUB_COUNT`] linear
//! sub-buckets, so the relative bucket width never exceeds
//! `1 / SUB_COUNT` = 6.25%. That bound is what makes cross-checking
//! client-observed against server-recorded percentiles meaningful: two
//! histograms fed the same samples agree to within one bucket, and one
//! bucket is at most 6.25% of the value.
//!
//! Recording is a handful of relaxed atomic adds — no locks, no
//! allocation — so a [`LatencyHistogram`] can sit on the hot path of a
//! reactor or a chunk server. Reads go through [`LatencyHistogram::snapshot`],
//! which copies the buckets into a plain [`HistogramSnapshot`] that can be
//! merged, quantiled, and serialised off the hot path.
//!
//! Values are plain `u64`s; every recorder in this workspace uses
//! **microseconds**, and the Prometheus renderer in [`crate::prom`]
//! converts to seconds at the exposition boundary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` linear
/// buckets.
pub const SUB_BITS: u32 = 4;

/// Number of linear sub-buckets per octave (16): relative error ≤ 6.25%.
pub const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Number of octaves above the linear range needed to cover all of `u64`.
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total bucket count of the fixed layout (976 for `SUB_BITS = 4`).
pub const BUCKET_COUNT: usize = (OCTAVES + 1) * SUB_COUNT as usize;

/// Map a value to its bucket index.
///
/// Values below [`SUB_COUNT`] get exact unit buckets; above that, the
/// index is `(octave + 1) * SUB_COUNT + sub` where `octave` is the
/// position of the value's most significant bit minus [`SUB_BITS`] and
/// `sub` the next [`SUB_BITS`] bits below it.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let octave = msb - SUB_BITS;
        (((octave + 1) << SUB_BITS) + ((value >> octave) as u32 & (SUB_COUNT as u32 - 1))) as usize
    }
}

/// Inclusive `[lo, hi]` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index < SUB_COUNT as usize {
        (index as u64, index as u64)
    } else {
        let octave = (index >> SUB_BITS) as u32 - 1;
        let sub = (index as u64) & (SUB_COUNT - 1);
        let lo = (SUB_COUNT + sub) << octave;
        let hi = lo + ((1u64 << octave) - 1);
        (lo, hi)
    }
}

/// A lock-free histogram with the fixed log-linear bucket layout.
///
/// All mutation is relaxed atomics; `record` never blocks and never
/// allocates. Clone-free sharing is by `&` or `Arc`.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (microseconds, by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        // Relaxed: each cell is an independent monotonic counter and a
        // record publishes no other memory; snapshot() tolerates (and
        // normalises) reads that land between these four updates.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Relaxed: same contract as the bucket cells above.
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] as whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state into an immutable, mergeable snapshot.
    ///
    /// Concurrent recorders may land between the bucket reads and the
    /// aggregate reads; the snapshot normalises `count` to the bucket
    /// total so quantile walks are always internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // Relaxed: cells are independent; a recorder landing between
            // reads only skews the slice, and `count` is re-derived below.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            // Relaxed: sum/max may lag or lead the buckets by in-flight
            // records; consumers treat them as statistical aggregates.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// An immutable copy of a histogram's buckets: quantiles, mean, merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (exact, not reconstructed from buckets).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values, from the exact sum.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, linearly interpolated within the
    /// bucket that holds the target rank. Returns 0 for an empty snapshot.
    ///
    /// The result is always inside the target rank's bucket, so it is
    /// within one bucket width (≤ 6.25% relative) of the exact
    /// order-statistic.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                let (lo, hi) = bucket_bounds(i);
                let into = target - (cum - c); // 1..=c within this bucket
                let width = hi - lo;
                let off = (width as f64 * (into as f64 / c as f64)).round() as u64;
                let est = lo + off.min(width); // stays in [lo, hi], no overflow
                                               // The exact max is tracked; never report past it.
                return est.min(self.max.max(lo));
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    ///
    /// `sum` wraps on overflow, matching the relaxed `fetch_add` a live
    /// histogram would have done recording the same values.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Iterate `(bucket_index, count)` over non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The fixed five-number summary used by the JSON expositions.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            p50_us: self.p50(),
            p95_us: self.p95(),
            p99_us: self.p99(),
            p999_us: self.p999(),
            mean_us: self.mean(),
            max_us: self.max,
        }
    }
}

/// Percentile summary of one histogram, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of recorded values.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
    /// Mean from the exact sum, microseconds.
    pub mean_us: f64,
    /// Exact maximum, microseconds.
    pub max_us: u64,
}

impl Summary {
    /// Render as a flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},",
                "\"p999_us\":{},\"mean_us\":{:.1},\"max_us\":{}}}"
            ),
            self.count,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.p999_us,
            self.mean_us,
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_sub_count() {
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_partition_the_u64_line() {
        // Consecutive buckets tile [0, u64::MAX] with no gap or overlap.
        let mut expect_lo = 0u64;
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "bucket {i} lower bound");
            assert!(hi >= lo);
            if i + 1 < BUCKET_COUNT {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn index_consistent_with_bounds() {
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn relative_width_bounded() {
        for i in SUB_COUNT as usize..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / SUB_COUNT as f64 + 1e-12,
                "bucket {i}: width {width} lo {lo}"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_zeroes() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_value_round_trips_within_bucket() {
        let h = LatencyHistogram::new();
        h.record(12_345);
        let s = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(12_345));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = s.value_at_quantile(q);
            assert!(v >= lo && v <= hi, "q={q} v={v} not in [{lo},{hi}]");
        }
        assert_eq!(s.max(), 12_345);
        assert_eq!(s.sum(), 12_345);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for v in [1u64, 17, 300, 4096, 4100, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 17, 900_000, 5] {
            b.record(v);
            both.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, both.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().count(), 80_000);
    }

    #[test]
    fn summary_json_shape() {
        let h = LatencyHistogram::new();
        h.record(100);
        h.record(200);
        let j = h.snapshot().summary().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"count\":2"));
        assert!(j.contains("\"mean_us\":150.0"));
    }
}
