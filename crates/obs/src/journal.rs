//! Bounded structured event journal.
//!
//! Long-running daemons used to keep a single `last_error` slot; one
//! flaky disk would overwrite the evidence of the panic that preceded
//! it. An [`EventJournal`] keeps the last N structured [`Event`]s —
//! repairs, scrubs, scans, errors, panics — each with a wall-clock
//! timestamp, and counts what it had to drop, so "what happened while I
//! wasn't looking" has an answer bounded in memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::trace::{self, TraceId};

/// What kind of thing happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A repair job completed.
    Repair,
    /// A scrub pass completed (or found something).
    Scrub,
    /// A scan pass completed.
    Scan,
    /// An operation failed with an error.
    Error,
    /// A worker panicked (and was contained).
    Panic,
    /// A disk changed health state (Healthy/Suspect/Failed transition,
    /// circuit-breaker trip or recovery).
    DiskHealth,
}

impl EventKind {
    /// Stable snake_case name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Repair => "repair",
            EventKind::Scrub => "scrub",
            EventKind::Scan => "scan",
            EventKind::Error => "error",
            EventKind::Panic => "panic",
            EventKind::DiskHealth => "disk_health",
        }
    }

    /// Does this kind describe a failure?
    pub fn is_failure(self) -> bool {
        matches!(self, EventKind::Error | EventKind::Panic)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Wall-clock time the event was recorded.
    pub at: SystemTime,
    /// Event category.
    pub kind: EventKind,
    /// Free-form description (object name, stripe index, error text, …).
    pub detail: String,
    /// The trace that was active ([`trace::current_ctx`]) when the
    /// event was recorded, making repair/health events joinable to
    /// retained traces.
    pub trace: Option<TraceId>,
}

impl Event {
    /// Seconds since the Unix epoch (0 if the clock is before it).
    pub fn unix_secs(&self) -> u64 {
        self.at
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A bounded ring of [`Event`]s. Pushes never block longer than the
/// (short) internal lock; when full, the oldest event is dropped and
/// counted.
#[derive(Debug)]
pub struct EventJournal {
    capacity: usize,
    inner: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl EventJournal {
    /// A journal holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record an event now, tagged with the scoped trace if one is
    /// active on this thread.
    pub fn push(&self, kind: EventKind, detail: impl Into<String>) {
        let event = Event {
            at: SystemTime::now(),
            kind,
            detail: detail.into(),
            trace: trace::current_ctx().map(|ctx| ctx.trace),
        };
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.len() == self.capacity {
            inner.pop_front();
            // Relaxed: a plain overflow tally; the ring itself is guarded
            // by the mutex above.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.iter().cloned().collect()
    }

    /// Detail text of the most recent failure event (`Error` or
    /// `Panic`), if one is retained. Compat shim for callers of the old
    /// single-slot `last_error`.
    pub fn last_failure(&self) -> Option<String> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner
            .iter()
            .rev()
            .find(|e| e.kind.is_failure())
            .map(|e| e.detail.clone())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(g) => g.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted so far to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Count of retained events by kind.
    pub fn count_by_kind(&self, kind: EventKind) -> usize {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_recent_preserve_order() {
        let j = EventJournal::new(8);
        j.push(EventKind::Scan, "pass 1");
        j.push(EventKind::Repair, "obj/3");
        j.push(EventKind::Error, "disk 2 gone");
        let events = j.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Scan);
        assert_eq!(events[2].detail, "disk 2 gone");
        assert!(events[0].at <= events[2].at);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let j = EventJournal::new(3);
        for i in 0..10 {
            j.push(EventKind::Repair, format!("r{i}"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let details: Vec<_> = j.recent().into_iter().map(|e| e.detail).collect();
        assert_eq!(details, ["r7", "r8", "r9"]);
    }

    #[test]
    fn last_failure_skips_non_failures() {
        let j = EventJournal::new(8);
        assert_eq!(j.last_failure(), None);
        j.push(EventKind::Error, "first error");
        j.push(EventKind::Repair, "fixed it");
        j.push(EventKind::Scrub, "clean");
        assert_eq!(j.last_failure().as_deref(), Some("first error"));
        j.push(EventKind::Panic, "worker panic: boom");
        assert_eq!(j.last_failure().as_deref(), Some("worker panic: boom"));
    }

    #[test]
    fn events_carry_the_scoped_trace_when_one_is_active() {
        use crate::trace::{ScopedCtx, TraceCtx};
        let j = EventJournal::new(8);
        j.push(EventKind::Scan, "untagged");
        let ctx = TraceCtx::from_raw(0xabc, 0xdef).unwrap();
        {
            let _g = ScopedCtx::enter(Some(ctx));
            j.push(EventKind::Repair, "tagged");
        }
        j.push(EventKind::Scrub, "untagged again");
        let events = j.recent();
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(ctx.trace));
        assert_eq!(events[2].trace, None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let j = EventJournal::new(0);
        j.push(EventKind::Scan, "a");
        j.push(EventKind::Scan, "b");
        assert_eq!(j.len(), 1);
        assert_eq!(j.recent()[0].detail, "b");
    }

    #[test]
    fn concurrent_pushes_stay_bounded() {
        use std::sync::Arc;
        let j = Arc::new(EventJournal::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        j.push(EventKind::Repair, format!("t{t} i{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(j.len(), 16);
        assert_eq!(j.dropped(), 8 * 1000 - 16);
    }
}
