//! A named metric registry over counters, gauges and histograms.
//!
//! Layers that grow metrics organically (the chunk servers' per-op
//! timings, ad-hoc instrumentation in tests and benches) register by
//! name and get back a shared handle; the registry renders everything it
//! holds in one pass, either as a flat JSON object or as Prometheus
//! exposition text. Layers with a fixed metric struct (the gateway's
//! `GatewayMetrics`) keep their structs and use [`crate::prom`]
//! directly — the registry is for the open-ended case.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::prom;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        // Relaxed: an isolated monotonic counter; readers only ever
        // sample it, nothing is published through it.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed: same contract as `inc`.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

/// Snapshot of one registry entry.
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot (values in microseconds).
    Histogram(HistogramSnapshot),
}

/// A registry of named metrics. Cheap to clone handles out of; names
/// are stable and render in sorted order.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            // pbrs-lint: allow(panic-hygiene) -- metric kind collision is a programming error caught at registration
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            // pbrs-lint: allow(panic-hygiene) -- metric kind collision is a programming error caught at registration
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name` (values in microseconds).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.inner.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            // pbrs-lint: allow(panic-hygiene) -- metric kind collision is a programming error caught at registration
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let inner = self.inner.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        inner
            .iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Render everything as Prometheus exposition text. Each metric name
    /// is prefixed with `prefix` (pass `""` for none); histogram values
    /// are microseconds and render with `le` boundaries in seconds.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, snap) in self.snapshot() {
            let full = format!("{prefix}{name}");
            match snap {
                MetricSnapshot::Counter(v) => {
                    prom::type_line(&mut out, &full, "counter");
                    prom::sample(&mut out, &full, &[], v as f64);
                }
                MetricSnapshot::Gauge(v) => {
                    prom::type_line(&mut out, &full, "gauge");
                    prom::sample(&mut out, &full, &[], v as f64);
                }
                MetricSnapshot::Histogram(h) => {
                    prom::type_line(&mut out, &full, "histogram");
                    prom::histogram_samples(&mut out, &full, &[], &h);
                }
            }
        }
        out
    }

    /// Render everything as one flat JSON object: counters and gauges as
    /// numbers, histograms as summary sub-objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, snap)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&name);
            out.push_str("\":");
            match snap {
                MetricSnapshot::Counter(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Gauge(v) => out.push_str(&v.to_string()),
                MetricSnapshot::Histogram(h) => out.push_str(&h.summary().to_json()),
            }
        }
        out.push('}');
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        f.debug_struct("Registry")
            .field("metrics", &inner.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests").get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.gauge("alpha").set(-3);
        r.histogram("mid").record(10);
        let names: Vec<_> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn prometheus_render_has_type_lines_and_values() {
        let r = Registry::new();
        r.counter("ops_total").add(7);
        r.gauge("depth").set(4);
        r.histogram("op_duration_seconds").record(1_000_000);
        let text = r.to_prometheus("pbrs_test_");
        assert!(text.contains("# TYPE pbrs_test_ops_total counter"));
        assert!(text.contains("pbrs_test_ops_total 7"));
        assert!(text.contains("# TYPE pbrs_test_depth gauge"));
        assert!(text.contains("pbrs_test_depth 4"));
        assert!(text.contains("# TYPE pbrs_test_op_duration_seconds histogram"));
        assert!(text.contains("pbrs_test_op_duration_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn json_render_is_flat_with_histogram_summaries() {
        let r = Registry::new();
        r.counter("n").add(2);
        r.histogram("lat").record(100);
        let j = r.to_json();
        assert!(j.contains("\"n\":2"));
        assert!(j.contains("\"lat\":{\"count\":1"));
    }
}
