//! Property tests: the log-linear histogram against an exact-sort oracle.
//!
//! The claims under test are the ones the load harness relies on when it
//! cross-checks client percentiles against the gateway's:
//!
//! 1. every value lands in a bucket whose bounds contain it;
//! 2. a reported quantile falls in the same bucket as the exact
//!    order-statistic (so the error is at most one bucket width,
//!    ≤ 6.25% relative);
//! 3. quantiles are monotone in `q`;
//! 4. merging histograms is exactly recording the concatenation.

use pbrs_obs::hist::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank convention:
/// rank = ceil(q * n) clamped to [1, n], 1-indexed into the sorted data.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Latency-shaped values from raw bits: mostly small, a heavy tail, and
/// edge cases near bucket boundaries and the extremes of u64.
fn shape(raw: u64) -> u64 {
    match raw % 16 {
        0..=5 => (raw >> 4) % 1_000,                     // sub-millisecond (us)
        6..=11 => 1_000 + (raw >> 4) % 999_000,          // 1 ms .. 1 s
        12 | 13 => 1_000_000 + (raw >> 4) % 599_000_000, // 1 s .. 10 min
        14 => match (raw >> 4) % 4 {
            0 => 0,
            1 => 15, // last unit bucket
            2 => 16, // first log-linear bucket
            _ => u64::MAX,
        },
        _ => raw >> 4, // anything
    }
}

proptest! {
    #[test]
    fn every_value_is_inside_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {i} [{lo},{hi}]");
    }

    #[test]
    fn quantile_within_one_bucket_of_oracle(
        values in collection::vec(any::<u64>().prop_map(shape), 1..400),
        qs in collection::vec(0.0f64..1.0, 1..8),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in qs.into_iter().chain([0.0, 0.5, 0.95, 0.99, 1.0]) {
            let exact = exact_quantile(&sorted, q);
            let est = snap.value_at_quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                est >= lo && est <= hi,
                "q={q}: est {est} not in oracle's bucket [{lo},{hi}] (exact {exact})"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone(
        values in collection::vec(any::<u64>().prop_map(shape), 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut prev = 0u64;
        for step in 0..=40 {
            let q = step as f64 / 40.0;
            let v = snap.value_at_quantile(q);
            prop_assert!(v >= prev, "q={q}: {v} < previous {prev}");
            prev = v;
        }
        prop_assert_eq!(snap.value_at_quantile(1.0), snap.max());
    }

    #[test]
    fn merge_matches_concatenated_recording(
        a in collection::vec(any::<u64>().prop_map(shape), 1..200),
        b in collection::vec(any::<u64>().prop_map(shape), 1..200),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut concat = a;
        concat.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&concat));
    }

    #[test]
    fn mean_is_exact(values in collection::vec(0u64..10_000_000, 1..300)) {
        let snap = snapshot_of(&values);
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((snap.mean() - exact).abs() < 1e-6);
    }
}
