//! Deterministic fault injection for chunk backends.
//!
//! Real clusters live in a permanent state of partial failure — disks
//! stall, links drop, payloads rot — but loopback TCP is depressingly
//! reliable, so none of the store's failure handling is exercised unless
//! the failures are *manufactured*. A [`FaultPlan`] is a seeded,
//! scriptable schedule of per-disk, per-op faults, and a
//! [`FaultyBackend`] wraps any [`ChunkBackend`] to execute it: the same
//! plan text and seed always produce the same fault sequence, so a chaos
//! test that catches a bug is a *reproducer*, not an anecdote.
//!
//! # The plan DSL
//!
//! A plan is a `;`-separated list of rules; each rule is whitespace-
//! separated `key=value` clauses plus one fault word:
//!
//! ```text
//! disk=2 op=read stall                  # disk 2 read ops block forever
//! disk=0 op=read delay=25ms p=0.5       # half of disk 0's reads +25ms
//! disk=1 corrupt count=3                # first 3 matching ops corrupt
//! op=write error after=10               # writes fail from the 11th on
//! disk=3 op=read short                  # range reads come back truncated
//! disk=1 drop                           # connection drop (chunkd hook)
//! ```
//!
//! Clauses: `disk=N` (default: every disk), `op=read|write|verify|meta`
//! (default: every op), `p=0.0..1.0` (fire probability, seeded;
//! default 1), `after=N` (skip the first N matching ops), `count=N`
//! (fire at most N times). Fault words: `delay=DURms`, `stall`, `drop`,
//! `short`, `corrupt`, `error`.
//!
//! # Fault semantics at the backend boundary
//!
//! * **delay** — sleep, then run the real op.
//! * **stall** — block until [`FaultPlan::release`] (or forever): the
//!   disk that neither answers nor errors. Deadline wrappers above
//!   ([`crate::guard::GuardedDisk`]) or the chunkd client's request
//!   timeout are what bound the caller.
//! * **error** — the op fails with a hard [`StoreError::Io`].
//! * **drop** — a connection-level fault: the error carries
//!   [`io::ErrorKind::ConnectionAborted`], and the chunkd server kills
//!   the connection instead of answering when it sees one.
//! * **corrupt** — reads report [`ChunkStatus::Corrupt`] (the store
//!   verifies payloads, so a flipped byte and a checksum verdict are the
//!   same event at this boundary); non-reads degrade to **error**.
//! * **short** — reads report only part of the payload arriving, which
//!   the verifying backend surface turns into [`ChunkStatus::Corrupt`]
//!   with a distinct reason; non-reads degrade to **error**.
//!
//! Every fired fault is counted per rule ([`FaultPlan::fired`]) so tests
//! can assert the schedule actually executed.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::backend::{BackendCounters, ChunkBackend};
use crate::chunk::{ChunkId, ChunkRead, ChunkStatus};
use crate::error::{Result, StoreError};

/// Which backend operation a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// `read_chunk_into` / `read_chunk_range`.
    Read,
    /// `write_chunk`.
    Write,
    /// `verify_chunk`.
    Verify,
    /// Everything else: `ensure_object`, `remove_object`, `sweep_tmp`,
    /// `is_available`.
    Meta,
}

impl FaultOp {
    fn parse(s: &str) -> Option<FaultOp> {
        match s {
            "read" => Some(FaultOp::Read),
            "write" => Some(FaultOp::Write),
            "verify" => Some(FaultOp::Verify),
            "meta" => Some(FaultOp::Meta),
            _ => None,
        }
    }
}

/// What a fired rule does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Added latency before the real op runs.
    Delay(Duration),
    /// Block until the plan is released — the "neither answers nor
    /// errors" disk.
    Stall,
    /// Hard error return.
    Error,
    /// Connection-level drop (chunkd kills the connection; at the plain
    /// backend boundary this is a `ConnectionAborted` error).
    Drop,
    /// Reads report a truncated payload (surfaces as `Corrupt`).
    ShortRead,
    /// Reads report a corrupt payload.
    Corrupt,
}

/// One rule of a plan: a match predicate plus a fault.
#[derive(Debug)]
struct Rule {
    disk: Option<usize>,
    op: Option<FaultOp>,
    kind: FaultKind,
    /// Fire probability in 1/65536ths (65536 = always).
    prob: u32,
    /// Skip the first `after` matching ops.
    after: u64,
    /// Fire at most this many times.
    count: Option<u64>,
    /// Ops that matched the predicate so far.
    matched: AtomicU64,
    /// Times the rule actually fired.
    fired: AtomicU64,
}

impl Rule {
    fn matches(&self, disk: usize, op: FaultOp) -> bool {
        self.disk.is_none_or(|d| d == disk) && self.op.is_none_or(|o| o == op)
    }
}

/// A seeded, scriptable schedule of per-disk/per-op faults. Shared
/// (via `Arc`) between every [`FaultyBackend`] it drives, the chunkd
/// server hook, and the test asserting on it.
pub struct FaultPlan {
    rules: Vec<Rule>,
    seed: u64,
    /// Stall latch: stalled ops wait here until `release()`.
    released: Mutex<bool>,
    unstall: Condvar,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("rules", &self.rules.len())
            .field("seed", &self.seed)
            .field("fired", &self.fired())
            .finish()
    }
}

/// The decision [`FaultPlan::gate`] hands back after executing any
/// delay/stall part of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Fail the op with a hard I/O error.
    Error,
    /// Fail the op as a connection drop (`ConnectionAborted`).
    Drop,
    /// Report the payload corrupt (reads) / fail hard (non-reads).
    Corrupt,
    /// Report a truncated payload (reads) / fail hard (non-reads).
    ShortRead,
}

impl FaultPlan {
    /// Parses a plan from the DSL (see [the module docs](self)). The seed
    /// drives every probabilistic rule: same text + same seed = same
    /// fault sequence.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the offending clause.
    pub fn parse(text: &str, seed: u64) -> std::result::Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule_text in text.split(';') {
            let rule_text = rule_text.trim();
            if rule_text.is_empty() {
                continue;
            }
            rules.push(Self::parse_rule(rule_text)?);
        }
        if rules.is_empty() {
            return Err("fault plan has no rules".into());
        }
        Ok(FaultPlan {
            rules,
            seed,
            released: Mutex::new(false),
            unstall: Condvar::new(),
        })
    }

    fn parse_rule(text: &str) -> std::result::Result<Rule, String> {
        let mut disk = None;
        let mut op = None;
        let mut kind = None;
        let mut prob = 65536u32;
        let mut after = 0u64;
        let mut count = None;
        let set_kind = |k: FaultKind, kind: &mut Option<FaultKind>| {
            if kind.is_some() {
                return Err(format!("rule {text:?} names two faults"));
            }
            *kind = Some(k);
            Ok(())
        };
        for clause in text.split_whitespace() {
            match clause.split_once('=') {
                Some(("disk", v)) => {
                    disk = Some(v.parse().map_err(|_| format!("bad disk index {v:?}"))?);
                }
                Some(("op", v)) => {
                    op = Some(FaultOp::parse(v).ok_or_else(|| format!("unknown op {v:?}"))?);
                }
                Some(("p", v)) => {
                    let p: f64 = v.parse().map_err(|_| format!("bad probability {v:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {v:?} outside [0, 1]"));
                    }
                    prob = (p * 65536.0).round() as u32;
                }
                Some(("after", v)) => {
                    after = v.parse().map_err(|_| format!("bad after count {v:?}"))?;
                }
                Some(("count", v)) => {
                    count = Some(v.parse().map_err(|_| format!("bad fire count {v:?}"))?);
                }
                Some(("delay", v)) => {
                    set_kind(FaultKind::Delay(parse_duration(v)?), &mut kind)?;
                }
                None => match clause {
                    "stall" => set_kind(FaultKind::Stall, &mut kind)?,
                    "drop" => set_kind(FaultKind::Drop, &mut kind)?,
                    "short" => set_kind(FaultKind::ShortRead, &mut kind)?,
                    "corrupt" => set_kind(FaultKind::Corrupt, &mut kind)?,
                    "error" => set_kind(FaultKind::Error, &mut kind)?,
                    other => return Err(format!("unknown clause {other:?}")),
                },
                Some((key, _)) => return Err(format!("unknown clause key {key:?}")),
            }
        }
        let kind = kind.ok_or_else(|| format!("rule {text:?} names no fault"))?;
        Ok(Rule {
            disk,
            op,
            kind,
            prob,
            after,
            count,
            matched: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        })
    }

    /// A canned plan by name — the vocabulary `load_gateway --fault-plan`
    /// and CI speak:
    ///
    /// * `stall-one-disk` — disk 2's reads stall indefinitely;
    /// * `stall-one-disk:N` — disk N's reads stall indefinitely;
    /// * `flaky-disk` — half of disk 1's reads fail, seeded;
    /// * `slow-disk` — disk 1's reads take +25 ms.
    ///
    /// Anything else is parsed as plan DSL text.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending clause for DSL text.
    pub fn named(name: &str, seed: u64) -> std::result::Result<FaultPlan, String> {
        if let Some(disk) = name.strip_prefix("stall-one-disk:") {
            let disk: usize = disk
                .parse()
                .map_err(|_| format!("bad disk index in {name:?}"))?;
            return Self::parse(&format!("disk={disk} op=read stall"), seed);
        }
        match name {
            "stall-one-disk" => Self::parse("disk=2 op=read stall", seed),
            "flaky-disk" => Self::parse("disk=1 op=read error p=0.5", seed),
            "slow-disk" => Self::parse("disk=1 op=read delay=25ms", seed),
            dsl => Self::parse(dsl, seed),
        }
    }

    /// Releases every stalled (and future) `stall` fault: stalled ops
    /// unblock and run for real. Call at teardown so stalled server
    /// threads unwind instead of leaking past the test.
    pub fn release(&self) {
        *self.released.lock().expect("lock") = true; // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        self.unstall.notify_all();
    }

    /// Total faults fired across all rules so far.
    pub fn fired(&self) -> u64 {
        self.rules
            .iter()
            // Relaxed: stats read; per-rule totals need not be a
            // consistent cross-rule cut.
            .map(|r| r.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Runs the schedule for one op: executes any delay/stall inline and
    /// returns what (if anything) the caller must inject. First matching
    /// rule that fires wins.
    pub fn gate(&self, disk: usize, op: FaultOp) -> Option<Injected> {
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(disk, op) {
                continue;
            }
            // Relaxed RMW: the atomicity of fetch_add alone guarantees
            // unique seqs; no other memory rides on this counter.
            let seq = rule.matched.fetch_add(1, Ordering::Relaxed);
            if seq < rule.after {
                continue;
            }
            if let Some(cap) = rule.count {
                // Relaxed: advisory fast path only — the authoritative
                // cap check is the fetch_update claim below.
                if rule.fired.load(Ordering::Relaxed) >= cap {
                    continue;
                }
            }
            if rule.prob < 65536 {
                // splitmix64 over (seed, rule, seq): deterministic per
                // plan seed and op sequence, decorrelated across rules.
                let mut z = self
                    .seed
                    .wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                if (z & 0xFFFF) as u32 >= rule.prob {
                    continue;
                }
            }
            if let Some(cap) = rule.count {
                // Claim one firing slot atomically: checking the cap and
                // incrementing in one RMW, otherwise two concurrent gates
                // could both pass a load-then-add and over-fire the rule.
                let claimed = rule
                    .fired
                    // Relaxed: only this counter's own value decides.
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fired| {
                        (fired < cap).then_some(fired + 1)
                    })
                    .is_ok();
                if !claimed {
                    continue;
                }
            } else {
                // Relaxed: uncapped tally, read only by fired().
                rule.fired.fetch_add(1, Ordering::Relaxed);
            }
            match rule.kind {
                FaultKind::Delay(d) => {
                    std::thread::sleep(d);
                    return None;
                }
                FaultKind::Stall => {
                    let mut released = self.released.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                    while !*released {
                        released = self.unstall.wait(released).expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                    }
                    return None; // released: run the real op
                }
                FaultKind::Error => return Some(Injected::Error),
                FaultKind::Drop => return Some(Injected::Drop),
                FaultKind::Corrupt => return Some(Injected::Corrupt),
                FaultKind::ShortRead => return Some(Injected::ShortRead),
            }
        }
        None
    }
}

fn parse_duration(v: &str) -> std::result::Result<Duration, String> {
    if let Some(ms) = v.strip_suffix("ms") {
        return ms
            .parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|_| format!("bad duration {v:?}"));
    }
    if let Some(s) = v.strip_suffix('s') {
        return s
            .parse::<u64>()
            .map(Duration::from_secs)
            .map_err(|_| format!("bad duration {v:?}"));
    }
    Err(format!("duration {v:?} needs an ms or s suffix"))
}

/// The error an injected hard fault surfaces as.
pub fn injected_error(what: Injected) -> io::Error {
    match what {
        Injected::Drop => io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected fault: connection drop",
        ),
        _ => io::Error::other("injected fault"),
    }
}

/// A [`ChunkBackend`] that runs a [`FaultPlan`] in front of an inner
/// backend. Test/bench-only by construction: nothing in the store mounts
/// one unless the harness does.
#[derive(Debug)]
pub struct FaultyBackend {
    inner: Arc<dyn ChunkBackend>,
    plan: Arc<FaultPlan>,
    disk: usize,
}

impl FaultyBackend {
    /// Wraps `inner` as pool disk `disk` under `plan`.
    pub fn new(inner: Arc<dyn ChunkBackend>, plan: Arc<FaultPlan>, disk: usize) -> Self {
        FaultyBackend { inner, plan, disk }
    }

    /// Maps a non-read injection to its hard error.
    fn hard(&self, object: &str, what: Injected) -> StoreError {
        StoreError::io(
            format!("fault://disk-{}/{object}", self.disk),
            injected_error(what),
        )
    }

    /// Maps a read-op injection to the read result it produces.
    fn read_outcome(&self, object: &str, what: Injected) -> ChunkRead<()> {
        match what {
            Injected::Corrupt => Ok(Err(ChunkStatus::Corrupt {
                reason: "injected fault: payload corrupt".into(),
            })),
            Injected::ShortRead => Ok(Err(ChunkStatus::Corrupt {
                reason: "injected fault: short read".into(),
            })),
            hard => Err(self.hard(object, hard)),
        }
    }
}

impl ChunkBackend for FaultyBackend {
    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }

    fn is_available(&self) -> bool {
        if self.plan.gate(self.disk, FaultOp::Meta).is_some() {
            return false;
        }
        self.inner.is_available()
    }

    fn ensure_object(&self, object: &str) -> Result<()> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Meta) {
            return Err(self.hard(object, what));
        }
        self.inner.ensure_object(object)
    }

    fn remove_object(&self, object: &str) -> Result<()> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Meta) {
            return Err(self.hard(object, what));
        }
        self.inner.remove_object(object)
    }

    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<()> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Write) {
            return Err(self.hard(object, what));
        }
        self.inner.write_chunk(object, id, payload)
    }

    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Read) {
            return self.read_outcome(object, what);
        }
        self.inner.read_chunk_into(object, id, out)
    }

    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Read) {
            return self.read_outcome(object, what);
        }
        self.inner
            .read_chunk_range(object, id, chunk_len, offset, out)
    }

    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64)> {
        match self.plan.gate(self.disk, FaultOp::Verify) {
            Some(Injected::Corrupt) | Some(Injected::ShortRead) => Ok((
                ChunkStatus::Corrupt {
                    reason: "injected fault".into(),
                },
                0,
            )),
            Some(hard) => Err(self.hard(object, hard)),
            None => self.inner.verify_chunk(object, id, chunk_len),
        }
    }

    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>> {
        if let Some(what) = self.plan.gate(self.disk, FaultOp::Meta) {
            return Err(self.hard("<sweep>", what));
        }
        self.inner.sweep_tmp(min_age)
    }

    fn counters(&self) -> BackendCounters {
        self.inner.counters()
    }

    fn drain_spans(&self) -> Vec<pbrs_obs::trace::SpanRecord> {
        self.inner.drain_spans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalDisk;
    use crate::testing::TempDir;
    use std::time::Instant;

    fn local(dir: &TempDir) -> Arc<dyn ChunkBackend> {
        Arc::new(LocalDisk::new(dir.path().join("disk")))
    }

    const ID: ChunkId = ChunkId {
        stripe: 0,
        shard: 0,
    };

    fn write_one(backend: &dyn ChunkBackend) {
        backend.ensure_object("obj").unwrap();
        backend.write_chunk("obj", ID, &[7u8; 64]).unwrap();
    }

    #[test]
    fn dsl_rejects_malformed_rules() {
        for bad in [
            "",
            "disk=1",              // no fault
            "disk=x stall",        // bad index
            "op=frobnicate stall", // unknown op
            "stall drop",          // two faults
            "delay=10 disk=0",     // missing unit
            "p=1.5 error",         // probability out of range
            "banana",              // unknown clause
        ] {
            assert!(FaultPlan::parse(bad, 1).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_rule_hits_only_its_disk_and_op() {
        let dir = TempDir::new("fault-error");
        let plan = Arc::new(FaultPlan::parse("disk=1 op=read error", 9).unwrap());
        let ok = FaultyBackend::new(local(&dir), Arc::clone(&plan), 0);
        let dir2 = TempDir::new("fault-error-2");
        let bad = FaultyBackend::new(local(&dir2), Arc::clone(&plan), 1);
        write_one(&ok);
        write_one(&bad); // writes pass: the rule is op=read
        let mut buf = [0u8; 64];
        assert!(ok.read_chunk_into("obj", ID, &mut buf).is_ok());
        assert!(bad.read_chunk_into("obj", ID, &mut buf).is_err());
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn corrupt_and_short_surface_as_chunk_status() {
        let dir = TempDir::new("fault-corrupt");
        let plan = Arc::new(FaultPlan::parse("op=read corrupt count=1; op=read short", 3).unwrap());
        let disk = FaultyBackend::new(local(&dir), plan, 0);
        write_one(&disk);
        let mut buf = [0u8; 64];
        let first = disk.read_chunk_into("obj", ID, &mut buf).unwrap();
        assert!(
            matches!(first, Err(ChunkStatus::Corrupt { ref reason }) if reason.contains("corrupt")),
            "{first:?}"
        );
        // Rule 1 is exhausted (count=1); rule 2 now fires with "short".
        let second = disk.read_chunk_into("obj", ID, &mut buf).unwrap();
        assert!(
            matches!(second, Err(ChunkStatus::Corrupt { ref reason }) if reason.contains("short")),
            "{second:?}"
        );
    }

    #[test]
    fn after_skips_and_count_caps() {
        let dir = TempDir::new("fault-window");
        let plan = Arc::new(FaultPlan::parse("op=read error after=2 count=2", 5).unwrap());
        let disk = FaultyBackend::new(local(&dir), plan.clone(), 0);
        write_one(&disk);
        let mut buf = [0u8; 64];
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(disk.read_chunk_into("obj", ID, &mut buf).is_ok());
        }
        assert_eq!(outcomes, [true, true, false, false, true, true]);
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn probability_is_deterministic_under_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse("op=read error p=0.5", seed).unwrap();
            (0..32)
                .map(|_| plan.gate(0, FaultOp::Read).is_some())
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
        let fired = run(42).iter().filter(|&&f| f).count();
        assert!((4..=28).contains(&fired), "p=0.5 fired {fired}/32");
    }

    #[test]
    fn stall_blocks_until_released() {
        let dir = TempDir::new("fault-stall");
        let plan = Arc::new(FaultPlan::parse("op=read stall", 1).unwrap());
        let disk = Arc::new(FaultyBackend::new(local(&dir), Arc::clone(&plan), 0));
        write_one(disk.as_ref());
        let started = Instant::now();
        let reader = {
            let disk = Arc::clone(&disk);
            std::thread::spawn(move || {
                let mut buf = [0u8; 64];
                disk.read_chunk_into("obj", ID, &mut buf).unwrap().unwrap();
                started.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(60));
        plan.release();
        let stalled_for = reader.join().unwrap();
        assert!(
            stalled_for >= Duration::from_millis(50),
            "read returned after {stalled_for:?}, before release"
        );
    }

    #[test]
    fn named_plans_resolve() {
        assert!(FaultPlan::named("stall-one-disk", 1).is_ok());
        assert!(FaultPlan::named("stall-one-disk:4", 1).is_ok());
        assert!(FaultPlan::named("flaky-disk", 1).is_ok());
        assert!(FaultPlan::named("disk=0 op=write error", 1).is_ok());
        assert!(FaultPlan::named("no-such-plan", 1).is_err());
    }

    /// Regression: the `count=` cap used to be a load-then-add, so two
    /// threads racing through `gate` could both pass the check and
    /// over-fire the rule. The cap claim is now a single RMW; no
    /// interleaving may yield more injections than the cap.
    #[test]
    fn count_cap_holds_under_concurrent_gates() {
        for round in 0..8 {
            let plan = Arc::new(FaultPlan::parse("op=read error count=4", round).unwrap());
            let injected: usize = std::thread::scope(|s| {
                (0..8)
                    .map(|_| {
                        let plan = Arc::clone(&plan);
                        s.spawn(move || {
                            (0..64)
                                .filter(|_| plan.gate(0, FaultOp::Read).is_some())
                                .count()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(injected, 4, "round {round}: cap must be exact");
            assert_eq!(plan.fired(), 4);
        }
    }
}
