//! `pbrs-store` — a file-backed, erasure-coded block store with degraded
//! reads and a background repair daemon.
//!
//! The rest of the workspace *models* the paper's repair-traffic argument
//! (codecs, plans, a cluster simulator); this crate *executes* it against
//! real bytes on a real filesystem, so the ~30 % Piggybacked-RS saving is
//! measured on file I/O rather than predicted:
//!
//! * **Write path** — [`BlockStore::put`] streams an object into fixed-size
//!   stripes, encodes each with the zero-copy codec core
//!   ([`pbrs_erasure::ErasureCode::encode_into`]) and spreads the `k + r`
//!   chunks over one directory per "disk" as CRC-32-checksummed chunk files
//!   ([`chunk`]), tracked by a durable stripe manifest ([`manifest`]).
//! * **Read path** — [`BlockStore::get`] serves objects chunk by chunk and,
//!   when a chunk is missing or fails its checksum, transparently falls
//!   back to a *degraded read*: the code's cheapest single-failure repair,
//!   reading exactly the helper byte ranges named by
//!   [`pbrs_erasure::ErasureCode::repair_reads`] (half-chunks for
//!   Piggybacked-RS) and counting them.
//! * **Repair path** — a [`RepairDaemon`] worker pool scrubs the store,
//!   detects lost disks and corrupt chunks, rebuilds them along each code's
//!   repair plan, and exports traffic counters per code
//!   ([`MetricsSnapshot`], [`DaemonStats`]).
//! * **Pluggable disks** — every chunk touch goes through a [`ChunkBackend`]
//!   ([`backend`]): the default is the local directory-per-disk layout
//!   ([`LocalDisk`]), and the `pbrs-chunkd` crate serves the same surface
//!   over TCP so helper bytes cross real sockets (counted by
//!   [`BlockStore::socket_counters`]).
//!
//! # Placement & racks
//!
//! A store mounts a backend *pool* — possibly larger than the code's shard
//! count — grouped into named racks by a [`RackMap`] (one chunkd endpoint
//! group = one rack), and a [`PlacementPolicy`] decides which pool disks
//! each stripe's chunks land on ([`BlockStore::open_with_backends`]):
//!
//! * [`PlacementPolicy::Identity`] — shard `i` on disk `i`, the classic
//!   fixed layout ([`BlockStore::open`] uses it with one single-disk rack
//!   per backend, so every helper byte counts as cross-rack, matching the
//!   paper's §2.1 worst case);
//! * [`PlacementPolicy::RackDisjoint`] — every shard in a distinct rack,
//!   the production placement whose recovery traffic the paper measures:
//!   *all* of it crosses top-of-rack switches;
//! * [`PlacementPolicy::RackAware`] — grouped placement: stripes occupy as
//!   few racks as possible, so repairs can find same-rack helpers.
//!
//! Placement is deterministic (seeded via
//! [`store::StoreConfig::placement_seed`]) and every stripe's chosen disk
//! set is persisted in the manifest, which is the authority on reopen. The
//! repair paths are *locality-first*: helper choice prefers same-rack
//! survivors when the code allows it
//! ([`pbrs_erasure::ErasureCode::repair_reads_ranked`]), and every helper
//! byte is accounted intra-rack vs cross-rack ([`MetricsSnapshot`],
//! [`StripeRepair`], [`daemon::DaemonStats`], and per-rack socket sums via
//! [`BlockStore::rack_counters`]) — the paper's cross-rack recovery-traffic
//! split measured on real I/O. `examples/rack_aware_repair.rs` runs the
//! whole experiment against racks of chunkd servers.
//!
//! # Object lifecycle
//!
//! Objects are immutable; [`BlockStore::delete`] removes one by writing a
//! durable manifest tombstone (reads fail immediately), and the next
//! [`BlockStore::scrub`] sweeps the dead chunks from every disk and clears
//! the tombstone ([`ScrubReport::tombstones_swept`]). A deleted name is
//! immediately reusable. For large stores, [`BlockStore::scrub_partial`]
//! verifies N stripes per pass behind a persisted cursor
//! (`SCRUB.cursor`), so full-checksum sweeps can be spread over time and
//! survive restarts.
//!
//! # Durability
//!
//! What survives a power loss, and why:
//!
//! * **A committed object is fully durable.** [`BlockStore::put`] writes
//!   every chunk of every stripe durably *before* committing the manifest
//!   entry, so a manifest that lists an object implies all of its chunks
//!   hit stable storage first.
//! * **Every file lands via tmp → fsync → rename → directory fsync.** The
//!   file's own `fsync` makes its *bytes* durable, but the rename that
//!   publishes it lives in the parent directory's data blocks — without
//!   fsyncing the directory too, a crash can forget the rename and
//!   resurrect the old file (or no file) despite the data being on disk.
//!   Chunk writes ([`chunk::write_chunk`]), manifest commits
//!   ([`Manifest::save`]) and object-directory creation
//!   ([`ChunkBackend::ensure_object`]) all follow this discipline.
//! * **A crashed writer leaves only debris, never corruption.** An
//!   interrupted `put` leaves orphan chunks (its name was never committed)
//!   and possibly `*.tmp` files; an interrupted repair leaves at worst a
//!   `*.tmp` next to a still-valid old chunk. [`BlockStore::scrub`] deletes
//!   tmp files older than [`store::STALE_TMP_MIN_AGE`] and reports them
//!   ([`ScrubReport::stale_tmp_removed`]), so debris cannot accumulate or
//!   be mistaken for damage.
//! * **Worker panics are contained.** A panicking repair worker is counted
//!   as a failure (the daemon keeps running and
//!   [`RepairDaemon::wait_idle`] still terminates), and a panicking
//!   pipeline encode worker fails the `put` with
//!   [`error::StoreError::WorkerPanic`] instead of deadlocking it.
//!
//! # Example
//!
//! ```
//! use pbrs_store::testing::TempDir;
//! use pbrs_store::{BlockStore, StoreConfig};
//!
//! # fn main() -> Result<(), pbrs_store::StoreError> {
//! let dir = TempDir::new("lib-doc");
//! let store = BlockStore::open(
//!     StoreConfig::new(dir.path().join("store"), "piggyback-10-4".parse().unwrap())
//!         .chunk_len(4096),
//! )?;
//! let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
//! store.put("dataset", &payload[..])?;
//!
//! // Lose one "disk": reads still succeed, served degraded.
//! std::fs::remove_dir_all(store.disk_path(3)).unwrap();
//! assert_eq!(store.get("dataset")?, payload);
//! let metrics = store.metrics();
//! assert!(metrics.degraded_stripe_reads > 0);
//! assert!(metrics.degraded_helper_bytes > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod chunk;
pub mod crc32;
pub mod daemon;
pub mod error;
pub mod fault;
pub mod guard;
pub mod health;
pub mod manifest;
pub mod metrics;
pub mod store;
pub mod stream;
pub mod testing;

pub use backend::{BackendCounters, ChunkBackend, LocalDisk};
pub use chunk::{ChunkId, ChunkRead, ChunkStatus};
pub use daemon::{DaemonConfig, DaemonStats, RepairDaemon, ScanReport, EVENT_JOURNAL_CAPACITY};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultyBackend};
pub use guard::GuardedDisk;
pub use health::{
    Admission, DiskHealth, DiskHealthSnapshot, DiskState, HealthPolicy, HealthTracker, Outcome,
    Transition,
};
// The daemon's journal speaks pbrs-obs event types — re-exported so store
// callers can match on kinds without a separate import.
pub use error::StoreError;
pub use manifest::{Manifest, ObjectInfo};
pub use metrics::{MetricsSnapshot, StoreLatency, StoreLatencySnapshot};
pub use pbrs_obs::{Event, EventKind};
// The placement types are pbrs-placement's — re-exported so store callers
// can mount rack-aware pools without a separate import.
pub use pbrs_placement::{PlacementError, PlacementMap, PlacementPolicy, RackMap};
pub use store::{
    BlockStore, Damage, PartialScrubReport, ScrubReport, StoreConfig, StripeRepair,
    DEFAULT_CHUNK_LEN,
};
pub use stream::{ObjectReader, ObjectWriter};
