//! Small test/example utilities (no external dev-dependencies).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A scoped temporary directory under the system temp dir, removed on drop.
///
/// Used by this crate's tests, the workspace examples and the store bench
/// binaries; the name is prefixed so a crashed run's leftovers are easy to
/// identify and sweep.
///
/// # Example
///
/// ```
/// use pbrs_store::testing::TempDir;
///
/// let dir = TempDir::new("doc");
/// std::fs::write(dir.path().join("x"), b"hello").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Creates a fresh directory named after `label`, the process id and a
    /// per-process counter.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(label: &str) -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        // Relaxed: uniqueness comes from the RMW itself, not ordering.
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "pbrs-store-{label}-{}-{unique}-{nanos}",
            std::process::id()
        ));
        // pbrs-lint: allow(panic-hygiene) -- test-harness helper; failing to create the temp dir must abort the test
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory (for debugging).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let path = a.path().to_path_buf();
        drop(a);
        assert!(!path.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn keep_preserves_the_directory() {
        let dir = TempDir::new("keep");
        let path = dir.keep();
        assert!(path.is_dir());
        fs::remove_dir_all(&path).unwrap();
    }
}
