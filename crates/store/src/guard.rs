//! Deadline enforcement over any [`ChunkBackend`].
//!
//! The store's I/O is synchronous: a backend that *stalls* (rather than
//! errors) pins the calling worker for as long as the stall lasts — a
//! remote disk's request timeout bounds that for chunkd mounts, but a
//! local disk on a sick device, or any backend wrapped by a `stall`
//! fault, can hold a thread forever. A [`GuardedDisk`] wraps a backend
//! with a small executor: ops run on the executor's threads, the calling
//! worker waits at most the configured deadline, and a late op is
//! *abandoned* — the caller gets [`ChunkStatus::Missing`] (reads) or a
//! `TimedOut` error (writes) within the deadline, and the store routes
//! around the disk exactly as it routes around a dead one.
//!
//! Every outcome feeds the disk's [`DiskHealth`]: timeouts and errors
//! demote it toward Suspect/Failed, and once the breaker trips,
//! [`GuardedDisk`] sheds ordinary ops without touching the backend at
//! all (fast `Missing`), letting one probe through per interval.
//!
//! An abandoned op's thread is stuck until the backend unsticks; the
//! executor spawns a replacement (up to [`MAX_WORKERS`]) so later ops
//! still run. When every worker slot is stuck the guard fails ops
//! immediately — by then the disk has long since been demoted and the
//! breaker sheds almost everything anyway.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::backend::{BackendCounters, ChunkBackend};
use crate::chunk::{ChunkId, ChunkRead, ChunkStatus};
use crate::error::{Result, StoreError};
use crate::health::{Admission, DiskHealth, HealthTracker, Outcome, Transition};

/// Ceiling on executor threads per guarded disk. Each abandoned (stuck)
/// op burns one slot until the backend unsticks; beyond the ceiling the
/// guard fails fast instead of spawning more.
pub const MAX_WORKERS: usize = 4;

type Job = Box<dyn FnOnce() + Send>;

struct Executor {
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    /// Threads spawned so far.
    live: AtomicUsize,
    /// Threads currently inside a job (stuck ones count forever).
    busy: Arc<AtomicUsize>,
    name: String,
}

impl Executor {
    fn new(name: String) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        Executor {
            tx,
            rx: Arc::new(Mutex::new(rx)),
            live: AtomicUsize::new(0),
            busy: Arc::new(AtomicUsize::new(0)),
            name,
        }
    }

    /// Submits a job, spawning a worker if none is idle. Returns false
    /// when every worker slot is stuck in an abandoned op.
    fn submit(&self, job: Job) -> bool {
        let live = self.live.load(Ordering::Acquire);
        let busy = self.busy.load(Ordering::Acquire);
        if busy >= live {
            if live >= MAX_WORKERS {
                return false;
            }
            let rx = Arc::clone(&self.rx);
            let busy = Arc::clone(&self.busy);
            let spawned = std::thread::Builder::new()
                .name(format!("guard-{}", self.name))
                .spawn(move || loop {
                    let job = {
                        let guard = rx.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                        guard.recv()
                    };
                    let Ok(job) = job else { return };
                    busy.fetch_add(1, Ordering::AcqRel);
                    job();
                    busy.fetch_sub(1, Ordering::AcqRel);
                })
                .is_ok();
            if spawned {
                self.live.fetch_add(1, Ordering::AcqRel);
            } else if live == 0 {
                return false;
            }
        }
        self.tx.send(job).is_ok()
    }
}

/// A deadline-enforcing, health-tracking wrapper around one pool disk.
pub struct GuardedDisk {
    inner: Arc<dyn ChunkBackend>,
    deadline: Duration,
    health: Arc<HealthTracker>,
    disk: usize,
    executor: Executor,
    /// Where health transitions go (journal + metrics), if anywhere.
    on_transition: Option<Arc<dyn Fn(Transition) + Send + Sync>>,
}

impl std::fmt::Debug for GuardedDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedDisk")
            .field("inner", &self.inner.describe())
            .field("deadline", &self.deadline)
            .field("state", &self.health.disk(self.disk).state())
            .finish()
    }
}

impl GuardedDisk {
    /// Wraps `inner` as pool disk `disk`, bounding every op at
    /// `deadline` and feeding outcomes into `health`.
    pub fn new(
        inner: Arc<dyn ChunkBackend>,
        disk: usize,
        deadline: Duration,
        health: Arc<HealthTracker>,
        on_transition: Option<Arc<dyn Fn(Transition) + Send + Sync>>,
    ) -> Self {
        GuardedDisk {
            executor: Executor::new(format!("disk-{disk:02}")),
            inner,
            deadline,
            health,
            disk,
            on_transition,
        }
    }

    fn me(&self) -> &DiskHealth {
        self.health.disk(self.disk)
    }

    fn record(&self, outcome: Outcome) {
        if let Some(t) = self.health.record(self.disk, outcome) {
            if let Some(hook) = &self.on_transition {
                hook(t);
            }
        }
    }

    /// Runs `op` on the executor with a deadline; `Err(())` = timed out
    /// or no worker available (both recorded as timeouts).
    fn run_with_deadline<T: Send + 'static>(
        &self,
        deadline: Duration,
        op: impl FnOnce(&dyn ChunkBackend) -> T + Send + 'static,
    ) -> std::result::Result<T, ()> {
        let (tx, rx) = mpsc::sync_channel(1);
        let inner = Arc::clone(&self.inner);
        let submitted = self.executor.submit(Box::new(move || {
            // The receiver may be long gone (abandoned op): ignore.
            let _ = tx.send(op(inner.as_ref()));
        }));
        if !submitted {
            self.record(Outcome::Timeout);
            return Err(());
        }
        match rx.recv_timeout(deadline) {
            Ok(v) => Ok(v),
            Err(_) => {
                self.record(Outcome::Timeout);
                Err(())
            }
        }
    }

    /// Shared read-shaped flow: breaker check, deadline run, outcome
    /// recording. `shed`/`timeout` name the result for a shed op and an
    /// abandoned op respectively.
    fn guarded_read<T: Send + 'static>(
        &self,
        deadline: Duration,
        op: impl FnOnce(&dyn ChunkBackend) -> ChunkRead<T> + Send + 'static,
    ) -> ChunkRead<T> {
        match self.me().admit() {
            Admission::Shed => return Ok(Err(ChunkStatus::Missing)),
            Admission::Allow | Admission::Probe => {}
        }
        match self.run_with_deadline(deadline, op) {
            Ok(Ok(inner)) => {
                match &inner {
                    Ok(_) | Err(ChunkStatus::Missing) => self.record(Outcome::Ok),
                    Err(ChunkStatus::Corrupt { .. }) | Err(ChunkStatus::Healthy) => {
                        self.record(Outcome::Error)
                    }
                }
                Ok(inner)
            }
            // Degrade, don't fail: on a hardened store a sick disk's hard
            // read error is routed around exactly like a missing chunk —
            // the error itself lives on in the disk's health record.
            Ok(Err(_)) => {
                self.record(Outcome::Error);
                Ok(Err(ChunkStatus::Missing))
            }
            Err(()) => Ok(Err(ChunkStatus::Missing)),
        }
    }

    /// The configured deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Like [`ChunkBackend::read_chunk_range`] but bounded at `deadline`
    /// instead of the disk's configured one — the hedged-read primitive:
    /// the store gives the first-choice helper set a shorter budget and
    /// switches survivor sets when it expires.
    pub fn read_chunk_range_deadline(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
        deadline: Duration,
    ) -> ChunkRead<()> {
        let object = object.to_string();
        let len = out.len();
        let result = self.guarded_read(deadline.min(self.deadline), move |disk| {
            let mut buf = vec![0u8; len];
            disk.read_chunk_range(&object, id, chunk_len, offset, &mut buf)
                .map(|inner| inner.map(|()| buf))
        });
        match result? {
            Ok(buf) => {
                out.copy_from_slice(&buf);
                Ok(Ok(()))
            }
            Err(status) => Ok(Err(status)),
        }
    }
}

impl ChunkBackend for GuardedDisk {
    fn describe(&self) -> String {
        format!("guarded({}, {:?})", self.inner.describe(), self.deadline)
    }

    fn is_available(&self) -> bool {
        match self.me().admit() {
            Admission::Shed => false,
            Admission::Allow | Admission::Probe => self
                .run_with_deadline(self.deadline, |disk| disk.is_available())
                .unwrap_or(false),
        }
    }

    fn ensure_object(&self, object: &str) -> Result<()> {
        let name = object.to_string();
        match self.run_with_deadline(self.deadline, move |disk| disk.ensure_object(&name)) {
            Ok(result) => {
                self.record(if result.is_ok() {
                    Outcome::Ok
                } else {
                    Outcome::Error
                });
                result
            }
            Err(()) => Err(self.timeout_error(object)),
        }
    }

    fn remove_object(&self, object: &str) -> Result<()> {
        let name = object.to_string();
        match self.run_with_deadline(self.deadline, move |disk| disk.remove_object(&name)) {
            Ok(result) => result,
            Err(()) => Err(self.timeout_error(object)),
        }
    }

    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<()> {
        let name = object.to_string();
        let payload = payload.to_vec();
        match self.run_with_deadline(self.deadline, move |disk| {
            disk.write_chunk(&name, id, &payload)
        }) {
            Ok(result) => {
                self.record(if result.is_ok() {
                    Outcome::Ok
                } else {
                    Outcome::Error
                });
                result
            }
            Err(()) => Err(self.timeout_error(object)),
        }
    }

    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
        let name = object.to_string();
        let len = out.len();
        let result = self.guarded_read(self.deadline, move |disk| {
            let mut buf = vec![0u8; len];
            disk.read_chunk_into(&name, id, &mut buf)
                .map(|inner| inner.map(|()| buf))
        });
        match result? {
            Ok(buf) => {
                out.copy_from_slice(&buf);
                Ok(Ok(()))
            }
            Err(status) => Ok(Err(status)),
        }
    }

    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()> {
        self.read_chunk_range_deadline(object, id, chunk_len, offset, out, self.deadline)
    }

    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64)> {
        match self.me().admit() {
            Admission::Shed => return Ok((ChunkStatus::Missing, 0)),
            Admission::Allow | Admission::Probe => {}
        }
        let name = object.to_string();
        match self.run_with_deadline(self.deadline, move |disk| {
            disk.verify_chunk(&name, id, chunk_len)
        }) {
            Ok(Ok(verdict)) => {
                match &verdict {
                    (ChunkStatus::Corrupt { .. }, _) => self.record(Outcome::Error),
                    _ => self.record(Outcome::Ok),
                }
                Ok(verdict)
            }
            // Degrade like a read: a hard verify error reports the chunk
            // missing and charges the disk's health.
            Ok(Err(_)) => {
                self.record(Outcome::Error);
                Ok((ChunkStatus::Missing, 0))
            }
            Err(()) => Ok((ChunkStatus::Missing, 0)),
        }
    }

    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>> {
        match self.run_with_deadline(self.deadline, move |disk| disk.sweep_tmp(min_age)) {
            Ok(result) => result,
            Err(()) => Ok(Vec::new()), // nothing sweepable within deadline
        }
    }

    fn counters(&self) -> BackendCounters {
        self.inner.counters()
    }

    fn drain_spans(&self) -> Vec<pbrs_obs::trace::SpanRecord> {
        // Span shipping is cheap metadata; no deadline gate needed.
        self.inner.drain_spans()
    }
}

impl GuardedDisk {
    fn timeout_error(&self, object: &str) -> StoreError {
        StoreError::io(
            format!("guard://disk-{:02}/{object}", self.disk),
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "op on {} exceeded the {:?} deadline",
                    self.inner.describe(),
                    self.deadline
                ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalDisk;
    use crate::fault::{FaultPlan, FaultyBackend};
    use crate::health::{DiskState, HealthPolicy};
    use crate::testing::TempDir;
    use std::time::Instant;

    const ID: ChunkId = ChunkId {
        stripe: 0,
        shard: 0,
    };

    fn tracker() -> Arc<HealthTracker> {
        Arc::new(HealthTracker::new(
            4,
            HealthPolicy {
                window: 8,
                suspect_failures: 2,
                failed_failures: 6,
                probe_interval: Duration::from_secs(60),
                recovery_successes: 2,
            },
            None,
        ))
    }

    fn guarded_local(dir: &TempDir, deadline: Duration) -> (GuardedDisk, Arc<HealthTracker>) {
        let tracker = tracker();
        let disk = GuardedDisk::new(
            Arc::new(LocalDisk::new(dir.path().join("disk"))),
            0,
            deadline,
            Arc::clone(&tracker),
            None,
        );
        (disk, tracker)
    }

    #[test]
    fn healthy_ops_pass_through() {
        let dir = TempDir::new("guard-ok");
        let (disk, tracker) = guarded_local(&dir, Duration::from_secs(5));
        disk.ensure_object("obj").unwrap();
        disk.write_chunk("obj", ID, &[9u8; 128]).unwrap();
        let mut buf = [0u8; 128];
        disk.read_chunk_into("obj", ID, &mut buf).unwrap().unwrap();
        assert_eq!(buf, [9u8; 128]);
        let mut range = [0u8; 64];
        disk.read_chunk_range("obj", ID, 128, 64, &mut range)
            .unwrap()
            .unwrap();
        assert_eq!(range, [9u8; 64]);
        assert_eq!(tracker.disk(0).state(), DiskState::Healthy);
        assert_eq!(tracker.total_timeouts(), 0);
    }

    #[test]
    fn stalled_reads_return_missing_within_the_deadline_and_demote() {
        let dir = TempDir::new("guard-stall");
        let plan = Arc::new(FaultPlan::parse("op=read stall", 7).unwrap());
        let inner: Arc<dyn ChunkBackend> = Arc::new(LocalDisk::new(dir.path().join("disk")));
        inner.ensure_object("obj").unwrap();
        inner.write_chunk("obj", ID, &[1u8; 64]).unwrap();
        let tracker = tracker();
        let disk = GuardedDisk::new(
            Arc::new(FaultyBackend::new(inner, Arc::clone(&plan), 0)),
            0,
            Duration::from_millis(80),
            Arc::clone(&tracker),
            None,
        );
        let mut buf = [0u8; 64];
        let start = Instant::now();
        let first = disk.read_chunk_into("obj", ID, &mut buf).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(first, Err(ChunkStatus::Missing));
        assert!(
            elapsed < Duration::from_millis(500),
            "deadline did not bound the stall: {elapsed:?}"
        );
        // Second timeout trips the breaker (suspect_failures = 2)…
        assert_eq!(
            disk.read_chunk_into("obj", ID, &mut buf).unwrap(),
            Err(ChunkStatus::Missing)
        );
        assert_eq!(tracker.disk(0).state(), DiskState::Suspect);
        assert_eq!(tracker.total_timeouts(), 2);
        // …after which ops shed fast: the probe interval is 60 s, so the
        // next reads never touch the stalled backend.
        let t0 = Instant::now();
        let _ = disk.read_chunk_into("obj", ID, &mut buf);
        for _ in 0..8 {
            assert_eq!(
                disk.read_chunk_into("obj", ID, &mut buf).unwrap(),
                Err(ChunkStatus::Missing)
            );
        }
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "breaker must shed without waiting on the stall: {:?}",
            t0.elapsed()
        );
        assert!(tracker.disk(0).shed_count() >= 8);
        plan.release();
    }

    #[test]
    fn stalled_writes_error_within_the_deadline() {
        let dir = TempDir::new("guard-stall-write");
        let plan = Arc::new(FaultPlan::parse("op=write stall", 7).unwrap());
        let inner: Arc<dyn ChunkBackend> = Arc::new(LocalDisk::new(dir.path().join("disk")));
        inner.ensure_object("obj").unwrap();
        let tracker = tracker();
        let disk = GuardedDisk::new(
            Arc::new(FaultyBackend::new(inner, Arc::clone(&plan), 0)),
            0,
            Duration::from_millis(80),
            tracker,
            None,
        );
        let err = disk.write_chunk("obj", ID, &[0u8; 16]).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { source, .. }
                if source.kind() == std::io::ErrorKind::TimedOut),
            "{err}"
        );
        plan.release();
    }

    #[test]
    fn errors_demote_and_recovery_probes_promote() {
        let dir = TempDir::new("guard-recover");
        // First 2 reads fail hard, everything after runs clean.
        let plan = Arc::new(FaultPlan::parse("op=read error count=2", 7).unwrap());
        let inner: Arc<dyn ChunkBackend> = Arc::new(LocalDisk::new(dir.path().join("disk")));
        inner.ensure_object("obj").unwrap();
        inner.write_chunk("obj", ID, &[5u8; 64]).unwrap();
        let tracker = Arc::new(HealthTracker::new(
            1,
            HealthPolicy {
                window: 8,
                suspect_failures: 2,
                failed_failures: 6,
                probe_interval: Duration::ZERO, // every op is a probe
                recovery_successes: 2,
            },
            None,
        ));
        let disk = GuardedDisk::new(
            Arc::new(FaultyBackend::new(inner, plan, 0)),
            0,
            Duration::from_secs(5),
            Arc::clone(&tracker),
            None,
        );
        let mut buf = [0u8; 64];
        for _ in 0..2 {
            let _ = disk.read_chunk_into("obj", ID, &mut buf);
        }
        assert_eq!(tracker.disk(0).state(), DiskState::Suspect);
        // Probe interval is zero: the next ops run for real and succeed,
        // promoting the disk back.
        for _ in 0..2 {
            let _ = disk.read_chunk_into("obj", ID, &mut buf);
        }
        assert_eq!(tracker.disk(0).state(), DiskState::Healthy);
        assert_eq!(tracker.disk(0).error_count(), 2);
    }
}
