//! Error types for the block store.

use std::fmt;
use std::io;
use std::path::PathBuf;

use pbrs_erasure::CodeError;
use pbrs_placement::PlacementError;

/// Errors returned by [`crate::BlockStore`] and the repair daemon.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed on `path`.
    Io {
        /// The file or directory being accessed.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The erasure codec rejected an operation.
    Code(CodeError),
    /// The placement subsystem rejected the rack map, policy or stripe
    /// width combination.
    Placement(PlacementError),
    /// No object with this name exists in the manifest.
    ObjectNotFound {
        /// The requested object name.
        name: String,
    },
    /// The object existed but was deleted (its manifest entry is a
    /// tombstone). Distinct from [`StoreError::ObjectNotFound`] — the name
    /// was once valid — and from I/O failure: "deleted" is an answer, not
    /// a malfunction, and callers such as the gateway map it to a distinct
    /// client-visible status.
    ObjectDeleted {
        /// The deleted object name.
        name: String,
    },
    /// An object with this name already exists (objects are immutable).
    ObjectExists {
        /// The conflicting object name.
        name: String,
    },
    /// The object name contains characters the chunk layout cannot encode.
    InvalidObjectName {
        /// The rejected name.
        name: String,
        /// Which constraint it violated.
        reason: &'static str,
    },
    /// The store configuration is unusable.
    InvalidConfig {
        /// Which constraint it violated.
        reason: String,
    },
    /// The on-disk manifest could not be parsed.
    CorruptManifest {
        /// The manifest file.
        path: PathBuf,
        /// 1-based line number of the offending line (0 for file-level
        /// problems).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The manifest on disk disagrees with the opening configuration.
    ConfigMismatch {
        /// The field that disagrees (`"code"` or `"chunk_len"`).
        field: &'static str,
        /// The value recorded in the manifest.
        on_disk: String,
        /// The value the caller configured.
        configured: String,
    },
    /// A worker thread panicked while executing store work. The panic was
    /// contained (caught at the worker boundary) and surfaced as this error
    /// instead of hanging or killing the caller.
    WorkerPanic {
        /// What the worker was doing when it panicked.
        context: String,
    },
    /// Too many chunks of one stripe are lost or corrupt to rebuild it.
    StripeUnrecoverable {
        /// The owning object.
        object: String,
        /// The stripe within the object.
        stripe: u64,
        /// Chunks still readable.
        survivors: usize,
        /// Chunks the code needs.
        needed: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::Code(e) => write!(f, "codec error: {e}"),
            StoreError::Placement(e) => write!(f, "placement error: {e}"),
            StoreError::ObjectNotFound { name } => write!(f, "object {name:?} not found"),
            StoreError::ObjectDeleted { name } => write!(f, "object {name:?} was deleted"),
            StoreError::ObjectExists { name } => write!(f, "object {name:?} already exists"),
            StoreError::InvalidObjectName { name, reason } => {
                write!(f, "invalid object name {name:?}: {reason}")
            }
            StoreError::InvalidConfig { reason } => write!(f, "invalid store config: {reason}"),
            StoreError::CorruptManifest { path, line, reason } => {
                write!(
                    f,
                    "corrupt manifest {} (line {line}): {reason}",
                    path.display()
                )
            }
            StoreError::ConfigMismatch {
                field,
                on_disk,
                configured,
            } => write!(
                f,
                "store opened with {field} = {configured}, but the manifest records {on_disk}"
            ),
            StoreError::WorkerPanic { context } => {
                write!(f, "worker thread panicked during {context}")
            }
            StoreError::StripeUnrecoverable {
                object,
                stripe,
                survivors,
                needed,
            } => write!(
                f,
                "stripe {stripe} of object {object:?} is unrecoverable: \
                 {survivors} chunks survive, {needed} needed"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Code(e) => Some(e),
            StoreError::Placement(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for StoreError {
    fn from(e: CodeError) -> Self {
        StoreError::Code(e)
    }
}

impl From<PlacementError> for StoreError {
    fn from(e: PlacementError) -> Self {
        StoreError::Placement(e)
    }
}

impl StoreError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }
}

/// Shorthand result type for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
