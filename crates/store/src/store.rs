//! The block store: striped, checksummed, erasure-coded object storage over
//! a set of "disk" directories.
//!
//! # Layout
//!
//! A store owns one [`ChunkBackend`] per shard of the configured code. By
//! default ([`BlockStore::open`]) every backend is a [`LocalDisk`] directory
//! under the store root — so losing a directory models losing a disk (or
//! the machine behind it):
//!
//! ```text
//! root/
//!   MANIFEST                 durable stripe manifest
//!   disk-00/                 shard 0 of every stripe
//!     my-object/00000000-00.chunk
//!     my-object/00000001-00.chunk
//!   disk-01/ …               shard 1 of every stripe
//! ```
//!
//! [`BlockStore::open_with_backends`] mounts any mix of local and remote
//! disks instead (the `pbrs-chunkd` crate serves a disk over TCP and its
//! client implements [`ChunkBackend`]), in which case helper bytes for
//! degraded reads and repairs cross real sockets and are counted by
//! [`BlockStore::socket_counters`]. The manifest always lives locally at
//! the store root.
//!
//! # Write path
//!
//! `put` streams an object into stripes of `k × chunk_len` bytes, encodes
//! each stripe with the zero-copy [`ErasureCode::encode_into`] into a single
//! contiguous [`ShardBuffer`], and writes all `k + r` chunks as checksummed
//! files (see [`crate::chunk`]). Stripes are independent, so with
//! [`StoreConfig::pipeline_workers`] `> 1` the caller's thread only streams
//! the reader into a bounded pool of recycled stripe buffers while worker
//! threads encode and write the chunk files — the SIMD GF kernels and the
//! chunk-file I/O overlap instead of alternating. The manifest is committed
//! only after every chunk of the object is durable, so a crashed `put`
//! leaves orphan chunks, never a readable-but-wrong object.
//!
//! # Read path and degraded reads
//!
//! `get` reads the `k` data chunks of each stripe and verifies their
//! checksums. When a chunk is missing or corrupt the stripe is served
//! *degraded*: with a single loss the store executes the code's cheapest
//! repair — reading exactly the helper byte ranges named by
//! [`ErasureCode::repair_reads`], which for Piggybacked-RS means
//! half-chunks — and with multiple losses it falls back to a full
//! [`ErasureCode::reconstruct_in_place`] over every surviving chunk. The
//! helper bytes crossing disks are counted in [`StoreMetrics`], which is how
//! the paper's ~30 % repair-traffic saving becomes measurable on real file
//! I/O. Multi-stripe `get`s run through the same worker pipeline as `put`,
//! each worker decoding its contiguous run of stripes straight into the
//! output buffer with one reusable stripe-sized scratch — no per-stripe
//! allocation on the hot path.
//!
//! # Repair path
//!
//! [`BlockStore::repair_stripe`] rebuilds damaged chunks in place (atomic
//! rename, like every chunk write) along the same cheapest path; the
//! [`crate::daemon::RepairDaemon`] drives it from a scrub/enqueue loop
//! across a worker pool.

use std::collections::HashSet;
use std::fs;
use std::io::{self, Read};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use pbrs_core::registry::{self, DynCode};
use pbrs_erasure::{CodeError, CodeSpec, ErasureCode, ShardBuffer};
use pbrs_placement::{PlacementMap, PlacementPolicy, RackMap};

use crate::backend::{BackendCounters, ChunkBackend, LocalDisk};
use crate::chunk::{self, ChunkId, ChunkStatus};
use crate::error::{Result, StoreError};
use crate::guard::GuardedDisk;
use crate::health::{DiskHealthSnapshot, DiskState, HealthPolicy, HealthTracker, Transition};
use crate::manifest::{manifest_path, validate_object_name, Manifest, ObjectInfo};
use crate::metrics::{MetricsSnapshot, StoreLatency, StoreLatencySnapshot, StoreMetrics};
use pbrs_obs::trace::{self, RootFlags, ScopedCtx, SpanBuilder, SpanRecord, Tracer};
use pbrs_obs::{Event, EventJournal, EventKind, Stage, StageTimes};

/// Default chunk payload length: 64 KiB.
pub const DEFAULT_CHUNK_LEN: usize = 64 * 1024;

/// Default width of the `put`/`get` stripe pipeline (matches the repair
/// daemon's default worker count).
pub const DEFAULT_PIPELINE_WORKERS: usize = 4;

/// How old a `*.tmp` file must be before [`BlockStore::scrub`] deletes it
/// as a crash leftover. Younger tmp files may belong to a live writer that
/// is between its tmp write and its rename.
pub const STALE_TMP_MIN_AGE: Duration = Duration::from_secs(60);

/// Configuration for opening a [`BlockStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Root directory of the store (created if absent).
    pub root: PathBuf,
    /// The erasure code protecting every stripe.
    pub spec: CodeSpec,
    /// Payload bytes per chunk. Must be a positive multiple of the code's
    /// granularity (Piggybacked-RS needs even lengths).
    pub chunk_len: usize,
    /// Worker threads of the `put`/`get` stripe pipeline. `1` disables the
    /// pipeline and runs every stripe inline on the calling thread. A
    /// runtime knob only — not part of the on-disk geometry, so reopening
    /// with a different width is always valid.
    pub pipeline_workers: usize,
    /// Seed of the deterministic stripe placement (persisted in the
    /// manifest; reopening with a different seed is a config mismatch).
    /// Irrelevant for the identity policy.
    pub placement_seed: u64,
    /// How old a `*.tmp` file must be before scrub deletes it as a crash
    /// leftover (default [`STALE_TMP_MIN_AGE`]). Crash tests shrink it so
    /// debris sweeps don't need wall-clock sleeps.
    pub stale_tmp_min_age: Duration,
    /// When set, every backend is wrapped in a [`GuardedDisk`]: chunk ops
    /// are abandoned at this deadline (surfacing as missing chunks the
    /// read path routes around), outcomes feed a per-disk
    /// [`HealthTracker`], and Suspect/Failed disks shed load through its
    /// circuit breaker. `None` (the default) mounts backends bare with no
    /// behavior change.
    pub op_deadline: Option<Duration>,
    /// When set (requires [`StoreConfig::op_deadline`]), single-failure
    /// planned rebuilds give their first-choice helper set only this long
    /// per helper read before abandoning it and hedging to the
    /// next-ranked survivor set. Seed it from the healthy-read p99 (see
    /// [`BlockStore::latency`]).
    pub hedge_delay: Option<Duration>,
    /// Thresholds of the disk health state machine (used only under
    /// [`StoreConfig::op_deadline`]).
    pub health_policy: HealthPolicy,
}

impl StoreConfig {
    /// A configuration with the default chunk length and pipeline width.
    pub fn new(root: impl Into<PathBuf>, spec: CodeSpec) -> Self {
        StoreConfig {
            root: root.into(),
            spec,
            chunk_len: DEFAULT_CHUNK_LEN,
            pipeline_workers: DEFAULT_PIPELINE_WORKERS,
            placement_seed: 0,
            stale_tmp_min_age: STALE_TMP_MIN_AGE,
            op_deadline: None,
            hedge_delay: None,
            health_policy: HealthPolicy::default(),
        }
    }

    /// Overrides the chunk payload length.
    #[must_use]
    pub fn chunk_len(mut self, chunk_len: usize) -> Self {
        self.chunk_len = chunk_len;
        self
    }

    /// Overrides the stripe-pipeline worker count (clamped to at least 1).
    #[must_use]
    pub fn pipeline_workers(mut self, workers: usize) -> Self {
        self.pipeline_workers = workers.max(1);
        self
    }

    /// Overrides the deterministic placement seed.
    #[must_use]
    pub fn placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self
    }

    /// Overrides the stale-tmp sweep age.
    #[must_use]
    pub fn stale_tmp_min_age(mut self, min_age: Duration) -> Self {
        self.stale_tmp_min_age = min_age;
        self
    }

    /// Enables deadline enforcement + health tracking on every disk.
    #[must_use]
    pub fn op_deadline(mut self, deadline: Duration) -> Self {
        self.op_deadline = Some(deadline);
        self
    }

    /// Enables hedged planned rebuilds (effective only with
    /// [`StoreConfig::op_deadline`]).
    #[must_use]
    pub fn hedge_delay(mut self, delay: Duration) -> Self {
        self.hedge_delay = Some(delay);
        self
    }

    /// Overrides the health state machine thresholds.
    #[must_use]
    pub fn health_policy(mut self, policy: HealthPolicy) -> Self {
        self.health_policy = policy;
        self
    }
}

/// Why a chunk needs repair, as found by a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Damage {
    /// The owning object.
    pub object: String,
    /// Stripe within the object.
    pub stripe: u64,
    /// Shard within the stripe.
    pub shard: usize,
    /// The pool disk holding (or that held) the damaged chunk, as resolved
    /// through the stripe's placement.
    pub disk: usize,
    /// What the scrub found.
    pub status: ChunkStatus,
}

/// Result of one scrub pass over the whole store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Every chunk that cannot serve reads, in manifest order.
    pub damages: Vec<Damage>,
    /// Disk indices whose backend reports the disk missing/unreachable.
    pub lost_disks: Vec<usize>,
    /// Chunks examined.
    pub chunks_examined: u64,
    /// Payload bytes read and checksummed.
    pub bytes_read: u64,
    /// Stale `*.tmp` files (crash leftovers older than
    /// [`STALE_TMP_MIN_AGE`]) deleted by this pass, as
    /// `disk-NN/<path within disk>` strings (plus `MANIFEST.tmp` for a
    /// stale manifest temp at the root). Reported so operators can tell
    /// crash debris from damage — these files never endanger data.
    pub stale_tmp_removed: Vec<String>,
    /// Deleted objects whose dead chunks this pass swept from every disk
    /// (their tombstones are now cleared from the manifest).
    pub tombstones_swept: Vec<String>,
}

impl ScrubReport {
    /// Whether every chunk of every object is healthy.
    pub fn is_clean(&self) -> bool {
        self.damages.is_empty()
    }
}

/// File name of the incremental-scrub cursor within the store root.
pub const SCRUB_CURSOR_FILE: &str = "SCRUB.cursor";

/// Result of one incremental scrub pass ([`BlockStore::scrub_partial`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialScrubReport {
    /// Damaged chunks found in the scanned window, in manifest order.
    pub damages: Vec<Damage>,
    /// Stripes examined by this pass.
    pub stripes_scanned: u64,
    /// Chunks examined.
    pub chunks_examined: u64,
    /// Payload bytes read and checksummed.
    pub bytes_read: u64,
    /// Whether this pass reached the end of the object table and reset the
    /// cursor to the start (a full sweep of the store has completed since
    /// the last wrap).
    pub wrapped: bool,
}

/// The persisted position of the incremental scrub: the next stripe to
/// verify, as `(object, stripe)` in object-name order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ScrubCursor {
    object: Option<String>,
    stripe: u64,
}

/// Outcome of repairing the damaged chunks of one stripe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StripeRepair {
    /// Shards rebuilt and written back.
    pub rebuilt: Vec<usize>,
    /// Shards that turned out to be healthy after all (skipped).
    pub already_healthy: Vec<usize>,
    /// Helper bytes read from surviving disks.
    pub helper_bytes: u64,
    /// Helper bytes sourced from the rebuilt chunk's own rack — nonzero
    /// when the placement groups shards and the locality-first scheduler
    /// found same-rack helpers.
    pub intra_rack_bytes: u64,
    /// Helper bytes that crossed racks (the paper's scarce resource).
    pub cross_rack_bytes: u64,
    /// Rebuilt payload bytes written.
    pub bytes_written: u64,
}

/// A file-backed erasure-coded block store. All methods take `&self`; the
/// store is `Sync` and is shared across the repair daemon's worker threads
/// via `Arc`.
pub struct BlockStore {
    root: PathBuf,
    spec: CodeSpec,
    code: DynCode,
    chunk_len: usize,
    pipeline_workers: usize,
    /// The mounted backend pool — at least as many disks as the code has
    /// shards. Chunk I/O goes through these, never straight to the
    /// filesystem, so local and remote disks mix transparently; *which*
    /// disk holds a given `(object, stripe, shard)` chunk is decided by
    /// `map` and pinned in the manifest.
    disks: Vec<Arc<dyn ChunkBackend>>,
    /// Under [`StoreConfig::op_deadline`], `guards[i]` is the same
    /// [`GuardedDisk`] that `disks[i]` erases to `dyn ChunkBackend` —
    /// kept concretely so the hedged read path can pass per-attempt
    /// deadlines. All `None` when hardening is off.
    guards: Vec<Option<Arc<GuardedDisk>>>,
    /// Per-disk health state machine (only under `op_deadline`).
    health: Option<Arc<HealthTracker>>,
    /// Ring of disk-health transition events (only under `op_deadline`);
    /// the breaker-trip audit trail.
    health_journal: Option<Arc<EventJournal>>,
    hedge_delay: Option<Duration>,
    stale_tmp_min_age: Duration,
    /// The validated placement map: rack grouping + policy + seed.
    map: PlacementMap,
    manifest: RwLock<Manifest>,
    /// Names currently being written, to keep concurrent `put`s of the same
    /// name from interleaving.
    in_flight: Mutex<HashSet<String>>,
    metrics: StoreMetrics,
    latency: StoreLatency,
    fail: FailPoints,
    /// Causal-tracing sink, installed once by the embedding process (the
    /// gateway) via [`BlockStore::set_tracer`]. Store spans are recorded
    /// only while a [`pbrs_obs::TraceCtx`] is in scope on the calling
    /// thread, so an untraced store pays one atomic load per op.
    tracer: OnceLock<Arc<Tracer>>,
}

/// Test-only failure injection flags (see [`BlockStore::inject_encode_panic`]
/// and [`BlockStore::inject_repair_panic`]).
#[derive(Debug, Default)]
struct FailPoints {
    encode_panic: AtomicBool,
    repair_panic: AtomicBool,
}

/// Per-worker reusable buffers for stripe reads and repairs: one full
/// `n × chunk_len` stripe, its validity mask, and one rebuilt-chunk slot.
///
/// Reusing one scratch per worker (instead of fresh `Vec`s per stripe)
/// keeps the degraded-read and repair hot paths allocation-free in steady
/// state — with the SIMD GF kernels the encode itself is fast enough that
/// per-stripe allocation churn would otherwise show up in profiles.
pub(crate) struct StripeScratch {
    /// Chunk payloads land here, shard `i` in slot `i`.
    buf: ShardBuffer,
    /// Which slots of `buf` currently hold verified payloads.
    present: Vec<bool>,
    /// Output chunk of a single-failure planned rebuild.
    rebuilt: Vec<u8>,
}

/// Helper-byte accounting of one rebuild, split by rack locality relative
/// to the disk being rebuilt (`total == intra_rack + cross_rack`).
#[derive(Debug, Default, Clone, Copy)]
struct HelperTraffic {
    total: u64,
    intra_rack: u64,
    cross_rack: u64,
}

impl HelperTraffic {
    fn add(&mut self, bytes: u64, intra: bool) {
        self.total += bytes;
        if intra {
            self.intra_rack += bytes;
        } else {
            self.cross_rack += bytes;
        }
    }
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("root", &self.root)
            .field("spec", &self.spec)
            .field("chunk_len", &self.chunk_len)
            .finish_non_exhaustive()
    }
}

impl BlockStore {
    /// Opens (or creates) the store under `config.root` with the default
    /// all-local layout: one [`LocalDisk`] directory per shard of the code,
    /// created under the root.
    ///
    /// A fresh root gets a new manifest and one directory per shard of the
    /// code. An existing root's manifest must agree with the configured code
    /// spec and chunk length.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidConfig`] for an unusable chunk length,
    /// [`StoreError::ConfigMismatch`] when reopening with different
    /// geometry, and I/O or manifest-parse failures.
    pub fn open(config: StoreConfig) -> Result<Self> {
        let code = registry::build(&config.spec)?;
        let n = code.params().total_shards();
        let disks: Vec<Arc<dyn ChunkBackend>> = (0..n)
            .map(|disk| {
                Arc::new(LocalDisk::new(config.root.join(format!("disk-{disk:02}"))))
                    as Arc<dyn ChunkBackend>
            })
            .collect();
        // Legacy layout: shard `i` on disk `i`, every disk its own rack (so
        // all helper traffic counts as cross-rack, like the paper's §2.1).
        let racks = RackMap::per_disk(n);
        let store = Self::open_inner(config, code, disks, racks, PlacementPolicy::Identity)?;
        // The all-local layout pre-creates its disk directories so a fresh
        // store scrubs clean (no "lost disks") before the first write.
        for disk in 0..store.disk_count() {
            let dir = store.disk_path(disk);
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        }
        chunk::fsync_dir(&store.root).map_err(|e| StoreError::io(&store.root, e))?;
        Ok(store)
    }

    /// Opens (or creates) the store over a caller-provided backend *pool* —
    /// any mix of [`LocalDisk`]s and remote disks (e.g. `pbrs-chunkd`
    /// clients), grouped into named racks by `racks` (one chunkd endpoint
    /// group = one rack) and at least as many disks as the code has shards.
    /// `policy` decides which pool disks each stripe's chunks land on; the
    /// chosen disk sets are pinned in the manifest, which always lives
    /// locally at `config.root`.
    ///
    /// # Errors
    ///
    /// Everything [`BlockStore::open`] returns, plus
    /// [`StoreError::InvalidConfig`] when the rack map does not cover the
    /// backend pool and [`StoreError::Placement`] when stripes of the
    /// code's width cannot be placed under `policy` (e.g. rack-disjoint
    /// with fewer racks than shards).
    pub fn open_with_backends(
        config: StoreConfig,
        disks: Vec<Arc<dyn ChunkBackend>>,
        racks: RackMap,
        policy: PlacementPolicy,
    ) -> Result<Self> {
        let code = registry::build(&config.spec)?;
        Self::open_inner(config, code, disks, racks, policy)
    }

    /// The shared open path: validates geometry against the (already
    /// built) code, loads or creates the manifest, and assembles the store.
    fn open_inner(
        config: StoreConfig,
        code: DynCode,
        disks: Vec<Arc<dyn ChunkBackend>>,
        racks: RackMap,
        policy: PlacementPolicy,
    ) -> Result<Self> {
        if config.chunk_len == 0 || !config.chunk_len.is_multiple_of(code.granularity()) {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "chunk_len {} must be a positive multiple of the code's granularity {}",
                    config.chunk_len,
                    code.granularity()
                ),
            });
        }
        let n = code.params().total_shards();
        if racks.disk_count() != disks.len() {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "rack map covers {} disks but {} backends are mounted",
                    racks.disk_count(),
                    disks.len()
                ),
            });
        }
        // Validates policy feasibility (width vs racks/pool) up front, so
        // every later placement lookup is infallible.
        let map = PlacementMap::new(racks, policy, n, config.placement_seed)?;
        fs::create_dir_all(&config.root).map_err(|e| StoreError::io(&config.root, e))?;
        let manifest = match Manifest::load(&config.root)? {
            Some(existing) => {
                if existing.spec != config.spec {
                    return Err(StoreError::ConfigMismatch {
                        field: "code",
                        on_disk: existing.spec.to_string(),
                        configured: config.spec.to_string(),
                    });
                }
                if existing.chunk_len != config.chunk_len {
                    return Err(StoreError::ConfigMismatch {
                        field: "chunk_len",
                        on_disk: existing.chunk_len.to_string(),
                        configured: config.chunk_len.to_string(),
                    });
                }
                if existing.pool != disks.len() {
                    return Err(StoreError::ConfigMismatch {
                        field: "pool",
                        on_disk: existing.pool.to_string(),
                        configured: disks.len().to_string(),
                    });
                }
                if existing.policy != policy {
                    return Err(StoreError::ConfigMismatch {
                        field: "policy",
                        on_disk: existing.policy.to_string(),
                        configured: policy.to_string(),
                    });
                }
                if existing.seed != config.placement_seed {
                    return Err(StoreError::ConfigMismatch {
                        field: "placement_seed",
                        on_disk: existing.seed.to_string(),
                        configured: config.placement_seed.to_string(),
                    });
                }
                existing
            }
            None => {
                let fresh = Manifest::new(
                    config.spec,
                    config.chunk_len,
                    disks.len(),
                    policy,
                    config.placement_seed,
                );
                fresh.save(&config.root)?;
                fresh
            }
        };
        // Failure-domain hardening: wrap every backend in a GuardedDisk so
        // chunk ops are deadline-bounded and every outcome feeds the health
        // tracker; transitions land in a dedicated journal.
        let mut disks = disks;
        let mut guards: Vec<Option<Arc<GuardedDisk>>> = vec![None; disks.len()];
        let mut health = None;
        let mut health_journal = None;
        if let Some(deadline) = config.op_deadline {
            let journal = Arc::new(EventJournal::new(crate::daemon::EVENT_JOURNAL_CAPACITY));
            let tracker = Arc::new(HealthTracker::new(
                disks.len(),
                config.health_policy.clone(),
                Some(config.root.join(crate::health::ADVISORY_FILE)),
            ));
            let hook: Arc<dyn Fn(Transition) + Send + Sync> = {
                let journal = Arc::clone(&journal);
                Arc::new(move |t: Transition| {
                    journal.push(
                        EventKind::DiskHealth,
                        format!("disk {} {} -> {}", t.disk, t.from, t.to),
                    );
                })
            };
            disks = disks
                .into_iter()
                .enumerate()
                .map(|(i, inner)| {
                    let guard = Arc::new(GuardedDisk::new(
                        inner,
                        i,
                        deadline,
                        Arc::clone(&tracker),
                        Some(Arc::clone(&hook)),
                    ));
                    guards[i] = Some(Arc::clone(&guard));
                    guard as Arc<dyn ChunkBackend>
                })
                .collect();
            health = Some(tracker);
            health_journal = Some(journal);
        }
        Ok(BlockStore {
            root: config.root,
            spec: config.spec,
            code,
            chunk_len: config.chunk_len,
            pipeline_workers: config.pipeline_workers.max(1),
            disks,
            guards,
            health,
            health_journal,
            hedge_delay: config.hedge_delay.filter(|_| config.op_deadline.is_some()),
            stale_tmp_min_age: config.stale_tmp_min_age,
            map,
            manifest: RwLock::new(manifest),
            in_flight: Mutex::new(HashSet::new()),
            metrics: StoreMetrics::default(),
            latency: StoreLatency::default(),
            fail: FailPoints::default(),
            tracer: OnceLock::new(),
        })
    }

    /// The spec of the code protecting this store.
    pub fn spec(&self) -> CodeSpec {
        self.spec
    }

    /// The live codec.
    pub fn code(&self) -> &(dyn ErasureCode + Send + Sync) {
        self.code.as_ref()
    }

    /// Payload bytes per chunk.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of mounted backends (the disk pool). Equal to the shard count
    /// for identity-placed stores; larger pools spread stripes under the
    /// configured [`PlacementPolicy`].
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Shards per stripe (`k + r` of the configured code).
    pub fn shards_per_stripe(&self) -> usize {
        self.code.params().total_shards()
    }

    /// The rack grouping of the backend pool.
    pub fn racks(&self) -> &RackMap {
        self.map.racks()
    }

    /// The placement policy stripes are placed under.
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.map.policy()
    }

    /// The pool disks holding each shard of one stripe: entry `i` is the
    /// disk index of shard `i`. Resolved from the manifest's persisted
    /// placement (identity `[0, 1, …]` for identity-placed stores).
    pub fn stripe_disks(&self, object: &str, stripe: u64) -> Vec<usize> {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let manifest = self.manifest.read().expect("lock");
        Self::resolve_row(&manifest, &self.map, object, stripe)
    }

    /// The manifest-first row lookup shared by every chunk-touching path:
    /// persisted placement rows are the authority; objects without rows
    /// (identity stores, legacy manifests) use the fixed layout; and a
    /// placed object's missing row (only possible for out-of-range stripes)
    /// falls back to the deterministic derivation.
    fn resolve_row(
        manifest: &Manifest,
        map: &PlacementMap,
        object: &str,
        stripe: u64,
    ) -> Vec<usize> {
        if let Some(row) = manifest
            .placements
            .get(object)
            .and_then(|rows| rows.get(usize::try_from(stripe).ok()?))
        {
            return row.clone();
        }
        map.disks_for_object_stripe(object, stripe)
    }

    /// Every stripe row of one object (placement per stripe), resolved once
    /// so multi-stripe reads do not take the manifest lock per stripe.
    pub(crate) fn object_rows(&self, object: &str, stripes: u64) -> Vec<Vec<usize>> {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let manifest = self.manifest.read().expect("lock");
        (0..stripes)
            .map(|s| Self::resolve_row(&manifest, &self.map, object, s))
            .collect()
    }

    /// Logical data bytes per stripe (`k × chunk_len`).
    pub fn stripe_data_len(&self) -> usize {
        self.code.params().data_shards() * self.chunk_len
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of disk `disk` in the default all-local layout (shard
    /// `disk` of every stripe lives here). Stores mounted with
    /// [`BlockStore::open_with_backends`] may keep that shard elsewhere —
    /// see [`BlockStore::backend`] for the authoritative location.
    pub fn disk_path(&self, disk: usize) -> PathBuf {
        self.root.join(format!("disk-{disk:02}"))
    }

    /// Path of one chunk file in the default all-local layout.
    pub fn chunk_path(&self, object: &str, stripe: u64, shard: usize) -> PathBuf {
        self.disk_path(shard)
            .join(object)
            .join(format!("{stripe:08}-{shard:02}.chunk"))
    }

    /// The backend serving shard `disk` of every stripe.
    pub fn backend(&self, disk: usize) -> &Arc<dyn ChunkBackend> {
        &self.disks[disk]
    }

    /// Sum of every backend's transport counters. For stores mounting
    /// remote disks this is the bytes that actually crossed sockets —
    /// degraded reads and repairs of networked chunks show up here; an
    /// all-local store reports zeros.
    pub fn socket_counters(&self) -> BackendCounters {
        self.disks
            .iter()
            .fold(BackendCounters::default(), |acc, disk| {
                acc.combined(disk.counters())
            })
    }

    /// Per-rack sums of the backends' transport counters, in rack order —
    /// [`BlockStore::socket_counters`] split by the rack map, so the bytes
    /// entering and leaving each "rack" of chunk servers are visible
    /// separately (the paper's per-TOR-switch view).
    pub fn rack_counters(&self) -> Vec<(String, BackendCounters)> {
        let racks = self.map.racks();
        (0..racks.racks())
            .map(|rack| {
                let sum = racks
                    .rack_disks(rack)
                    .iter()
                    .fold(BackendCounters::default(), |acc, &disk| {
                        acc.combined(self.disks[disk].counters())
                    });
                (racks.rack_name(rack).to_string(), sum)
            })
            .collect()
    }

    /// Test-only failure injection: while enabled, every stripe encode
    /// (the write path's `encode_and_write_stripe` step) panics. Exists so
    /// crash-safety tests can prove the put pipeline fails fast instead of
    /// deadlocking when a worker dies; never enable it outside tests.
    pub fn inject_encode_panic(&self, enabled: bool) {
        self.fail.encode_panic.store(enabled, Ordering::SeqCst);
    }

    /// Test-only failure injection: while enabled,
    /// [`BlockStore::repair_stripe`] panics on entry. Exists so
    /// crash-safety tests can prove the repair daemon survives a panicking
    /// worker (and `wait_idle` terminates); never enable it outside tests.
    pub fn inject_repair_panic(&self, enabled: bool) {
        self.fail.repair_panic.store(enabled, Ordering::SeqCst);
    }

    /// Metadata of one object, if present.
    pub fn object(&self, name: &str) -> Option<ObjectInfo> {
        self.manifest
            .read()
            .expect("lock") // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            .objects
            .get(name)
            .copied()
    }

    /// Metadata of object `name`, with the typed miss distinction
    /// [`BlockStore::object`] cannot make: a tombstoned name yields
    /// [`StoreError::ObjectDeleted`] ("it existed, you deleted it"), an
    /// unknown one [`StoreError::ObjectNotFound`]. Callers surfacing
    /// results to clients — the gateway — map the two to different
    /// statuses; neither is an I/O failure.
    pub fn lookup(&self, name: &str) -> Result<ObjectInfo> {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let manifest = self.manifest.read().expect("lock");
        if let Some(info) = manifest.objects.get(name) {
            return Ok(*info);
        }
        if manifest.tombstones.contains(name) {
            return Err(StoreError::ObjectDeleted {
                name: name.to_string(),
            });
        }
        Err(StoreError::ObjectNotFound {
            name: name.to_string(),
        })
    }

    /// Names and metadata of every object, in name order.
    pub fn objects(&self) -> Vec<(String, ObjectInfo)> {
        self.manifest
            .read()
            .expect("lock") // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            .objects
            .iter()
            .map(|(name, info)| (name.clone(), *info))
            .collect()
    }

    /// A labelled copy of the store's traffic counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot(&self.code.name());
        // The deadline/breaker counters live in the health tracker (they
        // are recorded inside GuardedDisk, below the metrics struct);
        // mirror them into the snapshot so one struct tells the story.
        if let Some(health) = &self.health {
            snap.disk_timeouts = health.total_timeouts();
            snap.disk_sheds = health.total_shed();
        }
        snap
    }

    /// A point-in-time copy of the store's latency histograms: healthy and
    /// degraded stripe reads, degraded reconstructs, and repair jobs.
    pub fn latency(&self) -> StoreLatencySnapshot {
        self.latency.snapshot()
    }

    /// The per-disk health tracker, when the store was opened with
    /// [`StoreConfig::op_deadline`]; `None` on an unhardened store.
    pub fn health(&self) -> Option<&Arc<HealthTracker>> {
        self.health.as_ref()
    }

    /// Point-in-time health state + counters of every disk (empty on an
    /// unhardened store).
    pub fn health_snapshot(&self) -> Vec<DiskHealthSnapshot> {
        self.health.as_ref().map_or_else(Vec::new, |h| h.snapshot())
    }

    /// One disk's health state (`None` on an unhardened store).
    pub fn disk_state(&self, disk: usize) -> Option<DiskState> {
        self.health.as_ref().map(|h| h.disk(disk).state())
    }

    /// Recent disk-health transition events, oldest first (empty on an
    /// unhardened store) — Healthy→Suspect breaker trips and recoveries.
    pub fn health_events(&self) -> Vec<Event> {
        self.health_journal
            .as_ref()
            .map_or_else(Vec::new, |j| j.recent())
    }

    /// Events dropped by the disk-health journal because its ring was
    /// full (0 on an unhardened store).
    pub fn journal_dropped(&self) -> u64 {
        self.health_journal.as_ref().map_or(0, |j| j.dropped())
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Installs the tracer store spans are recorded into. One-shot: the
    /// first caller wins (the store is shared via `Arc`; the gateway
    /// installs its tracer right after open). Without a tracer, or
    /// without a trace context in scope, the store records nothing.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// The installed tracer, when present and enabled.
    fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get().filter(|t| t.is_enabled())
    }

    /// Starts a child span of the trace context in scope on this thread,
    /// or `None` when tracing is off or no context is in scope.
    fn trace_span(&self, name: &str) -> Option<(SpanBuilder, &Arc<Tracer>)> {
        let tracer = self.tracer()?;
        let ctx = trace::current_ctx()?;
        Some((tracer.span(name, ctx), tracer))
    }

    /// Tags a span with the identity of a pool disk: index, rack name,
    /// and the backend's own description (a path or a `chunkd://` addr) —
    /// the labels a trace reader needs to see *which* disk a chunk read
    /// actually touched.
    fn tag_disk(&self, span: &mut SpanBuilder, disk: usize) {
        span.tag("disk", disk.to_string());
        let racks = self.map.racks();
        if let Some(rack) = racks.rack_of(disk) {
            span.tag("rack", racks.rack_name(rack).to_string());
        }
        span.tag("backend", self.disks[disk].describe());
    }

    /// Drains spans recorded on the far side of every mounted backend
    /// (see [`ChunkBackend::drain_spans`]) so the embedding process can
    /// merge chunkd-side spans into its retained trace trees.
    pub fn drain_remote_spans(&self) -> Vec<SpanRecord> {
        self.disks.iter().flat_map(|d| d.drain_spans()).collect()
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Stores `reader`'s bytes as object `name`, streaming stripe by stripe.
    ///
    /// Objects are immutable: storing an existing name fails.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ObjectExists`], [`StoreError::InvalidObjectName`],
    /// or I/O / codec failures. On failure the manifest is left without the
    /// object; already written chunks are removed best-effort.
    pub fn put(&self, name: &str, reader: impl Read) -> Result<ObjectInfo> {
        self.reserve_name(name)?;
        let result = self.put_reserved(name, reader);
        if result.is_err() {
            // Clean up *before* releasing the reservation, so a retrying
            // writer cannot recreate the name and then lose its chunks to
            // this removal.
            self.remove_object_chunks(name);
        }
        self.release_name(name);
        result
    }

    /// Reserves `name` against concurrent writers and existing objects:
    /// the shared admission step of [`BlockStore::put`] and the streaming
    /// [`crate::ObjectWriter`]. A successful reservation must be paired
    /// with [`BlockStore::release_name`].
    pub(crate) fn reserve_name(&self, name: &str) -> Result<()> {
        validate_object_name(name)?;
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let mut in_flight = self.in_flight.lock().expect("lock");
        if self
            .manifest
            .read()
            .expect("lock") // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            .objects
            .contains_key(name)
            || !in_flight.insert(name.to_string())
        {
            return Err(StoreError::ObjectExists {
                name: name.to_string(),
            });
        }
        Ok(())
    }

    /// Releases a [`BlockStore::reserve_name`] reservation.
    pub(crate) fn release_name(&self, name: &str) {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        self.in_flight.lock().expect("lock").remove(name);
    }

    /// Pre-ingest disk preparation for a reserved name: sweeps the dead
    /// chunks of a tombstoned predecessor (the old and new files share
    /// names, so the old ones must go *before* new ones land), then
    /// creates the object directory on every pool disk (the placement may
    /// put stripes anywhere).
    pub(crate) fn prepare_object_dirs(&self, name: &str) -> Result<()> {
        let tombstoned = self
            .manifest
            .read()
            .expect("lock") // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            .tombstones
            .contains(name);
        if tombstoned {
            for disk in &self.disks {
                disk.remove_object(name)?;
            }
        }
        for disk in &self.disks {
            disk.ensure_object(name)?;
        }
        Ok(())
    }

    fn put_reserved(&self, name: &str, mut reader: impl Read) -> Result<ObjectInfo> {
        self.prepare_object_dirs(name)?;
        let (total, stripe) = if self.pipeline_workers > 1 {
            self.ingest_pipelined(name, &mut reader)?
        } else {
            self.ingest_sequential(name, &mut reader)?
        };
        self.commit_object(name, total, stripe)
    }

    /// The durable commit of a fully ingested object (every chunk of every
    /// stripe written): pins the metadata and placement rows in the
    /// manifest, clears any tombstone, and rolls all of it back if the
    /// manifest save fails — an object whose entry never became durable
    /// must not be readable. Shared by [`BlockStore::put`] and the
    /// streaming [`crate::ObjectWriter`].
    pub(crate) fn commit_object(&self, name: &str, total: u64, stripes: u64) -> Result<ObjectInfo> {
        let info = ObjectInfo {
            len: total,
            stripes,
        };
        // Re-derive the rows the ingest workers used (placement is a pure
        // function of name + stripe) and pin them in the manifest.
        let rows: Option<Vec<Vec<usize>>> =
            (self.map.policy() != PlacementPolicy::Identity).then(|| {
                (0..stripes)
                    .map(|s| self.map.disks_for_object_stripe(name, s))
                    .collect()
            });
        {
            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            let mut manifest = self.manifest.write().expect("lock");
            manifest.objects.insert(name.to_string(), info);
            if let Some(rows) = rows.clone() {
                manifest.placements.insert(name.to_string(), rows);
            }
            let had_tombstone = manifest.tombstones.remove(name);
            if let Err(e) = manifest.save(&self.root) {
                // Keep the in-memory map honest (matching the durable file):
                // an object whose manifest entry never became durable must
                // not be readable (its chunks are about to be cleaned up by
                // the caller).
                manifest.objects.remove(name);
                manifest.placements.remove(name);
                if had_tombstone {
                    manifest.tombstones.insert(name.to_string());
                }
                return Err(e);
            }
        }
        StoreMetrics::add(&self.metrics.bytes_ingested, total);
        Ok(info)
    }

    /// Fills the data shards of `buf` from `reader`, zeroing everything
    /// past the stream's end so stale bytes from a previous stripe never
    /// leak into parity. Returns the payload bytes consumed.
    fn fill_stripe_data(&self, reader: &mut impl Read, buf: &mut ShardBuffer) -> Result<usize> {
        let k = self.code.params().data_shards();
        let mut stripe_bytes = 0usize;
        for i in 0..k {
            let shard = buf.shard_mut(i);
            let got = read_full(reader, shard)
                .map_err(|e| StoreError::io(self.root.join("<input>"), e))?;
            stripe_bytes += got;
            if got < shard.len() {
                shard[got..].fill(0);
                for j in i + 1..k {
                    buf.shard_mut(j).fill(0);
                }
                break;
            }
        }
        Ok(stripe_bytes)
    }

    /// Encodes the (already filled) data shards of `buf` and writes all
    /// `n` chunk files of `stripe`.
    pub(crate) fn encode_and_write_stripe(
        &self,
        name: &str,
        stripe: u64,
        buf: &mut ShardBuffer,
        times: &mut StageTimes,
    ) -> Result<()> {
        let span = self.trace_span("write_stripe");
        let scope = span.as_ref().map(|(s, _)| ScopedCtx::enter(Some(s.ctx())));
        let result = self.encode_and_write_stripe_inner(name, stripe, buf, times);
        drop(scope);
        if let Some((mut s, tracer)) = span {
            s.tag("object", name);
            s.tag("stripe", stripe.to_string());
            if let Err(e) = &result {
                s.tag("fault", e.to_string());
            }
            s.finish(tracer);
        }
        result
    }

    fn encode_and_write_stripe_inner(
        &self,
        name: &str,
        stripe: u64,
        buf: &mut ShardBuffer,
        times: &mut StageTimes,
    ) -> Result<()> {
        // SeqCst: crash-test failpoint, flipped rarely and read cold.
        if self.fail.encode_panic.load(Ordering::SeqCst) {
            // pbrs-lint: allow(panic-hygiene) -- injected failure hook; panicking here is the tested behaviour
            panic!("injected encode panic (stripe {stripe})");
        }
        let (k, n) = {
            let params = self.code.params();
            (params.data_shards(), params.total_shards())
        };
        {
            let erasure_start = Instant::now();
            let (data, mut parity) = buf.split_mut(k);
            self.code.encode_into(&data, &mut parity)?;
            times.add_duration(Stage::Erasure, erasure_start.elapsed());
        }
        // Pure function of (seed, name, stripe): pipeline workers derive the
        // same row the commit later persists, with no coordination.
        let row = self.map.disks_for_object_stripe(name, stripe);
        let io_start = Instant::now();
        for (shard, &disk) in row.iter().enumerate() {
            self.disks[disk].write_chunk(name, ChunkId { stripe, shard }, buf.shard(shard))?;
        }
        times.add_duration(Stage::ChunkIo, io_start.elapsed());
        StoreMetrics::add(&self.metrics.chunks_written, n as u64);
        StoreMetrics::add(
            &self.metrics.chunk_bytes_written,
            (n * self.chunk_len) as u64,
        );
        Ok(())
    }

    /// The single-threaded ingest loop: fill, encode, write, repeat.
    fn ingest_sequential(&self, name: &str, reader: &mut impl Read) -> Result<(u64, u64)> {
        let n = self.code.params().total_shards();
        let mut buf = ShardBuffer::zeroed(n, self.chunk_len);
        let mut total = 0u64;
        let mut stripe = 0u64;
        loop {
            let stripe_bytes = self.fill_stripe_data(reader, &mut buf)?;
            if stripe_bytes == 0 {
                break;
            }
            total += stripe_bytes as u64;
            self.encode_and_write_stripe(name, stripe, &mut buf, &mut StageTimes::new())?;
            stripe += 1;
            if stripe_bytes < self.stripe_data_len() {
                break;
            }
        }
        Ok((total, stripe))
    }

    /// The pipelined ingest loop: the calling thread streams the reader
    /// into a small pool of recycled stripe buffers while the workers
    /// encode and write the chunk files, so GF arithmetic and chunk-file
    /// I/O overlap instead of alternating.
    ///
    /// The pool is bounded (`workers + 1` buffers), which back-pressures
    /// the reader; a worker *always* returns its buffer — even when the
    /// encode step panics, via [`ReturnBuffer`] — so the reader can never
    /// deadlock waiting for one. Panics are caught at the worker boundary
    /// and surfaced as [`StoreError::WorkerPanic`]; the first error wins,
    /// later stripes are skipped, and `put` removes any chunks already
    /// written.
    fn ingest_pipelined(&self, name: &str, reader: &mut impl Read) -> Result<(u64, u64)> {
        let n = self.code.params().total_shards();
        let workers = self.pipeline_workers;
        let (work_tx, work_rx) = mpsc::channel::<(u64, ShardBuffer)>();
        let (free_tx, free_rx) = mpsc::channel::<ShardBuffer>();
        for _ in 0..workers + 1 {
            free_tx
                .send(ShardBuffer::zeroed(n, self.chunk_len))
                // pbrs-lint: allow(panic-hygiene) -- the receiver end is owned by this function and not yet dropped
                .expect("receiver lives on this thread");
        }
        let work_rx = Mutex::new(work_rx);
        let failure: Mutex<Option<StoreError>> = Mutex::new(None);

        let mut total = 0u64;
        let mut stripe = 0u64;
        let mut read_error: Option<StoreError> = None;
        // The ambient trace context is thread-local; carry it across the
        // worker boundary so stripe spans parent under the caller's op.
        let trace_ctx = trace::current_ctx();
        thread::scope(|scope| {
            for _ in 0..workers {
                let work_rx = &work_rx;
                let failure = &failure;
                let free_tx = free_tx.clone();
                scope.spawn(move || {
                    let _trace = ScopedCtx::enter(trace_ctx);
                    loop {
                        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                        let received = work_rx.lock().expect("lock").recv();
                        let Ok((stripe, buf)) = received else {
                            return; // ingest finished: work channel closed
                        };
                        // The buffer rides in a drop guard: if anything
                        // below unwinds, the buffer still goes back to the
                        // pool — a lost buffer is exactly how the reader
                        // deadlocks.
                        let mut guard = ReturnBuffer {
                            buf: Some(buf),
                            free_tx: &free_tx,
                        };
                        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                        let result = if failure.lock().expect("lock").is_some() {
                            Ok(()) // an earlier stripe already failed; drain only
                        } else {
                            // pbrs-lint: allow(panic-hygiene) -- the guard's buffer is only taken on drop, after this closure
                            let buf = guard.buf.as_mut().expect("held until drop");
                            catch_unwind(AssertUnwindSafe(|| {
                                self.encode_and_write_stripe(
                                    name,
                                    stripe,
                                    buf,
                                    &mut StageTimes::new(),
                                )
                            }))
                            .unwrap_or_else(|payload| {
                                Err(StoreError::WorkerPanic {
                                    context: format!(
                                        "pipelined encode/write of stripe {stripe}: {}",
                                        panic_message(payload.as_ref())
                                    ),
                                })
                            })
                        };
                        // Return the buffer before reporting, so the
                        // reader thread can always make progress.
                        drop(guard);
                        if let Err(e) = result {
                            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                            let mut slot = failure.lock().expect("lock");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                });
            }

            loop {
                // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                if failure.lock().expect("lock").is_some() {
                    break;
                }
                // pbrs-lint: allow(panic-hygiene) -- worker threads return every buffer before the channel closes
                let mut buf = free_rx.recv().expect("workers always return buffers");
                let stripe_bytes = match self.fill_stripe_data(reader, &mut buf) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                };
                if stripe_bytes == 0 {
                    break;
                }
                total += stripe_bytes as u64;
                work_tx
                    .send((stripe, buf))
                    // pbrs-lint: allow(panic-hygiene) -- worker threads outlive the work channel by scope construction
                    .expect("workers outlive the work channel");
                stripe += 1;
                if stripe_bytes < self.stripe_data_len() {
                    break;
                }
            }
            // Closing the work channel drains the workers.
            drop(work_tx);
        });

        if let Some(e) = read_error {
            return Err(e);
        }
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        if let Some(e) = failure.into_inner().expect("lock") {
            return Err(e);
        }
        Ok((total, stripe))
    }

    /// Best-effort removal of every chunk of `name` on every disk (cleanup
    /// after a failed `put`).
    pub(crate) fn remove_object_chunks(&self, name: &str) {
        for disk in &self.disks {
            let _ = disk.remove_object(name);
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// A fresh scratch sized for this store's stripes.
    pub(crate) fn new_scratch(&self) -> StripeScratch {
        let n = self.code.params().total_shards();
        StripeScratch {
            buf: ShardBuffer::zeroed(n, self.chunk_len),
            present: vec![false; n],
            rebuilt: vec![0u8; self.chunk_len],
        }
    }

    /// Reads object `name` back, transparently falling back to degraded
    /// reads for stripes with missing or corrupt chunks.
    ///
    /// Stripes are independent, so multi-stripe objects are served through
    /// the store's worker pipeline (see [`StoreConfig::pipeline_workers`]):
    /// each worker owns one reusable stripe-sized scratch and decodes its
    /// share of stripes straight into the output buffer, overlapping
    /// chunk-file I/O with GF decoding.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ObjectNotFound`],
    /// [`StoreError::ObjectDeleted`] for a tombstoned name, or
    /// [`StoreError::StripeUnrecoverable`] when more chunks are lost than
    /// the code tolerates.
    pub fn get(&self, name: &str) -> Result<Vec<u8>> {
        let info = self.lookup(name)?;
        // pbrs-lint: allow(panic-hygiene) -- an object larger than usize::MAX could not have been written
        let stripes = usize::try_from(info.stripes).expect("object fits in memory");
        let stripe_len = self.stripe_data_len();
        let padded = stripes
            .checked_mul(stripe_len)
            // pbrs-lint: allow(panic-hygiene) -- an object larger than usize::MAX could not have been written
            .expect("object fits in memory");
        let mut out = vec![0u8; padded];
        // Resolve every stripe's placement once, outside the hot loop.
        let rows = self.object_rows(name, info.stripes);
        let workers = self.pipeline_workers.min(stripes.max(1));
        if workers <= 1 {
            let mut scratch = self.new_scratch();
            let mut times = StageTimes::new();
            for (stripe, dest) in out.chunks_mut(stripe_len).enumerate() {
                self.read_stripe_into(
                    name,
                    stripe as u64,
                    &rows[stripe],
                    dest,
                    &mut scratch,
                    &mut times,
                )?;
            }
        } else {
            self.read_stripes_parallel(name, &rows, &mut out, workers)?;
        }
        // pbrs-lint: allow(panic-hygiene) -- an object larger than usize::MAX could not have been written
        out.truncate(usize::try_from(info.len).expect("object fits in memory"));
        StoreMetrics::add(&self.metrics.objects_read, 1);
        StoreMetrics::add(&self.metrics.bytes_served, info.len);
        Ok(out)
    }

    /// Decodes the object's stripes into `out` with a static partition:
    /// worker `w` owns a contiguous run of stripes (and the matching slice
    /// of `out`), plus one private scratch reused across its run.
    fn read_stripes_parallel(
        &self,
        name: &str,
        rows: &[Vec<usize>],
        out: &mut [u8],
        workers: usize,
    ) -> Result<()> {
        let stripe_len = self.stripe_data_len();
        let stripes = out.len() / stripe_len;
        let per_worker = stripes.div_ceil(workers);
        let failure: Mutex<Option<StoreError>> = Mutex::new(None);
        // The ambient trace context is thread-local; carry it across the
        // worker boundary so stripe spans parent under the caller's op.
        let trace_ctx = trace::current_ctx();
        thread::scope(|scope| {
            for (w, region) in out.chunks_mut(per_worker * stripe_len).enumerate() {
                let failure = &failure;
                scope.spawn(move || {
                    let _trace = ScopedCtx::enter(trace_ctx);
                    let mut scratch = self.new_scratch();
                    let mut times = StageTimes::new();
                    let first = w * per_worker;
                    for (i, dest) in region.chunks_mut(stripe_len).enumerate() {
                        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                        if failure.lock().expect("lock").is_some() {
                            return; // another stripe already failed
                        }
                        if let Err(e) = self.read_stripe_into(
                            name,
                            (first + i) as u64,
                            &rows[first + i],
                            dest,
                            &mut scratch,
                            &mut times,
                        ) {
                            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                            let mut slot = failure.lock().expect("lock");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                });
            }
        });
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        match failure.into_inner().expect("lock") {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serves the `k × chunk_len` data bytes of one stripe into `dest`,
    /// reusing the worker's scratch buffers throughout. `row` is the
    /// stripe's placement: shard `i` lives on pool disk `row[i]`. Returns
    /// whether the stripe was served degraded (one or more chunks rebuilt
    /// from survivors instead of read directly) — callers like the gateway
    /// surface that share per response.
    ///
    /// Stage attribution: chunk reads (healthy and helper) accumulate into
    /// `times` as [`Stage::ChunkIo`], rebuild arithmetic as
    /// [`Stage::Erasure`], and the whole-stripe duration feeds the store's
    /// healthy/degraded latency histograms.
    pub(crate) fn read_stripe_into(
        &self,
        object: &str,
        stripe: u64,
        row: &[usize],
        dest: &mut [u8],
        scratch: &mut StripeScratch,
        times: &mut StageTimes,
    ) -> Result<bool> {
        let span = self.trace_span("read_stripe");
        let scope = span.as_ref().map(|(s, _)| ScopedCtx::enter(Some(s.ctx())));
        let result = self.read_stripe_into_inner(object, stripe, row, dest, scratch, times);
        drop(scope);
        if let Some((mut s, tracer)) = span {
            s.tag("object", object);
            s.tag("stripe", stripe.to_string());
            match &result {
                Ok(true) => s.tag("degraded", "true"),
                Ok(false) => {}
                Err(e) => s.tag("fault", e.to_string()),
            }
            s.finish(tracer);
        }
        result
    }

    fn read_stripe_into_inner(
        &self,
        object: &str,
        stripe: u64,
        row: &[usize],
        dest: &mut [u8],
        scratch: &mut StripeScratch,
        times: &mut StageTimes,
    ) -> Result<bool> {
        let stripe_start = Instant::now();
        let k = self.code.params().data_shards();
        debug_assert_eq!(dest.len(), self.stripe_data_len());
        // Fast path: read and verify the k data chunks straight into the
        // caller's destination — the healthy case touches no scratch and
        // pays no extra copy.
        let mut bad: Vec<usize> = Vec::new();
        for shard in 0..k {
            let slot = &mut dest[shard * self.chunk_len..(shard + 1) * self.chunk_len];
            match self.disks[row[shard]].read_chunk_into(object, ChunkId { stripe, shard }, slot)? {
                Ok(()) => {}
                Err(status) => {
                    self.note_damage(&status);
                    bad.push(shard);
                }
            }
        }
        times.add_duration(Stage::ChunkIo, stripe_start.elapsed());
        if bad.is_empty() {
            self.latency
                .healthy_stripe_read
                .record_duration(stripe_start.elapsed());
            return Ok(false);
        }

        // Degraded read: install the verified data chunks into the scratch
        // stripe (the rebuild reads its helpers from there).
        StoreMetrics::add(&self.metrics.degraded_stripe_reads, 1);
        let rebuild_start = Instant::now();
        scratch.present.fill(false);
        for shard in 0..k {
            if !bad.contains(&shard) {
                scratch
                    .buf
                    .shard_mut(shard)
                    .copy_from_slice(&dest[shard * self.chunk_len..(shard + 1) * self.chunk_len]);
                scratch.present[shard] = true;
            }
        }
        if bad.len() == 1 {
            if let Some(traffic) =
                self.try_planned_rebuild(object, stripe, row, bad[0], scratch, times)?
            {
                self.note_degraded_traffic(traffic);
                for shard in 0..k {
                    let src = if shard == bad[0] {
                        &scratch.rebuilt[..]
                    } else {
                        scratch.buf.shard(shard)
                    };
                    dest[shard * self.chunk_len..(shard + 1) * self.chunk_len].copy_from_slice(src);
                }
                self.latency
                    .degraded_reconstruct
                    .record_duration(rebuild_start.elapsed());
                self.latency
                    .degraded_stripe_read
                    .record_duration(stripe_start.elapsed());
                return Ok(true);
            }
        }

        // Multiple losses (or helpers unavailable): full reconstruction. The
        // extra survivor reads are the degraded cost; the healthy data
        // payloads were already read above and are not read twice.
        let mut damaged = bad;
        let traffic =
            self.reconstruct_from_survivors(object, stripe, row, &mut damaged, scratch, times)?;
        self.note_degraded_traffic(traffic);
        for shard in 0..k {
            dest[shard * self.chunk_len..(shard + 1) * self.chunk_len]
                .copy_from_slice(scratch.buf.shard(shard));
        }
        self.latency
            .degraded_reconstruct
            .record_duration(rebuild_start.elapsed());
        self.latency
            .degraded_stripe_read
            .record_duration(stripe_start.elapsed());
        Ok(true)
    }

    /// Read-metrics bump for streaming readers ([`crate::ObjectReader`]),
    /// which serve an object without going through [`BlockStore::get`].
    pub(crate) fn note_streamed_read(&self, bytes_served: u64, whole_object: bool) {
        if whole_object {
            StoreMetrics::add(&self.metrics.objects_read, 1);
        }
        StoreMetrics::add(&self.metrics.bytes_served, bytes_served);
    }

    fn note_degraded_traffic(&self, traffic: HelperTraffic) {
        StoreMetrics::add(&self.metrics.degraded_helper_bytes, traffic.total);
        StoreMetrics::add(&self.metrics.degraded_intra_rack_bytes, traffic.intra_rack);
        StoreMetrics::add(&self.metrics.degraded_cross_rack_bytes, traffic.cross_rack);
    }

    /// Executes the code's cheapest single-failure repair for shard
    /// `target`, materialising exactly the helper byte ranges the rebuild
    /// consumes. Helper choice is *locality-first*: survivors sharing the
    /// target disk's rack are ranked ahead of cross-rack ones, and codes
    /// with helper freedom (see [`ErasureCode::repair_reads_ranked`]) read
    /// as many same-rack helpers as their mathematics allows. Ranges whose
    /// chunk is already resident in the scratch (CRC-verified, flagged in
    /// `present`) are used as they sit; the rest are partial-read from disk
    /// into the scratch stripe, and a helper that turns out to be missing
    /// or corrupt makes the whole attempt return `None` so the caller falls
    /// back to full reconstruction.
    ///
    /// On success the rebuilt chunk is left in `scratch.rebuilt` and the
    /// returned traffic prices the *full* plan — the bytes a rebuilding
    /// node fetches across disks in the paper's model, split intra/cross
    /// rack relative to the target's disk — regardless of how many ranges
    /// happened to be resident here. Bytes of the scratch stripe outside
    /// the plan's ranges may be stale from earlier stripes; the
    /// [`ErasureCode::repair_reads`] contract guarantees the rebuild never
    /// reads them.
    fn try_planned_rebuild(
        &self,
        object: &str,
        stripe: u64,
        row: &[usize],
        target: usize,
        scratch: &mut StripeScratch,
        times: &mut StageTimes,
    ) -> Result<Option<HelperTraffic>> {
        let n = self.code.params().total_shards();
        let mut available = vec![true; n];
        available[target] = false;
        let available = available;
        let racks = self.map.racks();
        let target_disk = row[target];
        // Hedging: with a hedge delay configured, the first-choice helper
        // set gets only that long per helper read; when one exceeds it (or
        // fails), the slow shard is *exiled* — ranked behind every other
        // survivor — and the next-ranked helper set is tried with the full
        // deadline, abandon-and-switch rather than wait. The availability
        // mask stays single-failure (the plan API's contract); codes with
        // no helper freedom (fixed plans) return the same set again, which
        // is detected below and falls through to full reconstruction.
        const EXILE_RANK: u64 = 1 << 32;
        let max_attempts = if self.hedge_delay.is_some() { 2 } else { 1 };
        let mut exiled: Vec<usize> = Vec::new();
        for attempt in 0..max_attempts {
            // Locality-first helper preference: same-rack survivors rank 0;
            // shards the hedge gave up on rank behind everything.
            let exiled_now = exiled.clone();
            let rank = move |shard: usize| {
                u64::from(!racks.same_rack(row[shard], target_disk))
                    + if exiled_now.contains(&shard) {
                        EXILE_RANK
                    } else {
                        0
                    }
            };
            let reads = self
                .code
                .repair_reads_ranked(target, &available, self.chunk_len, &rank)?;
            if attempt > 0 && reads.iter().any(|r| exiled.contains(&r.shard)) {
                // No alternate helper set exists for this code: the full
                // reconstruction path routes around the slow shard instead.
                return Ok(None);
            }
            let mut traffic = HelperTraffic::default();
            let io_start = Instant::now();
            let mut failed_shard = None;
            for read in &reads {
                traffic.add(
                    read.len as u64,
                    racks.same_rack(row[read.shard], target_disk),
                );
                if scratch.present[read.shard] {
                    continue; // verified payload already in place
                }
                let dest = &mut scratch.buf.shard_mut(read.shard)[read.range()];
                let id = ChunkId {
                    stripe,
                    shard: read.shard,
                };
                let disk = row[read.shard];
                let mut io_span = self.trace_span("chunk_io");
                if let Some((s, _)) = io_span.as_mut() {
                    self.tag_disk(s, disk);
                    s.tag("shard", read.shard.to_string());
                    s.tag("bytes", read.len.to_string());
                }
                let result = match (self.hedge_delay, &self.guards[disk]) {
                    // First attempt under hedging: short per-read budget.
                    (Some(delay), Some(guard)) if attempt == 0 => guard.read_chunk_range_deadline(
                        object,
                        id,
                        self.chunk_len,
                        read.offset,
                        dest,
                        delay,
                    ),
                    _ => self.disks[disk].read_chunk_range(
                        object,
                        id,
                        self.chunk_len,
                        read.offset,
                        dest,
                    ),
                };
                let outcome = match result {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        if let Some((mut s, tracer)) = io_span {
                            s.tag("fault", e.to_string());
                            s.finish(tracer);
                        }
                        return Err(e);
                    }
                };
                match outcome {
                    Ok(()) => {
                        if let Some((s, tracer)) = io_span {
                            s.finish(tracer);
                        }
                    }
                    Err(status) => {
                        if let Some((mut s, tracer)) = io_span {
                            // A hedge that will retry abandons this read;
                            // otherwise the helper loss just fails the plan.
                            if attempt + 1 < max_attempts {
                                s.tag("abandoned", format!("{status:?}"));
                            } else {
                                s.tag("helper_failed", format!("{status:?}"));
                            }
                            s.finish(tracer);
                        }
                        self.note_damage(&status);
                        failed_shard = Some(read.shard);
                        break;
                    }
                }
            }
            times.add_duration(Stage::ChunkIo, io_start.elapsed());
            match failed_shard {
                None => {
                    let mut rebuild_span = self.trace_span("rebuild");
                    if let Some((s, _)) = rebuild_span.as_mut() {
                        s.tag("target_shard", target.to_string());
                        if attempt > 0 {
                            // The alternate helper set finished first: the
                            // hedge won against the exiled slow shard.
                            s.tag("hedged", "winner");
                        }
                    }
                    let erasure_start = Instant::now();
                    self.code.repair_from_reads(
                        target,
                        &reads,
                        &scratch.buf.as_set(),
                        &mut scratch.rebuilt,
                    )?;
                    times.add_duration(Stage::Erasure, erasure_start.elapsed());
                    if attempt > 0 {
                        StoreMetrics::add(&self.metrics.hedge_wins, 1);
                    }
                    if let Some((s, tracer)) = rebuild_span {
                        s.finish(tracer);
                    }
                    return Ok(Some(traffic));
                }
                Some(shard) if attempt + 1 < max_attempts => {
                    exiled.push(shard);
                    StoreMetrics::add(&self.metrics.hedged_reads, 1);
                }
                Some(_) => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Reads surviving chunks into the scratch stripe and rebuilds every
    /// missing slot in place — the shared engine of multi-loss degraded
    /// reads and multi-loss repairs.
    ///
    /// Shards flagged in `scratch.present` were already read and verified
    /// by the caller (the data chunks of a degraded read; none for
    /// repairs): they are neither re-read nor re-counted. `damaged` lists
    /// shards known lost or corrupt; any further damage discovered while
    /// reading survivors is appended for the caller to rebuild. MDS codes
    /// stop reading once `k` survivors are present — any `k` shards decode
    /// the stripe, so that is all a rebuilding node would fetch, and
    /// survivors sharing the first damaged disk's rack are read first so
    /// that budget prefers intra-rack bytes — while non-MDS codes (LRC)
    /// read every survivor, since `k` arbitrary shards may not span the
    /// data.
    ///
    /// On success the whole stripe (data and parity) is valid in
    /// `scratch.buf`; returns the helper traffic read here, split
    /// intra/cross rack relative to the first damaged shard's disk.
    fn reconstruct_from_survivors(
        &self,
        object: &str,
        stripe: u64,
        row: &[usize],
        damaged: &mut Vec<usize>,
        scratch: &mut StripeScratch,
        times: &mut StageTimes,
    ) -> Result<HelperTraffic> {
        let params = self.code.params();
        let (k, n) = (params.data_shards(), params.total_shards());
        let racks = self.map.racks();
        let home_disk = damaged.first().map(|&s| row[s]);
        let same_rack_as_home =
            |shard: usize| home_disk.is_some_and(|home| racks.same_rack(row[shard], home));
        // Locality-first survivor order: same-rack shards before cross-rack
        // ones, index order within each class (MDS codes stop at k, so the
        // order decides which racks the helper bytes come from).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&shard| (!same_rack_as_home(shard), shard));
        let mut survivors = scratch.present.iter().filter(|&&p| p).count();
        let mut traffic = HelperTraffic::default();
        let io_start = Instant::now();
        for shard in order {
            if scratch.present[shard] || damaged.contains(&shard) {
                continue;
            }
            if self.code.is_mds() && survivors >= k {
                break;
            }
            let mut io_span = self.trace_span("chunk_io");
            if let Some((s, _)) = io_span.as_mut() {
                self.tag_disk(s, row[shard]);
                s.tag("shard", shard.to_string());
                s.tag("bytes", self.chunk_len.to_string());
            }
            let slot = scratch.buf.shard_mut(shard);
            match self.disks[row[shard]].read_chunk_into(object, ChunkId { stripe, shard }, slot)? {
                Ok(()) => {
                    if let Some((s, tracer)) = io_span {
                        s.finish(tracer);
                    }
                    scratch.present[shard] = true;
                    survivors += 1;
                    traffic.add(self.chunk_len as u64, same_rack_as_home(shard));
                }
                Err(status) => {
                    if let Some((mut s, tracer)) = io_span {
                        s.tag("helper_failed", format!("{status:?}"));
                        s.finish(tracer);
                    }
                    // Damage the caller had not seen yet.
                    self.note_damage(&status);
                    damaged.push(shard);
                }
            }
        }
        times.add_duration(Stage::ChunkIo, io_start.elapsed());
        if survivors < k {
            return Err(StoreError::StripeUnrecoverable {
                object: object.to_string(),
                stripe,
                survivors,
                needed: k,
            });
        }
        {
            let erasure_start = Instant::now();
            let mut view = scratch.buf.as_set_mut();
            self.code
                .reconstruct_in_place(&mut view, &scratch.present)
                .map_err(|e| self.unrecoverable(object, stripe, survivors, e))?;
            times.add_duration(Stage::Erasure, erasure_start.elapsed());
        }
        Ok(traffic)
    }

    fn unrecoverable(
        &self,
        object: &str,
        stripe: u64,
        survivors: usize,
        e: CodeError,
    ) -> StoreError {
        match e {
            CodeError::NotEnoughShards { needed, .. } => StoreError::StripeUnrecoverable {
                object: object.to_string(),
                stripe,
                survivors,
                needed,
            },
            CodeError::ReconstructionFailed { .. } => StoreError::StripeUnrecoverable {
                object: object.to_string(),
                stripe,
                survivors,
                needed: self.code.params().data_shards(),
            },
            other => StoreError::Code(other),
        }
    }

    fn note_damage(&self, status: &ChunkStatus) {
        if matches!(status, ChunkStatus::Corrupt { .. }) {
            StoreMetrics::add(&self.metrics.corrupt_chunks_detected, 1);
        }
    }

    // ------------------------------------------------------------------
    // Repair path
    // ------------------------------------------------------------------

    /// Rebuilds the `damaged` shards of one stripe and writes them back.
    ///
    /// Each claimed shard is re-verified first; shards that are healthy by
    /// now (e.g. repaired by a concurrent worker) are skipped. A single
    /// damaged shard is rebuilt along the code's cheapest path with
    /// byte-exact helper reads; multiple damaged shards use a full
    /// reconstruction over the survivors.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ObjectNotFound`],
    /// [`StoreError::StripeUnrecoverable`], or I/O / codec failures.
    pub fn repair_stripe(
        &self,
        object: &str,
        stripe: u64,
        damaged: &[usize],
    ) -> Result<StripeRepair> {
        // Repair jobs run with no caller trace (the daemon mints none), so
        // each job is its own root trace; a caller-scoped context (e.g. a
        // traced admin op) is adopted instead of replaced.
        let span = self
            .tracer()
            .map(|t| (t.root_span("repair", trace::current_ctx()), t));
        let scope = span.as_ref().map(|(s, _)| ScopedCtx::enter(Some(s.ctx())));
        let result = self.repair_stripe_inner(object, stripe, damaged);
        drop(scope);
        if let Some((mut s, tracer)) = span {
            s.tag("object", object);
            s.tag("stripe", stripe.to_string());
            if let Err(e) = &result {
                s.tag("fault", e.to_string());
            }
            s.finish_root(
                tracer,
                RootFlags {
                    error: result.is_err(),
                    ..RootFlags::default()
                },
            );
        }
        result
    }

    fn repair_stripe_inner(
        &self,
        object: &str,
        stripe: u64,
        damaged: &[usize],
    ) -> Result<StripeRepair> {
        // SeqCst: crash-test failpoint, flipped rarely and read cold.
        if self.fail.repair_panic.load(Ordering::SeqCst) {
            // pbrs-lint: allow(panic-hygiene) -- injected failure hook; panicking here is the tested behaviour
            panic!("injected repair panic (object {object:?} stripe {stripe})");
        }
        let job_start = Instant::now();
        let info = self
            .object(object)
            .ok_or_else(|| StoreError::ObjectNotFound {
                name: object.to_string(),
            })?;
        let n = self.code.params().total_shards();
        if stripe >= info.stripes {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "stripe {stripe} out of range for object {object:?} ({} stripes)",
                    info.stripes
                ),
            });
        }
        let row = self.stripe_disks(object, stripe);
        let mut report = StripeRepair::default();
        // Dedup the claimed shards so a repeated index cannot disable the
        // cheap single-failure path or double-count the repair metrics.
        let mut damaged = damaged.to_vec();
        damaged.sort_unstable();
        damaged.dedup();
        let mut targets: Vec<usize> = Vec::new();
        for &shard in &damaged {
            if shard >= n {
                return Err(StoreError::Code(CodeError::InvalidShardIndex {
                    index: shard,
                    total: n,
                }));
            }
            let (status, bytes) = self.disks[row[shard]].verify_chunk(
                object,
                ChunkId { stripe, shard },
                self.chunk_len,
            )?;
            StoreMetrics::add(&self.metrics.chunks_scrubbed, 1);
            StoreMetrics::add(&self.metrics.scrub_bytes_read, bytes);
            if status.is_healthy() {
                report.already_healthy.push(shard);
            } else {
                self.note_damage(&status);
                targets.push(shard);
            }
        }
        if targets.is_empty() {
            return Ok(report);
        }
        // The damaged disk's storage may be gone entirely; recreate the
        // object's directory before writing rebuilt chunks into it.
        for &shard in &targets {
            self.disks[row[shard]].ensure_object(object)?;
        }

        let mut scratch = self.new_scratch();
        let mut times = StageTimes::new();
        if targets.len() == 1 {
            if let Some(traffic) = self.try_planned_rebuild(
                object,
                stripe,
                &row,
                targets[0],
                &mut scratch,
                &mut times,
            )? {
                let target = targets[0];
                self.disks[row[target]].write_chunk(
                    object,
                    ChunkId {
                        stripe,
                        shard: target,
                    },
                    &scratch.rebuilt,
                )?;
                self.note_repair_traffic(traffic);
                StoreMetrics::add(&self.metrics.chunks_repaired, 1);
                StoreMetrics::add(&self.metrics.repair_bytes_written, self.chunk_len as u64);
                report.rebuilt.push(target);
                report.helper_bytes += traffic.total;
                report.intra_rack_bytes += traffic.intra_rack;
                report.cross_rack_bytes += traffic.cross_rack;
                report.bytes_written += self.chunk_len as u64;
                self.latency.repair_job.record_duration(job_start.elapsed());
                return Ok(report);
            }
        }

        // Multi-loss (or helpers unavailable): decode from survivors, then
        // write every damaged chunk back (including any damage discovered
        // while reading).
        let traffic = self.reconstruct_from_survivors(
            object,
            stripe,
            &row,
            &mut targets,
            &mut scratch,
            &mut times,
        )?;
        targets.sort_unstable();
        for &shard in &targets {
            self.disks[row[shard]].ensure_object(object)?;
            self.disks[row[shard]].write_chunk(
                object,
                ChunkId { stripe, shard },
                scratch.buf.shard(shard),
            )?;
            report.rebuilt.push(shard);
            report.bytes_written += self.chunk_len as u64;
        }
        self.note_repair_traffic(traffic);
        StoreMetrics::add(&self.metrics.chunks_repaired, targets.len() as u64);
        StoreMetrics::add(
            &self.metrics.repair_bytes_written,
            (targets.len() * self.chunk_len) as u64,
        );
        report.helper_bytes += traffic.total;
        report.intra_rack_bytes += traffic.intra_rack;
        report.cross_rack_bytes += traffic.cross_rack;
        self.latency.repair_job.record_duration(job_start.elapsed());
        Ok(report)
    }

    fn note_repair_traffic(&self, traffic: HelperTraffic) {
        StoreMetrics::add(&self.metrics.repair_helper_bytes, traffic.total);
        StoreMetrics::add(&self.metrics.repair_intra_rack_bytes, traffic.intra_rack);
        StoreMetrics::add(&self.metrics.repair_cross_rack_bytes, traffic.cross_rack);
    }

    // ------------------------------------------------------------------
    // Scrub
    // ------------------------------------------------------------------

    /// Verifies every chunk of every object (full checksum read) and
    /// reports all damage, plus disks whose backend reports the disk
    /// missing or unreachable. Also sweeps crash leftovers: stale `*.tmp`
    /// files (older than [`STALE_TMP_MIN_AGE`]) on every disk and a stale
    /// `MANIFEST.tmp` at the root are deleted and reported, so debris from
    /// a crashed writer can neither accumulate nor be mistaken for damage.
    ///
    /// # Errors
    ///
    /// Returns hard I/O failures only; missing/corrupt chunks are reported,
    /// not errors.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        for (disk, backend) in self.disks.iter().enumerate() {
            if !backend.is_available() {
                report.lost_disks.push(disk);
            }
        }
        report.tombstones_swept = self.sweep_tombstones()?;
        for (name, info) in self.objects() {
            for stripe in 0..info.stripes {
                let row = self.stripe_disks(&name, stripe);
                let (examined, bytes) =
                    self.verify_stripe(&name, stripe, &row, &mut report.damages)?;
                report.chunks_examined += examined;
                report.bytes_read += bytes;
            }
        }
        for (disk, backend) in self.disks.iter().enumerate() {
            for rel in backend.sweep_tmp(self.stale_tmp_min_age)? {
                report
                    .stale_tmp_removed
                    .push(format!("disk-{disk:02}/{rel}"));
            }
        }
        if self.sweep_stale_manifest_tmp()? {
            report.stale_tmp_removed.push("MANIFEST.tmp".to_string());
        }
        StoreMetrics::add(&self.metrics.chunks_scrubbed, report.chunks_examined);
        StoreMetrics::add(&self.metrics.scrub_bytes_read, report.bytes_read);
        Ok(report)
    }

    /// Verifies every chunk of one stripe (placement-resolved), appending
    /// damage to `damages`; returns `(chunks examined, bytes read)`.
    fn verify_stripe(
        &self,
        object: &str,
        stripe: u64,
        row: &[usize],
        damages: &mut Vec<Damage>,
    ) -> Result<(u64, u64)> {
        let mut examined = 0u64;
        let mut bytes_read = 0u64;
        for (shard, &disk) in row.iter().enumerate() {
            let (status, bytes) =
                self.disks[disk].verify_chunk(object, ChunkId { stripe, shard }, self.chunk_len)?;
            examined += 1;
            bytes_read += bytes;
            if !status.is_healthy() {
                self.note_damage(&status);
                damages.push(Damage {
                    object: object.to_string(),
                    stripe,
                    shard,
                    disk: row[shard],
                    status,
                });
            }
        }
        Ok((examined, bytes_read))
    }

    /// Sweeps the dead chunks of every tombstoned object from every pool
    /// disk; tombstones whose sweep completes on *all* disks are cleared
    /// from the manifest (an unreachable disk keeps the tombstone alive for
    /// a later pass). Returns the names fully swept.
    fn sweep_tombstones(&self) -> Result<Vec<String>> {
        let tombstones: Vec<String> = self
            .manifest
            .read()
            .expect("lock") // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            .tombstones
            .iter()
            .cloned()
            .collect();
        if tombstones.is_empty() {
            return Ok(Vec::new());
        }
        let mut swept = Vec::new();
        for name in tombstones {
            // Attempt every disk even after a failure: one unreachable disk
            // must not leave the others' dead chunks lingering for passes.
            let mut clean = true;
            for disk in &self.disks {
                if disk.remove_object(&name).is_err() {
                    clean = false;
                }
            }
            if clean {
                swept.push(name);
            }
        }
        if !swept.is_empty() {
            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            let mut manifest = self.manifest.write().expect("lock");
            for name in &swept {
                manifest.tombstones.remove(name);
            }
            if let Err(e) = manifest.save(&self.root) {
                // Keep memory matching the durable file: the sweep itself
                // is idempotent, so the next scrub simply retries.
                for name in &swept {
                    manifest.tombstones.insert(name.clone());
                }
                return Err(e);
            }
        }
        Ok(swept)
    }

    /// Incremental scrub: verifies up to `max_stripes` stripes starting at
    /// the persisted cursor (`root/SCRUB.cursor`), then advances and
    /// persists the cursor — so a full-store sweep can be spread over many
    /// small passes and survives restarts. Objects are visited in name
    /// order; a pass that reaches the end of the table resets the cursor
    /// and reports `wrapped = true`. Deleting or adding objects between
    /// passes is safe: a vanished cursor object resumes at the next name.
    ///
    /// Unlike the full [`BlockStore::scrub`], a partial pass does not sweep
    /// tombstones or stale tmp files — those belong to the (cheap,
    /// per-store) full pass; this one spreads the expensive checksum reads.
    ///
    /// # Errors
    ///
    /// Returns hard I/O failures only; missing/corrupt chunks are reported,
    /// not errors.
    pub fn scrub_partial(&self, max_stripes: usize) -> Result<PartialScrubReport> {
        let mut report = PartialScrubReport::default();
        if max_stripes == 0 {
            return Ok(report);
        }
        let cursor = self.load_scrub_cursor()?;
        let objects = self.objects();
        // Resume at the cursor: the first object at or after the cursor
        // name (it may have been deleted since), at the cursor stripe only
        // when the object still matches exactly.
        let start = match &cursor.object {
            None => 0,
            Some(at) => objects
                .iter()
                .position(|(name, _)| name.as_str() >= at.as_str())
                .unwrap_or(objects.len()),
        };
        let mut next: Option<ScrubCursor> = None;
        'scan: for (idx, (name, info)) in objects.iter().enumerate().skip(start) {
            let first_stripe = match &cursor.object {
                Some(at) if idx == start && at == name => cursor.stripe.min(info.stripes),
                _ => 0,
            };
            for stripe in first_stripe..info.stripes {
                if report.stripes_scanned == max_stripes as u64 {
                    next = Some(ScrubCursor {
                        object: Some(name.clone()),
                        stripe,
                    });
                    break 'scan;
                }
                let row = self.stripe_disks(name, stripe);
                let (examined, bytes) =
                    self.verify_stripe(name, stripe, &row, &mut report.damages)?;
                report.stripes_scanned += 1;
                report.chunks_examined += examined;
                report.bytes_read += bytes;
            }
        }
        report.wrapped = next.is_none();
        self.save_scrub_cursor(&next.unwrap_or_default())?;
        StoreMetrics::add(&self.metrics.chunks_scrubbed, report.chunks_examined);
        StoreMetrics::add(&self.metrics.scrub_bytes_read, report.bytes_read);
        Ok(report)
    }

    /// Loads the persisted incremental-scrub cursor (missing or unreadable
    /// file = start of the table; the cursor is a progress hint, not data).
    fn load_scrub_cursor(&self) -> Result<ScrubCursor> {
        let path = self.root.join(SCRUB_CURSOR_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ScrubCursor::default()),
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        let mut cursor = ScrubCursor::default();
        for line in text.lines() {
            match line.split_once(' ') {
                Some(("object", name)) if validate_object_name(name).is_ok() => {
                    cursor.object = Some(name.to_string());
                }
                Some(("stripe", n)) => cursor.stripe = n.parse().unwrap_or(0),
                _ => {}
            }
        }
        Ok(cursor)
    }

    /// Persists the cursor atomically (tmp + rename; no fsync — losing a
    /// cursor to a crash only costs re-verifying a few stripes).
    fn save_scrub_cursor(&self, cursor: &ScrubCursor) -> Result<()> {
        let path = self.root.join(SCRUB_CURSOR_FILE);
        let mut text = String::new();
        if let Some(object) = &cursor.object {
            text.push_str(&format!("object {object}\n"));
        }
        text.push_str(&format!("stripe {}\n", cursor.stripe));
        let tmp = path.with_extension("cursor.tmp");
        fs::write(&tmp, text).map_err(|e| StoreError::io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Deletes object `name`: its manifest entry (and placement rows) are
    /// replaced by a durable tombstone, so reads fail immediately, and the
    /// chunks become garbage that the next [`BlockStore::scrub`] sweeps
    /// from every disk. Reusing the name with [`BlockStore::put`] is legal
    /// right away (the put sweeps the dead chunks first).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::ObjectNotFound`],
    /// [`StoreError::ObjectDeleted`] for a name already tombstoned, or
    /// manifest I/O failures.
    pub fn delete(&self, name: &str) -> Result<ObjectInfo> {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let mut manifest = self.manifest.write().expect("lock");
        let Some(info) = manifest.objects.remove(name) else {
            return Err(if manifest.tombstones.contains(name) {
                StoreError::ObjectDeleted {
                    name: name.to_string(),
                }
            } else {
                StoreError::ObjectNotFound {
                    name: name.to_string(),
                }
            });
        };
        let rows = manifest.placements.remove(name);
        manifest.tombstones.insert(name.to_string());
        if let Err(e) = manifest.save(&self.root) {
            // Roll back to match the durable file: the object is still
            // committed on disk, so it must stay readable in memory too.
            manifest.objects.insert(name.to_string(), info);
            if let Some(rows) = rows {
                manifest.placements.insert(name.to_string(), rows);
            }
            manifest.tombstones.remove(name);
            return Err(e);
        }
        drop(manifest);
        // If the incremental scrub was parked mid-way through this object,
        // rewind its stripe to 0: a re-put under the same name must have
        // its early stripes verified by the current sweep, not silently
        // skipped. Best-effort — the cursor is a progress hint, and a
        // failed rewind only costs re-verification.
        if let Ok(cursor) = self.load_scrub_cursor() {
            if cursor.object.as_deref() == Some(name) && cursor.stripe > 0 {
                let _ = self.save_scrub_cursor(&ScrubCursor {
                    object: Some(name.to_string()),
                    stripe: 0,
                });
            }
        }
        Ok(info)
    }

    /// Deletes `root/MANIFEST.tmp` if it is a stale crash leftover (a live
    /// `Manifest::save` is between tmp-write and rename for well under
    /// [`STALE_TMP_MIN_AGE`]). Returns whether a file was removed.
    fn sweep_stale_manifest_tmp(&self) -> Result<bool> {
        let tmp = manifest_path(&self.root).with_extension("tmp");
        let stale = fs::metadata(&tmp)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= self.stale_tmp_min_age);
        if !stale {
            return Ok(false);
        }
        match fs::remove_file(&tmp) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::io(&tmp, e)),
        }
    }
}

/// Returns a pipeline stripe buffer to the free pool when dropped — even
/// mid-panic-unwind, so a dying encode worker can never starve the reader
/// thread of buffers (the deadlock this guard exists to prevent).
struct ReturnBuffer<'a> {
    buf: Option<ShardBuffer>,
    free_tx: &'a mpsc::Sender<ShardBuffer>,
}

impl Drop for ReturnBuffer<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            let _ = self.free_tx.send(buf);
        }
    }
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers practically all of them).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Reads until `buf` is full or the stream ends; returns the bytes read.
fn read_full(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TempDir;
    use pbrs_erasure::total_read_bytes;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 251) as u8).collect()
    }

    fn small_store(dir: &TempDir, spec: &str) -> BlockStore {
        let spec: CodeSpec = spec.parse().unwrap();
        BlockStore::open(StoreConfig::new(dir.path().join("store"), spec).chunk_len(512)).unwrap()
    }

    #[test]
    fn put_get_round_trip_all_sizes() {
        let dir = TempDir::new("store-roundtrip");
        let store = small_store(&dir, "rs-4-2");
        // Partial stripe, exact stripe, multi-stripe, empty.
        for (name, len) in [
            ("tiny", 10usize),
            ("exact", 4 * 512),
            ("multi", 3 * 4 * 512 + 77),
            ("empty", 0),
        ] {
            let data = pattern(len);
            let info = store.put(name, &data[..]).unwrap();
            assert_eq!(info.len, len as u64, "{name}");
            assert_eq!(store.get(name).unwrap(), data, "{name}");
        }
        assert_eq!(store.objects().len(), 4);
        let snap = store.metrics();
        assert_eq!(snap.degraded_stripe_reads, 0);
        assert_eq!(snap.bytes_served, snap.bytes_ingested);
    }

    #[test]
    fn pipeline_and_sequential_stores_agree_bit_for_bit() {
        // The same object through a 1-worker (inline) store and a wide
        // pipeline must produce identical chunk files and reads.
        let dir = TempDir::new("store-pipeline-parity");
        let spec: CodeSpec = "piggyback-4-2".parse().unwrap();
        let data = pattern(4 * 512 * 7 + 311); // 8 stripes, last partial
        let inline = BlockStore::open(
            StoreConfig::new(dir.path().join("inline"), spec)
                .chunk_len(512)
                .pipeline_workers(1),
        )
        .unwrap();
        let piped = BlockStore::open(
            StoreConfig::new(dir.path().join("piped"), spec)
                .chunk_len(512)
                .pipeline_workers(3),
        )
        .unwrap();
        inline.put("obj", &data[..]).unwrap();
        piped.put("obj", &data[..]).unwrap();
        for stripe in 0..8 {
            for shard in 0..6 {
                assert_eq!(
                    fs::read(inline.chunk_path("obj", stripe, shard)).unwrap(),
                    fs::read(piped.chunk_path("obj", stripe, shard)).unwrap(),
                    "stripe {stripe} shard {shard}"
                );
            }
        }
        assert_eq!(inline.get("obj").unwrap(), data);
        assert_eq!(piped.get("obj").unwrap(), data);
    }

    #[test]
    fn parallel_degraded_get_heals_across_workers() {
        // Many stripes served by several workers, all degraded.
        let dir = TempDir::new("store-parallel-degraded");
        let spec: CodeSpec = "piggyback-4-2".parse().unwrap();
        let store = BlockStore::open(
            StoreConfig::new(dir.path().join("store"), spec)
                .chunk_len(512)
                .pipeline_workers(3),
        )
        .unwrap();
        let data = pattern(4 * 512 * 9 + 45); // 10 stripes
        store.put("obj", &data[..]).unwrap();
        fs::remove_dir_all(store.disk_path(2)).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
        let snap = store.metrics();
        assert_eq!(snap.degraded_stripe_reads, 10);
        assert!(snap.degraded_helper_bytes > 0);
    }

    #[test]
    fn parallel_get_surfaces_unrecoverable_stripes() {
        let dir = TempDir::new("store-parallel-unrecoverable");
        let store = BlockStore::open(
            StoreConfig::new(dir.path().join("store"), "rs-4-2".parse().unwrap())
                .chunk_len(512)
                .pipeline_workers(4),
        )
        .unwrap();
        let data = pattern(4 * 512 * 6);
        store.put("obj", &data[..]).unwrap();
        for disk in [0, 1, 2] {
            fs::remove_dir_all(store.disk_path(disk)).unwrap();
        }
        assert!(matches!(
            store.get("obj"),
            Err(StoreError::StripeUnrecoverable { survivors: 3, .. })
        ));
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let dir = TempDir::new("store-names");
        let store = small_store(&dir, "rs-4-2");
        store.put("a", &b"hello"[..]).unwrap();
        assert!(matches!(
            store.put("a", &b"again"[..]),
            Err(StoreError::ObjectExists { .. })
        ));
        assert!(matches!(
            store.put("../evil", &b"x"[..]),
            Err(StoreError::InvalidObjectName { .. })
        ));
        assert!(matches!(
            store.get("missing"),
            Err(StoreError::ObjectNotFound { .. })
        ));
    }

    #[test]
    fn reopen_checks_geometry() {
        let dir = TempDir::new("store-reopen");
        let root = dir.path().join("store");
        let spec: CodeSpec = "rs-4-2".parse().unwrap();
        {
            let store = BlockStore::open(StoreConfig::new(&root, spec).chunk_len(512)).unwrap();
            store.put("a", &pattern(100)[..]).unwrap();
        }
        // Same geometry reopens and still serves.
        let store = BlockStore::open(StoreConfig::new(&root, spec).chunk_len(512)).unwrap();
        assert_eq!(store.get("a").unwrap(), pattern(100));
        // Different geometry is rejected.
        assert!(matches!(
            BlockStore::open(StoreConfig::new(&root, spec).chunk_len(1024)),
            Err(StoreError::ConfigMismatch { .. })
        ));
        let other: CodeSpec = "rs-6-3".parse().unwrap();
        assert!(matches!(
            BlockStore::open(StoreConfig::new(&root, other).chunk_len(512)),
            Err(StoreError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn degraded_read_after_losing_a_disk() {
        let dir = TempDir::new("store-degraded");
        // (6, 3): piggyback groups of 3, so a data repair reads
        // (6 + 3) / 2 = 4.5 chunk-equivalents instead of 6.
        let store = small_store(&dir, "piggyback-6-3");
        let data = pattern(6 * 512 * 2 + 123);
        store.put("obj", &data[..]).unwrap();
        fs::remove_dir_all(store.disk_path(1)).unwrap();
        assert_eq!(store.get("obj").unwrap(), data, "degraded read");
        let snap = store.metrics();
        assert_eq!(snap.degraded_stripe_reads, 3);
        assert!(snap.degraded_helper_bytes > 0);
        // Piggyback single-loss reads fewer helper bytes than k whole chunks.
        let mut available = vec![true; 9];
        available[1] = false;
        let per_stripe = total_read_bytes(&store.code().repair_reads(1, &available, 512).unwrap());
        assert_eq!(snap.degraded_helper_bytes, 3 * per_stripe);
        assert!(per_stripe < 6 * 512);
    }

    #[test]
    fn two_losses_still_serve_and_repair() {
        let dir = TempDir::new("store-two-losses");
        let store = small_store(&dir, "rs-4-2");
        let data = pattern(4 * 512 + 64);
        store.put("obj", &data[..]).unwrap();
        fs::remove_dir_all(store.disk_path(0)).unwrap();
        fs::remove_dir_all(store.disk_path(3)).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
        // Repair both stripes, then the scrub is clean again.
        let scrub = store.scrub().unwrap();
        assert_eq!(scrub.lost_disks, vec![0, 3]);
        for stripe in 0..2 {
            let damaged: Vec<usize> = scrub
                .damages
                .iter()
                .filter(|d| d.stripe == stripe)
                .map(|d| d.shard)
                .collect();
            let repair = store.repair_stripe("obj", stripe, &damaged).unwrap();
            assert_eq!(repair.rebuilt, vec![0, 3]);
        }
        assert!(store.scrub().unwrap().is_clean());
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn three_losses_are_unrecoverable_for_rs_4_2() {
        let dir = TempDir::new("store-unrecoverable");
        let store = small_store(&dir, "rs-4-2");
        store.put("obj", &pattern(100)[..]).unwrap();
        for disk in [0, 1, 2] {
            fs::remove_dir_all(store.disk_path(disk)).unwrap();
        }
        assert!(matches!(
            store.get("obj"),
            Err(StoreError::StripeUnrecoverable { survivors: 3, .. })
        ));
    }

    #[test]
    fn corrupt_chunk_is_served_and_repaired_like_missing() {
        let dir = TempDir::new("store-corrupt");
        let store = small_store(&dir, "rs-4-2");
        let data = pattern(4 * 512);
        store.put("obj", &data[..]).unwrap();
        // Flip one payload byte of shard 2, stripe 0.
        let path = store.chunk_path("obj", 0, 2);
        let mut bytes = fs::read(&path).unwrap();
        let at = chunk::HEADER_LEN + 99;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(
            store.get("obj").unwrap(),
            data,
            "degraded read over corrupt"
        );
        assert!(store.metrics().corrupt_chunks_detected >= 1);
        let repair = store.repair_stripe("obj", 0, &[2]).unwrap();
        assert_eq!(repair.rebuilt, vec![2]);
        assert!(store.scrub().unwrap().is_clean());
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn repair_stripe_dedups_the_damaged_list() {
        let dir = TempDir::new("store-dedup");
        let store = small_store(&dir, "rs-4-2");
        let data = pattern(4 * 512);
        store.put("obj", &data[..]).unwrap();
        fs::remove_file(store.chunk_path("obj", 0, 2)).unwrap();
        // A duplicated index must not disable the single-failure path or
        // double-count the metrics.
        let repair = store.repair_stripe("obj", 0, &[2, 2, 2]).unwrap();
        assert_eq!(repair.rebuilt, vec![2]);
        assert_eq!(repair.helper_bytes, 4 * 512, "k whole chunks for RS");
        assert_eq!(store.metrics().chunks_repaired, 1);
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn corrupt_helper_cannot_poison_a_rebuild() {
        let dir = TempDir::new("store-poison");
        let store = small_store(&dir, "piggyback-6-3");
        let data = pattern(6 * 512);
        store.put("obj", &data[..]).unwrap();
        // Lose chunk 0 and bit-rot the b-half of one of its repair helpers:
        // the planned rebuild reads exactly that half, must detect the bad
        // checksum, and must fall back to full reconstruction instead of
        // writing a poisoned chunk under a fresh valid CRC.
        fs::remove_file(store.chunk_path("obj", 0, 0)).unwrap();
        let helper = store.chunk_path("obj", 0, 3);
        let mut bytes = fs::read(&helper).unwrap();
        let at = chunk::HEADER_LEN + 512 / 2 + 7;
        bytes[at] ^= 0x80;
        fs::write(&helper, &bytes).unwrap();

        let repair = store.repair_stripe("obj", 0, &[0]).unwrap();
        // Both the lost chunk and the rotten helper end up rebuilt.
        assert_eq!(repair.rebuilt, vec![0, 3]);
        assert!(store.scrub().unwrap().is_clean());
        assert_eq!(store.get("obj").unwrap(), data, "no poisoned bytes served");
    }

    #[test]
    fn repair_stripe_skips_healthy_shards() {
        let dir = TempDir::new("store-skip");
        let store = small_store(&dir, "rs-4-2");
        store.put("obj", &pattern(300)[..]).unwrap();
        let repair = store.repair_stripe("obj", 0, &[1, 4]).unwrap();
        assert!(repair.rebuilt.is_empty());
        assert_eq!(repair.already_healthy, vec![1, 4]);
        assert_eq!(repair.helper_bytes, 0);
    }

    #[test]
    fn panicking_pipeline_worker_fails_put_instead_of_hanging() {
        let dir = TempDir::new("store-pipeline-panic");
        let store = BlockStore::open(
            StoreConfig::new(dir.path().join("store"), "rs-4-2".parse().unwrap())
                .chunk_len(512)
                .pipeline_workers(2),
        )
        .unwrap();
        store.inject_encode_panic(true);
        // 8 stripes: enough work that losing stripe buffers to dead
        // workers used to starve the reader and hang put() forever.
        let data = pattern(4 * 512 * 8);
        let result = store.put("obj", &data[..]);
        assert!(
            matches!(result, Err(StoreError::WorkerPanic { .. })),
            "put must surface the worker panic: {result:?}"
        );
        // The failed put cleaned up after itself and the store still works.
        store.inject_encode_panic(false);
        assert!(store.objects().is_empty());
        store.put("obj", &data[..]).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn open_rejects_bad_chunk_len() {
        let dir = TempDir::new("store-badlen");
        let spec: CodeSpec = "piggyback-4-2".parse().unwrap();
        assert!(matches!(
            BlockStore::open(StoreConfig::new(dir.path().join("s"), spec).chunk_len(0)),
            Err(StoreError::InvalidConfig { .. })
        ));
        // Piggyback needs even chunk lengths.
        assert!(matches!(
            BlockStore::open(StoreConfig::new(dir.path().join("s"), spec).chunk_len(511)),
            Err(StoreError::InvalidConfig { .. })
        ));
    }
}
