//! Streaming entry points: stripe-at-a-time object ingest and serving.
//!
//! [`BlockStore::put`] and [`BlockStore::get`] move whole objects through
//! memory, which is the right shape for tests and repair tooling but not
//! for a network front door: a gateway serving thousands of connections
//! must hold O(stripe) per request, not O(object). This module provides
//! the two streaming halves the gateway is built on:
//!
//! * [`ObjectWriter`] — ingest: bytes are appended in arbitrary-sized
//!   pieces into one reusable stripe buffer; every time a stripe fills it
//!   is encoded and its `k + r` chunks written immediately. The manifest
//!   commit happens only at [`ObjectWriter::finish`], with exactly the
//!   durability contract of `put` (every chunk durable before the entry),
//!   and dropping an unfinished writer aborts cleanly — chunks removed,
//!   name released.
//! * [`ObjectReader`] — serving: the object's metadata and placement rows
//!   are resolved once, then [`ObjectReader::read_stripe`] decodes any
//!   stripe into a caller buffer, transparently degrading when chunks are
//!   missing (and reporting that it did, so a serving tier can measure
//!   degraded-read share). One reusable scratch rides along, so steady
//!   state allocates nothing.
//!
//! Both sides hold an `Arc<BlockStore>` and are `Send`, so a reactor can
//! hand them between worker threads as a request progresses.

use std::sync::Arc;

use pbrs_erasure::ShardBuffer;
use pbrs_obs::StageTimes;

use crate::error::{Result, StoreError};
use crate::manifest::ObjectInfo;
use crate::store::{BlockStore, StripeScratch};

/// Stripe-at-a-time object ingest; see the [module docs](self).
///
/// Created by [`BlockStore::writer`]. The name is reserved for the whole
/// life of the writer: concurrent `put`s or writers for the same name
/// fail with [`StoreError::ObjectExists`]. Call [`ObjectWriter::finish`]
/// to commit; dropping the writer first aborts the ingest (best-effort
/// chunk cleanup, reservation released).
pub struct ObjectWriter {
    store: Arc<BlockStore>,
    name: String,
    buf: ShardBuffer,
    /// Data bytes buffered in the current (unwritten) stripe.
    filled: usize,
    /// Stripes already encoded and written.
    stripes: u64,
    /// Total payload bytes accepted.
    total: u64,
    /// Cumulative erasure/chunk-io time across flushed stripes.
    stage_times: StageTimes,
    state: WriterState,
}

#[derive(PartialEq)]
enum WriterState {
    Open,
    /// A stripe write failed: the object can no longer be committed.
    Poisoned,
    /// Finished (committed or aborted); Drop has nothing left to do.
    Closed,
}

impl ObjectWriter {
    pub(crate) fn new(store: Arc<BlockStore>, name: &str) -> Result<Self> {
        store.reserve_name(name)?;
        if let Err(e) = store.prepare_object_dirs(name) {
            store.release_name(name);
            return Err(e);
        }
        let n = store.shards_per_stripe();
        let buf = ShardBuffer::zeroed(n, store.chunk_len());
        Ok(ObjectWriter {
            store,
            name: name.to_string(),
            buf,
            filled: 0,
            stripes: 0,
            total: 0,
            stage_times: StageTimes::new(),
            state: WriterState::Open,
        })
    }

    /// The object name being written.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Payload bytes accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.total
    }

    /// Cumulative per-stage time (erasure encode vs chunk I/O) spent by
    /// this writer's stripe flushes so far.
    pub fn stage_times(&self) -> StageTimes {
        self.stage_times
    }

    /// Appends `data` to the object. Every time the internal stripe
    /// buffer fills, that stripe is encoded and all of its chunks are
    /// written before the call returns — memory held is always one
    /// stripe, regardless of object size.
    ///
    /// # Errors
    ///
    /// Chunk-write and codec failures. After an error the writer is
    /// poisoned: further writes and [`ObjectWriter::finish`] fail, and
    /// dropping it cleans up the partial object.
    pub fn write(&mut self, mut data: &[u8]) -> Result<()> {
        self.check_open()?;
        let chunk_len = self.store.chunk_len();
        let stripe_len = self.store.stripe_data_len();
        while !data.is_empty() {
            let shard = self.filled / chunk_len;
            let offset = self.filled % chunk_len;
            let take = (chunk_len - offset).min(data.len());
            self.buf.shard_mut(shard)[offset..offset + take].copy_from_slice(&data[..take]);
            self.filled += take;
            self.total += take as u64;
            data = &data[take..];
            if self.filled == stripe_len {
                self.flush_stripe()?;
            }
        }
        Ok(())
    }

    /// Encodes and writes the buffered stripe (zero-padding a partial
    /// tail), poisoning the writer on failure.
    fn flush_stripe(&mut self) -> Result<()> {
        let chunk_len = self.store.chunk_len();
        let k = self.store.stripe_data_len() / chunk_len;
        // Zero everything past the payload: a partial tail stripe must not
        // leak bytes from the previous stripe into parity.
        let shard = self.filled / chunk_len;
        if shard < k {
            let offset = self.filled % chunk_len;
            self.buf.shard_mut(shard)[offset..].fill(0);
            for s in shard + 1..k {
                self.buf.shard_mut(s).fill(0);
            }
        }
        let result = self.store.encode_and_write_stripe(
            &self.name,
            self.stripes,
            &mut self.buf,
            &mut self.stage_times,
        );
        match result {
            Ok(()) => {
                self.stripes += 1;
                self.filled = 0;
                Ok(())
            }
            Err(e) => {
                self.state = WriterState::Poisoned;
                Err(e)
            }
        }
    }

    /// Commits the object: flushes a partial tail stripe, then writes the
    /// manifest entry durably. Only after this returns `Ok` is the object
    /// readable; a writer dropped before `finish` leaves no trace.
    ///
    /// # Errors
    ///
    /// Chunk-write, codec, and manifest I/O failures — in every case the
    /// partial object's chunks are removed and the name is released.
    pub fn finish(mut self) -> Result<ObjectInfo> {
        self.check_open()?;
        if self.filled > 0 {
            self.flush_stripe()?; // poisons on failure; Drop cleans up
        }
        let result = self
            .store
            .commit_object(&self.name, self.total, self.stripes);
        if result.is_err() {
            self.store.remove_object_chunks(&self.name);
        }
        self.store.release_name(&self.name);
        self.state = WriterState::Closed;
        result
    }

    /// Abandons the ingest: best-effort removal of every chunk written so
    /// far, then the name reservation is released. Equivalent to dropping
    /// the writer, but lets the caller see it happen explicitly.
    pub fn abort(mut self) {
        self.cleanup();
    }

    fn check_open(&self) -> Result<()> {
        match self.state {
            WriterState::Open => Ok(()),
            _ => Err(StoreError::ObjectExists {
                name: self.name.clone(),
            }),
        }
    }

    fn cleanup(&mut self) {
        if self.state != WriterState::Closed {
            self.store.remove_object_chunks(&self.name);
            self.store.release_name(&self.name);
            self.state = WriterState::Closed;
        }
    }
}

impl Drop for ObjectWriter {
    fn drop(&mut self) {
        self.cleanup();
    }
}

impl std::fmt::Debug for ObjectWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectWriter")
            .field("name", &self.name)
            .field("bytes_written", &self.total)
            .field("stripes", &self.stripes)
            .finish()
    }
}

/// Stripe-at-a-time object serving; see the [module docs](self).
///
/// Created by [`BlockStore::reader`]. Metadata and per-stripe placement
/// are resolved once at creation; each [`ObjectReader::read_stripe`] then
/// costs exactly that stripe's chunk reads (plus rebuild work when
/// degraded), reusing one internal scratch across calls.
pub struct ObjectReader {
    store: Arc<BlockStore>,
    name: String,
    info: ObjectInfo,
    rows: Vec<Vec<usize>>,
    scratch: StripeScratch,
    degraded_stripes: u64,
    /// Per-stage time of the most recent `read_stripe` call.
    last_stage_times: StageTimes,
    /// Cumulative per-stage time across all `read_stripe` calls.
    stage_times: StageTimes,
}

impl ObjectReader {
    pub(crate) fn new(store: Arc<BlockStore>, name: &str) -> Result<Self> {
        let info = store.lookup(name)?;
        let rows = store.object_rows(name, info.stripes);
        let scratch = store.new_scratch();
        store.note_streamed_read(0, true);
        Ok(ObjectReader {
            store,
            name: name.to_string(),
            info,
            rows,
            scratch,
            degraded_stripes: 0,
            last_stage_times: StageTimes::new(),
            stage_times: StageTimes::new(),
        })
    }

    /// The object name being read.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The object's metadata (total length, stripe count).
    pub fn info(&self) -> ObjectInfo {
        self.info
    }

    /// Total payload length in bytes.
    pub fn len(&self) -> u64 {
        self.info.len
    }

    /// Whether the object is empty (zero stripes).
    pub fn is_empty(&self) -> bool {
        self.info.len == 0
    }

    /// Number of stripes.
    pub fn stripes(&self) -> u64 {
        self.info.stripes
    }

    /// The full-stripe payload size (`k × chunk_len`); every stripe but
    /// possibly the last carries exactly this many bytes.
    pub fn stripe_len(&self) -> usize {
        self.store.stripe_data_len()
    }

    /// Payload bytes carried by stripe `stripe` (the last stripe may be
    /// short).
    pub fn stripe_payload_len(&self, stripe: u64) -> usize {
        let full = self.store.stripe_data_len() as u64;
        let start = stripe * full;
        (self.info.len.saturating_sub(start)).min(full) as usize
    }

    /// Stripes served degraded so far by this reader.
    pub fn degraded_stripes(&self) -> u64 {
        self.degraded_stripes
    }

    /// Per-stage time (chunk I/O vs erasure arithmetic) of the most
    /// recent [`ObjectReader::read_stripe`] call — the per-stripe delta a
    /// serving tier ships with each response frame.
    pub fn last_stage_times(&self) -> StageTimes {
        self.last_stage_times
    }

    /// Cumulative per-stage time across every stripe this reader served.
    pub fn stage_times(&self) -> StageTimes {
        self.stage_times
    }

    /// Decodes stripe `stripe` into the front of `out`, transparently
    /// degrading when chunks are missing or corrupt. Returns the payload
    /// length (`stripe_payload_len`; bytes past it in `out` are padding)
    /// and whether the stripe was served degraded.
    ///
    /// `out` must hold at least [`ObjectReader::stripe_len`] bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::StripeUnrecoverable`] when too many chunks are lost,
    /// I/O failures, or [`StoreError::InvalidConfig`] for an out-of-range
    /// stripe or an undersized buffer.
    pub fn read_stripe(&mut self, stripe: u64, out: &mut [u8]) -> Result<(usize, bool)> {
        if stripe >= self.info.stripes {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "stripe {stripe} out of range for {:?} ({} stripes)",
                    self.name, self.info.stripes
                ),
            });
        }
        let stripe_len = self.store.stripe_data_len();
        if out.len() < stripe_len {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "stripe buffer of {} bytes is smaller than the stripe ({stripe_len})",
                    out.len()
                ),
            });
        }
        // pbrs-lint: allow(panic-hygiene) -- stripe is bounded by rows.len(), which is a usize
        let row = &self.rows[usize::try_from(stripe).expect("stripe count fits usize")];
        let mut times = StageTimes::new();
        let degraded = self.store.read_stripe_into(
            &self.name,
            stripe,
            row,
            &mut out[..stripe_len],
            &mut self.scratch,
            &mut times,
        )?;
        self.last_stage_times = times;
        self.stage_times.merge(&times);
        if degraded {
            self.degraded_stripes += 1;
        }
        let payload = self.stripe_payload_len(stripe);
        self.store.note_streamed_read(payload as u64, false);
        Ok((payload, degraded))
    }
}

impl std::fmt::Debug for ObjectReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectReader")
            .field("name", &self.name)
            .field("len", &self.info.len)
            .field("stripes", &self.info.stripes)
            .field("degraded_stripes", &self.degraded_stripes)
            .finish()
    }
}

impl BlockStore {
    /// Opens a streaming writer for a new object `name`; see
    /// [`ObjectWriter`]. The name is reserved until the writer finishes
    /// or is dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectExists`], [`StoreError::InvalidObjectName`],
    /// or disk preparation failures.
    pub fn writer(self: &Arc<Self>, name: &str) -> Result<ObjectWriter> {
        ObjectWriter::new(Arc::clone(self), name)
    }

    /// Opens a streaming reader over object `name`; see [`ObjectReader`].
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectNotFound`], or [`StoreError::ObjectDeleted`]
    /// for a tombstoned name.
    pub fn reader(self: &Arc<Self>, name: &str) -> Result<ObjectReader> {
        ObjectReader::new(Arc::clone(self), name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use crate::testing::TempDir;
    use pbrs_erasure::CodeSpec;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 31 + 7) % 251) as u8).collect()
    }

    fn small_store(dir: &TempDir, spec: &str) -> Arc<BlockStore> {
        let spec: CodeSpec = spec.parse().unwrap();
        Arc::new(
            BlockStore::open(StoreConfig::new(dir.path().join("store"), spec).chunk_len(512))
                .unwrap(),
        )
    }

    #[test]
    fn streamed_write_matches_put_semantics() {
        let dir = TempDir::new("stream-write");
        let store = small_store(&dir, "rs-4-2");
        // 2.5 stripes, written in awkward piece sizes.
        let data = pattern(4 * 512 * 2 + 700);
        let mut writer = store.writer("obj").unwrap();
        for piece in data.chunks(333) {
            writer.write(piece).unwrap();
        }
        let info = writer.finish().unwrap();
        assert_eq!(info.len, data.len() as u64);
        assert_eq!(info.stripes, 3);
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn dropped_writer_leaves_no_trace_and_frees_the_name() {
        let dir = TempDir::new("stream-abort");
        let store = small_store(&dir, "rs-4-2");
        {
            let mut writer = store.writer("obj").unwrap();
            writer.write(&pattern(5000)).unwrap();
            // The name is reserved while the writer lives.
            assert!(matches!(
                store.writer("obj"),
                Err(StoreError::ObjectExists { .. })
            ));
            // Dropped without finish.
        }
        assert!(matches!(
            store.get("obj"),
            Err(StoreError::ObjectNotFound { .. })
        ));
        // The name is free again, and a clean ingest works.
        let data = pattern(1000);
        let mut writer = store.writer("obj").unwrap();
        writer.write(&data).unwrap();
        writer.finish().unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
    }

    #[test]
    fn reader_streams_stripes_healthy_and_degraded() {
        let dir = TempDir::new("stream-read");
        let store = small_store(&dir, "piggyback-4-2");
        let data = pattern(4 * 512 * 3 + 123);
        store.put("obj", &data[..]).unwrap();

        let mut reader = store.reader("obj").unwrap();
        assert_eq!(reader.len(), data.len() as u64);
        assert_eq!(reader.stripes(), 4);
        let mut out = vec![0u8; reader.stripe_len()];
        let mut served = Vec::new();
        for stripe in 0..reader.stripes() {
            let (len, degraded) = reader.read_stripe(stripe, &mut out).unwrap();
            assert!(!degraded, "healthy store must not degrade");
            served.extend_from_slice(&out[..len]);
        }
        assert_eq!(served, data);

        // Lose a data disk: the same reader API serves degraded and says so.
        std::fs::remove_dir_all(store.disk_path(1)).unwrap();
        let mut reader = store.reader("obj").unwrap();
        let mut served = Vec::new();
        for stripe in 0..reader.stripes() {
            let (len, degraded) = reader.read_stripe(stripe, &mut out).unwrap();
            assert!(degraded, "stripe {stripe} must report degraded");
            served.extend_from_slice(&out[..len]);
        }
        assert_eq!(served, data);
        assert_eq!(reader.degraded_stripes(), 4);
    }

    #[test]
    fn stage_times_and_latency_histograms_accumulate() {
        use pbrs_obs::Stage;
        let dir = TempDir::new("stream-stages");
        let store = small_store(&dir, "piggyback-4-2");
        let data = pattern(4 * 512 * 3);
        let mut writer = store.writer("obj").unwrap();
        writer.write(&data).unwrap();
        // Stripes have been flushed, so encode + chunk writes were timed.
        let wt = writer.stage_times();
        assert!(wt.get(Stage::ChunkIo) > 0, "writer chunk io untimed");
        writer.finish().unwrap();

        let mut out = vec![0u8; store.stripe_data_len()];
        let mut reader = store.reader("obj").unwrap();
        reader.read_stripe(0, &mut out).unwrap();
        let healthy = reader.last_stage_times();
        assert!(healthy.get(Stage::ChunkIo) > 0, "read chunk io untimed");
        assert_eq!(healthy.get(Stage::Erasure), 0, "healthy read ran erasure");
        assert_eq!(store.latency().healthy_stripe_read.count(), 1);

        // Lose a disk: degraded reads time the reconstruct and feed the
        // degraded histograms.
        std::fs::remove_dir_all(store.disk_path(0)).unwrap();
        let mut reader = store.reader("obj").unwrap();
        for stripe in 0..reader.stripes() {
            let (_, degraded) = reader.read_stripe(stripe, &mut out).unwrap();
            assert!(degraded);
        }
        let total = reader.stage_times();
        assert!(total.get(Stage::ChunkIo) > 0);
        let latency = store.latency();
        assert_eq!(latency.degraded_stripe_read.count(), 3);
        assert_eq!(latency.degraded_reconstruct.count(), 3);
        assert!(latency.degraded_reconstruct.p99() <= latency.degraded_stripe_read.max());
    }

    #[test]
    fn reader_of_deleted_object_sees_the_typed_error() {
        let dir = TempDir::new("stream-deleted");
        let store = small_store(&dir, "rs-4-2");
        store.put("obj", &pattern(100)[..]).unwrap();
        store.delete("obj").unwrap();
        assert!(matches!(
            store.reader("obj"),
            Err(StoreError::ObjectDeleted { .. })
        ));
        assert!(matches!(
            store.reader("never"),
            Err(StoreError::ObjectNotFound { .. })
        ));
    }

    #[test]
    fn empty_object_round_trips() {
        let dir = TempDir::new("stream-empty");
        let store = small_store(&dir, "rs-4-2");
        let writer = store.writer("empty").unwrap();
        let info = writer.finish().unwrap();
        assert_eq!(info.len, 0);
        assert_eq!(info.stripes, 0);
        let reader = store.reader("empty").unwrap();
        assert!(reader.is_empty());
        assert_eq!(store.get("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn out_of_range_stripe_and_short_buffer_are_rejected() {
        let dir = TempDir::new("stream-bounds");
        let store = small_store(&dir, "rs-4-2");
        store.put("obj", &pattern(100)[..]).unwrap();
        let mut reader = store.reader("obj").unwrap();
        let mut out = vec![0u8; reader.stripe_len()];
        assert!(reader.read_stripe(5, &mut out).is_err());
        let mut short = vec![0u8; 8];
        assert!(reader.read_stripe(0, &mut short).is_err());
    }
}
