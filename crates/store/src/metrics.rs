//! Traffic and health counters.
//!
//! The whole point of running a real store under the paper's codes is to
//! *measure bytes*, so every I/O path feeds a shared set of atomic counters:
//! ingest, normal reads, degraded reads (and the helper bytes they cost),
//! repairs (ditto) and scrub traffic. [`StoreMetrics::snapshot`] produces a
//! plain-struct copy labelled with the store's code, so two stores running
//! the same workload under different codes can be compared side by side —
//! the paper's RS-vs-Piggybacked experiment on real file I/O.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, updated by every store and daemon thread.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Logical object bytes accepted by `put`.
    pub bytes_ingested: AtomicU64,
    /// Chunk files written by `put` (data + parity).
    pub chunks_written: AtomicU64,
    /// Chunk payload bytes written by `put` (data + parity).
    pub chunk_bytes_written: AtomicU64,
    /// Objects served by `get`.
    pub objects_read: AtomicU64,
    /// Logical object bytes served by `get`.
    pub bytes_served: AtomicU64,
    /// Stripes that needed a degraded read to be served.
    pub degraded_stripe_reads: AtomicU64,
    /// Helper bytes read from other "disks" to serve degraded reads.
    pub degraded_helper_bytes: AtomicU64,
    /// Degraded-read helper bytes sourced from the damaged chunk's own rack.
    pub degraded_intra_rack_bytes: AtomicU64,
    /// Degraded-read helper bytes that crossed racks.
    pub degraded_cross_rack_bytes: AtomicU64,
    /// Chunks found corrupt (bad checksum / header) by any path.
    pub corrupt_chunks_detected: AtomicU64,
    /// Chunks rebuilt by repair.
    pub chunks_repaired: AtomicU64,
    /// Helper bytes read from surviving "disks" to rebuild chunks.
    pub repair_helper_bytes: AtomicU64,
    /// Repair helper bytes sourced from the rebuilt chunk's own rack.
    pub repair_intra_rack_bytes: AtomicU64,
    /// Repair helper bytes that crossed racks — the paper's scarce resource.
    pub repair_cross_rack_bytes: AtomicU64,
    /// Rebuilt chunk payload bytes written back.
    pub repair_bytes_written: AtomicU64,
    /// Chunks examined by scrub passes.
    pub chunks_scrubbed: AtomicU64,
    /// Payload bytes read (and checksummed) by scrub passes.
    pub scrub_bytes_read: AtomicU64,
}

impl StoreMetrics {
    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, labelled with the code `name`.
    pub fn snapshot(&self, code: &str) -> MetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            code: code.to_string(),
            bytes_ingested: get(&self.bytes_ingested),
            chunks_written: get(&self.chunks_written),
            chunk_bytes_written: get(&self.chunk_bytes_written),
            objects_read: get(&self.objects_read),
            bytes_served: get(&self.bytes_served),
            degraded_stripe_reads: get(&self.degraded_stripe_reads),
            degraded_helper_bytes: get(&self.degraded_helper_bytes),
            degraded_intra_rack_bytes: get(&self.degraded_intra_rack_bytes),
            degraded_cross_rack_bytes: get(&self.degraded_cross_rack_bytes),
            corrupt_chunks_detected: get(&self.corrupt_chunks_detected),
            chunks_repaired: get(&self.chunks_repaired),
            repair_helper_bytes: get(&self.repair_helper_bytes),
            repair_intra_rack_bytes: get(&self.repair_intra_rack_bytes),
            repair_cross_rack_bytes: get(&self.repair_cross_rack_bytes),
            repair_bytes_written: get(&self.repair_bytes_written),
            chunks_scrubbed: get(&self.chunks_scrubbed),
            scrub_bytes_read: get(&self.scrub_bytes_read),
        }
    }
}

/// A point-in-time copy of a store's counters, labelled with its code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `ErasureCode::name()` of the store's code.
    pub code: String,
    /// Logical object bytes accepted by `put`.
    pub bytes_ingested: u64,
    /// Chunk files written by `put`.
    pub chunks_written: u64,
    /// Chunk payload bytes written by `put`.
    pub chunk_bytes_written: u64,
    /// Objects served by `get`.
    pub objects_read: u64,
    /// Logical object bytes served by `get`.
    pub bytes_served: u64,
    /// Stripes that needed a degraded read to be served.
    pub degraded_stripe_reads: u64,
    /// Helper bytes read from other "disks" to serve degraded reads.
    pub degraded_helper_bytes: u64,
    /// Degraded-read helper bytes sourced from the damaged chunk's own rack.
    pub degraded_intra_rack_bytes: u64,
    /// Degraded-read helper bytes that crossed racks.
    pub degraded_cross_rack_bytes: u64,
    /// Chunks found corrupt by any path.
    pub corrupt_chunks_detected: u64,
    /// Chunks rebuilt by repair.
    pub chunks_repaired: u64,
    /// Helper bytes read from surviving "disks" to rebuild chunks.
    pub repair_helper_bytes: u64,
    /// Repair helper bytes sourced from the rebuilt chunk's own rack.
    pub repair_intra_rack_bytes: u64,
    /// Repair helper bytes that crossed racks.
    pub repair_cross_rack_bytes: u64,
    /// Rebuilt chunk payload bytes written back.
    pub repair_bytes_written: u64,
    /// Chunks examined by scrub passes.
    pub chunks_scrubbed: u64,
    /// Payload bytes read by scrub passes.
    pub scrub_bytes_read: u64,
}

impl MetricsSnapshot {
    /// All helper bytes moved across "disks" for reconstruction, degraded
    /// reads and repairs combined — the store-level analogue of the paper's
    /// cross-rack recovery traffic.
    pub fn total_helper_bytes(&self) -> u64 {
        self.degraded_helper_bytes + self.repair_helper_bytes
    }

    /// All helper bytes that crossed racks (degraded reads + repairs) — the
    /// counter the paper's Fig. 3 traffic argument is about. Stores without
    /// an explicit rack map treat every disk as its own rack, so this equals
    /// [`MetricsSnapshot::total_helper_bytes`] there.
    pub fn total_cross_rack_bytes(&self) -> u64 {
        self.degraded_cross_rack_bytes + self.repair_cross_rack_bytes
    }

    /// All helper bytes served from within the damaged chunk's own rack —
    /// nonzero only under a grouping (rack-aware) placement policy.
    pub fn total_intra_rack_bytes(&self) -> u64 {
        self.degraded_intra_rack_bytes + self.repair_intra_rack_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let metrics = StoreMetrics::default();
        StoreMetrics::add(&metrics.bytes_ingested, 100);
        StoreMetrics::add(&metrics.repair_helper_bytes, 7);
        StoreMetrics::add(&metrics.degraded_helper_bytes, 5);
        let snap = metrics.snapshot("RS(10, 4)");
        assert_eq!(snap.code, "RS(10, 4)");
        assert_eq!(snap.bytes_ingested, 100);
        assert_eq!(snap.total_helper_bytes(), 12);
        // Counters keep accumulating after a snapshot.
        StoreMetrics::add(&metrics.bytes_ingested, 1);
        assert_eq!(metrics.snapshot("x").bytes_ingested, 101);
    }
}
