//! Traffic and health counters.
//!
//! The whole point of running a real store under the paper's codes is to
//! *measure bytes*, so every I/O path feeds a shared set of atomic counters:
//! ingest, normal reads, degraded reads (and the helper bytes they cost),
//! repairs (ditto) and scrub traffic. [`StoreMetrics::snapshot`] produces a
//! plain-struct copy labelled with the store's code, so two stores running
//! the same workload under different codes can be compared side by side —
//! the paper's RS-vs-Piggybacked experiment on real file I/O.

use std::sync::atomic::{AtomicU64, Ordering};

use pbrs_obs::hist::HistogramSnapshot;
use pbrs_obs::prom;
use pbrs_obs::LatencyHistogram;

/// Shared atomic counters, updated by every store and daemon thread.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Logical object bytes accepted by `put`.
    pub bytes_ingested: AtomicU64,
    /// Chunk files written by `put` (data + parity).
    pub chunks_written: AtomicU64,
    /// Chunk payload bytes written by `put` (data + parity).
    pub chunk_bytes_written: AtomicU64,
    /// Objects served by `get`.
    pub objects_read: AtomicU64,
    /// Logical object bytes served by `get`.
    pub bytes_served: AtomicU64,
    /// Stripes that needed a degraded read to be served.
    pub degraded_stripe_reads: AtomicU64,
    /// Helper bytes read from other "disks" to serve degraded reads.
    pub degraded_helper_bytes: AtomicU64,
    /// Degraded-read helper bytes sourced from the damaged chunk's own rack.
    pub degraded_intra_rack_bytes: AtomicU64,
    /// Degraded-read helper bytes that crossed racks.
    pub degraded_cross_rack_bytes: AtomicU64,
    /// Chunks found corrupt (bad checksum / header) by any path.
    pub corrupt_chunks_detected: AtomicU64,
    /// Chunks rebuilt by repair.
    pub chunks_repaired: AtomicU64,
    /// Helper bytes read from surviving "disks" to rebuild chunks.
    pub repair_helper_bytes: AtomicU64,
    /// Repair helper bytes sourced from the rebuilt chunk's own rack.
    pub repair_intra_rack_bytes: AtomicU64,
    /// Repair helper bytes that crossed racks — the paper's scarce resource.
    pub repair_cross_rack_bytes: AtomicU64,
    /// Rebuilt chunk payload bytes written back.
    pub repair_bytes_written: AtomicU64,
    /// Chunks examined by scrub passes.
    pub chunks_scrubbed: AtomicU64,
    /// Payload bytes read (and checksummed) by scrub passes.
    pub scrub_bytes_read: AtomicU64,
    /// Planned rebuilds that abandoned a slow helper set and hedged to the
    /// next-ranked one (only under [`crate::StoreConfig::hedge_delay`]).
    pub hedged_reads: AtomicU64,
    /// Hedged rebuilds whose switched-to helper set completed the rebuild.
    pub hedge_wins: AtomicU64,
    /// Chunk ops abandoned at the per-op deadline (only under
    /// [`crate::StoreConfig::op_deadline`]; mirrors the health tracker).
    pub disk_timeouts: AtomicU64,
    /// Chunk ops shed by a Suspect/Failed disk's circuit breaker without
    /// touching the disk (mirrors the health tracker).
    pub disk_sheds: AtomicU64,
}

impl StoreMetrics {
    /// Adds `n` to a counter.
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, labelled with the code `name`.
    pub fn snapshot(&self, code: &str) -> MetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            code: code.to_string(),
            bytes_ingested: get(&self.bytes_ingested),
            chunks_written: get(&self.chunks_written),
            chunk_bytes_written: get(&self.chunk_bytes_written),
            objects_read: get(&self.objects_read),
            bytes_served: get(&self.bytes_served),
            degraded_stripe_reads: get(&self.degraded_stripe_reads),
            degraded_helper_bytes: get(&self.degraded_helper_bytes),
            degraded_intra_rack_bytes: get(&self.degraded_intra_rack_bytes),
            degraded_cross_rack_bytes: get(&self.degraded_cross_rack_bytes),
            corrupt_chunks_detected: get(&self.corrupt_chunks_detected),
            chunks_repaired: get(&self.chunks_repaired),
            repair_helper_bytes: get(&self.repair_helper_bytes),
            repair_intra_rack_bytes: get(&self.repair_intra_rack_bytes),
            repair_cross_rack_bytes: get(&self.repair_cross_rack_bytes),
            repair_bytes_written: get(&self.repair_bytes_written),
            chunks_scrubbed: get(&self.chunks_scrubbed),
            scrub_bytes_read: get(&self.scrub_bytes_read),
            hedged_reads: get(&self.hedged_reads),
            hedge_wins: get(&self.hedge_wins),
            disk_timeouts: get(&self.disk_timeouts),
            disk_sheds: get(&self.disk_sheds),
        }
    }
}

/// A point-in-time copy of a store's counters, labelled with its code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `ErasureCode::name()` of the store's code.
    pub code: String,
    /// Logical object bytes accepted by `put`.
    pub bytes_ingested: u64,
    /// Chunk files written by `put`.
    pub chunks_written: u64,
    /// Chunk payload bytes written by `put`.
    pub chunk_bytes_written: u64,
    /// Objects served by `get`.
    pub objects_read: u64,
    /// Logical object bytes served by `get`.
    pub bytes_served: u64,
    /// Stripes that needed a degraded read to be served.
    pub degraded_stripe_reads: u64,
    /// Helper bytes read from other "disks" to serve degraded reads.
    pub degraded_helper_bytes: u64,
    /// Degraded-read helper bytes sourced from the damaged chunk's own rack.
    pub degraded_intra_rack_bytes: u64,
    /// Degraded-read helper bytes that crossed racks.
    pub degraded_cross_rack_bytes: u64,
    /// Chunks found corrupt by any path.
    pub corrupt_chunks_detected: u64,
    /// Chunks rebuilt by repair.
    pub chunks_repaired: u64,
    /// Helper bytes read from surviving "disks" to rebuild chunks.
    pub repair_helper_bytes: u64,
    /// Repair helper bytes sourced from the rebuilt chunk's own rack.
    pub repair_intra_rack_bytes: u64,
    /// Repair helper bytes that crossed racks.
    pub repair_cross_rack_bytes: u64,
    /// Rebuilt chunk payload bytes written back.
    pub repair_bytes_written: u64,
    /// Chunks examined by scrub passes.
    pub chunks_scrubbed: u64,
    /// Payload bytes read by scrub passes.
    pub scrub_bytes_read: u64,
    /// Planned rebuilds that hedged to the next-ranked helper set.
    pub hedged_reads: u64,
    /// Hedged rebuilds completed by the switched-to helper set.
    pub hedge_wins: u64,
    /// Chunk ops abandoned at the per-op deadline.
    pub disk_timeouts: u64,
    /// Chunk ops shed by a disk's circuit breaker.
    pub disk_sheds: u64,
}

impl MetricsSnapshot {
    /// All helper bytes moved across "disks" for reconstruction, degraded
    /// reads and repairs combined — the store-level analogue of the paper's
    /// cross-rack recovery traffic.
    pub fn total_helper_bytes(&self) -> u64 {
        self.degraded_helper_bytes + self.repair_helper_bytes
    }

    /// All helper bytes that crossed racks (degraded reads + repairs) — the
    /// counter the paper's Fig. 3 traffic argument is about. Stores without
    /// an explicit rack map treat every disk as its own rack, so this equals
    /// [`MetricsSnapshot::total_helper_bytes`] there.
    pub fn total_cross_rack_bytes(&self) -> u64 {
        self.degraded_cross_rack_bytes + self.repair_cross_rack_bytes
    }

    /// All helper bytes served from within the damaged chunk's own rack —
    /// nonzero only under a grouping (rack-aware) placement policy.
    pub fn total_intra_rack_bytes(&self) -> u64 {
        self.degraded_intra_rack_bytes + self.repair_intra_rack_bytes
    }
}

/// Lock-free latency histograms for the store's hot paths (all values in
/// microseconds). Lives beside [`StoreMetrics`] rather than inside it so
/// [`MetricsSnapshot`] stays a plain `Eq` counter struct.
#[derive(Debug, Default)]
pub struct StoreLatency {
    /// Whole-stripe reads served entirely from healthy chunks.
    pub healthy_stripe_read: LatencyHistogram,
    /// Whole-stripe reads that needed reconstruction (includes the
    /// healthy-chunk reads that preceded the damage discovery).
    pub degraded_stripe_read: LatencyHistogram,
    /// Just the reconstruct portion of a degraded read: helper reads plus
    /// erasure arithmetic.
    pub degraded_reconstruct: LatencyHistogram,
    /// Whole repair jobs ([`crate::BlockStore::repair_stripe`]): verify,
    /// rebuild, write back.
    pub repair_job: LatencyHistogram,
}

impl StoreLatency {
    /// A point-in-time copy of every histogram.
    pub fn snapshot(&self) -> StoreLatencySnapshot {
        StoreLatencySnapshot {
            healthy_stripe_read: self.healthy_stripe_read.snapshot(),
            degraded_stripe_read: self.degraded_stripe_read.snapshot(),
            degraded_reconstruct: self.degraded_reconstruct.snapshot(),
            repair_job: self.repair_job.snapshot(),
        }
    }
}

/// Point-in-time copies of the store's latency histograms.
#[derive(Clone, Debug)]
pub struct StoreLatencySnapshot {
    /// Healthy whole-stripe read durations.
    pub healthy_stripe_read: HistogramSnapshot,
    /// Degraded whole-stripe read durations.
    pub degraded_stripe_read: HistogramSnapshot,
    /// Reconstruct-only portion of degraded reads.
    pub degraded_reconstruct: HistogramSnapshot,
    /// Whole repair-job durations.
    pub repair_job: HistogramSnapshot,
}

impl StoreLatencySnapshot {
    /// Append this snapshot as Prometheus histogram families
    /// (`pbrs_store_*_duration_seconds`).
    pub fn write_prometheus(&self, out: &mut String) {
        let read = "pbrs_store_stripe_read_duration_seconds";
        prom::type_line(out, read, "histogram");
        prom::histogram_samples(out, read, &[("path", "healthy")], &self.healthy_stripe_read);
        prom::histogram_samples(
            out,
            read,
            &[("path", "degraded")],
            &self.degraded_stripe_read,
        );
        let reconstruct = "pbrs_store_degraded_reconstruct_duration_seconds";
        prom::type_line(out, reconstruct, "histogram");
        prom::histogram_samples(out, reconstruct, &[], &self.degraded_reconstruct);
        let repair = "pbrs_store_repair_job_duration_seconds";
        prom::type_line(out, repair, "histogram");
        prom::histogram_samples(out, repair, &[], &self.repair_job);
    }

    /// Render as a JSON object of [`pbrs_obs::Summary`] sub-objects.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"healthy_stripe_read\":{},\"degraded_stripe_read\":{},",
                "\"degraded_reconstruct\":{},\"repair_job\":{}}}"
            ),
            self.healthy_stripe_read.summary().to_json(),
            self.degraded_stripe_read.summary().to_json(),
            self.degraded_reconstruct.summary().to_json(),
            self.repair_job.summary().to_json(),
        )
    }
}

impl MetricsSnapshot {
    /// Append the counters as Prometheus `pbrs_store_*` samples.
    pub fn write_prometheus(&self, out: &mut String) {
        let fields: [(&str, u64); 21] = [
            ("bytes_ingested", self.bytes_ingested),
            ("chunks_written", self.chunks_written),
            ("chunk_bytes_written", self.chunk_bytes_written),
            ("objects_read", self.objects_read),
            ("bytes_served", self.bytes_served),
            ("degraded_stripe_reads", self.degraded_stripe_reads),
            ("degraded_helper_bytes", self.degraded_helper_bytes),
            ("degraded_intra_rack_bytes", self.degraded_intra_rack_bytes),
            ("degraded_cross_rack_bytes", self.degraded_cross_rack_bytes),
            ("corrupt_chunks_detected", self.corrupt_chunks_detected),
            ("chunks_repaired", self.chunks_repaired),
            ("repair_helper_bytes", self.repair_helper_bytes),
            ("repair_intra_rack_bytes", self.repair_intra_rack_bytes),
            ("repair_cross_rack_bytes", self.repair_cross_rack_bytes),
            ("repair_bytes_written", self.repair_bytes_written),
            ("chunks_scrubbed", self.chunks_scrubbed),
            ("scrub_bytes_read", self.scrub_bytes_read),
            ("hedged_reads", self.hedged_reads),
            ("hedge_wins", self.hedge_wins),
            ("disk_timeouts", self.disk_timeouts),
            ("disk_sheds", self.disk_sheds),
        ];
        for (field, value) in fields {
            let name = format!("pbrs_store_{field}_total");
            prom::type_line(out, &name, "counter");
            out.push_str(&name);
            out.push_str("{code=\"");
            out.push_str(&self.code);
            out.push_str("\"} ");
            out.push_str(&value.to_string());
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let metrics = StoreMetrics::default();
        StoreMetrics::add(&metrics.bytes_ingested, 100);
        StoreMetrics::add(&metrics.repair_helper_bytes, 7);
        StoreMetrics::add(&metrics.degraded_helper_bytes, 5);
        let snap = metrics.snapshot("RS(10, 4)");
        assert_eq!(snap.code, "RS(10, 4)");
        assert_eq!(snap.bytes_ingested, 100);
        assert_eq!(snap.total_helper_bytes(), 12);
        // Counters keep accumulating after a snapshot.
        StoreMetrics::add(&metrics.bytes_ingested, 1);
        assert_eq!(metrics.snapshot("x").bytes_ingested, 101);
    }

    #[test]
    fn latency_snapshot_renders_json_and_prometheus() {
        let latency = StoreLatency::default();
        latency.degraded_reconstruct.record(1_500);
        latency.repair_job.record(20_000);
        let snap = latency.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"degraded_reconstruct\":{\"count\":1"));
        assert!(json.contains("\"repair_job\":{\"count\":1"));
        let mut prom_text = String::new();
        snap.write_prometheus(&mut prom_text);
        assert!(
            prom_text.contains("# TYPE pbrs_store_degraded_reconstruct_duration_seconds histogram")
        );
        assert!(prom_text.contains("pbrs_store_repair_job_duration_seconds_count 1"));
        assert!(prom_text.contains("path=\"healthy\""));
    }

    #[test]
    fn counters_render_prometheus_with_code_label() {
        let metrics = StoreMetrics::default();
        StoreMetrics::add(&metrics.degraded_helper_bytes, 42);
        let mut out = String::new();
        metrics
            .snapshot("Piggybacked-RS(10, 4)")
            .write_prometheus(&mut out);
        assert!(out.contains("# TYPE pbrs_store_degraded_helper_bytes_total counter"));
        assert!(out
            .contains("pbrs_store_degraded_helper_bytes_total{code=\"Piggybacked-RS(10, 4)\"} 42"));
    }
}
