//! Pluggable per-disk chunk storage.
//!
//! The store's original layout — one local directory per "disk" — is one
//! implementation of a small trait, [`ChunkBackend`]: everything
//! [`crate::BlockStore`] needs from a disk is chunk-file I/O keyed by
//! `(object, stripe, shard)` plus a little lifecycle management. Factoring
//! that surface out lets a store mount any mix of:
//!
//! * [`LocalDisk`] — the classic directory-per-disk layout defined here;
//! * a remote disk served by the `pbrs-chunkd` TCP chunk server, whose
//!   client implements this trait over a length-prefixed wire protocol.
//!
//! The trait is deliberately *range-aware*: [`ChunkBackend::read_chunk_range`]
//! serves exactly the helper byte ranges
//! [`pbrs_erasure::ErasureCode::repair_reads`] names (half-chunks for
//! Piggybacked-RS), so a networked backend ships only the bytes a repair
//! actually consumes — the paper's cross-rack traffic argument, measurable
//! on real sockets via [`ChunkBackend::counters`].
//!
//! # Durability
//!
//! [`LocalDisk`] is where the store's crash-safety contract is enforced:
//! every chunk write goes to a `*.tmp` sibling, is fsynced, renamed into
//! place, *and the containing directory is fsynced* — without that last
//! step a power loss can forget the rename itself and resurrect the old
//! file (or no file) even though the data blocks hit the platter. Object
//! directories are fsynced into their disk root on creation for the same
//! reason. Stale `*.tmp` files left by a crash are swept by
//! [`ChunkBackend::sweep_tmp`] (driven from [`crate::BlockStore::scrub`]).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use crate::chunk::{self, ChunkId, ChunkRead, ChunkStatus};
use crate::error::{Result, StoreError};

/// Transport byte counters of a backend.
///
/// For a networked backend these are the bytes that actually crossed the
/// socket (frame headers included), in each direction, since the backend
/// was created. Purely local backends report zeros: no byte leaves the
/// machine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackendCounters {
    /// Bytes sent to the disk (requests, including chunk payloads written).
    pub bytes_sent: u64,
    /// Bytes received from the disk (responses, including payloads read).
    pub bytes_received: u64,
}

impl BackendCounters {
    /// Sums two counter snapshots.
    #[must_use]
    pub fn combined(self, other: BackendCounters) -> BackendCounters {
        BackendCounters {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
        }
    }
}

/// One "disk" of a [`crate::BlockStore`]: chunk-file storage keyed by
/// `(object, stripe, shard)`.
///
/// Implementations must be safe to share across the store's pipeline and
/// repair-daemon threads. Methods that read chunks use the store's
/// [`ChunkRead`] shape: the outer error is a hard I/O failure, the inner
/// one a missing/corrupt chunk the caller will repair around.
pub trait ChunkBackend: Send + Sync + fmt::Debug {
    /// Human-readable location of the disk (a path, or a `chunkd://` addr).
    fn describe(&self) -> String;

    /// Whether the disk is currently present and reachable. A `false` here
    /// is what [`crate::ScrubReport::lost_disks`] reports.
    fn is_available(&self) -> bool;

    /// Creates (durably) the object's directory, so chunk writes for it can
    /// land. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem/transport failure.
    fn ensure_object(&self, object: &str) -> Result<()>;

    /// Best-effort removal of every chunk of `object` on this disk. A
    /// missing object directory is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on transport failure.
    fn remove_object(&self, object: &str) -> Result<()>;

    /// Writes one chunk atomically (tmp + fsync + rename + dir fsync).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem/transport failure.
    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<()>;

    /// Reads and fully verifies one chunk into `out` (whose length is the
    /// expected payload length).
    ///
    /// # Errors
    ///
    /// Hard I/O failures only; missing/corrupt chunks are the inner result.
    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()>;

    /// Reads `out.len()` payload bytes at `offset`, checksum-verified at
    /// half-chunk granularity — the partial-read primitive behind
    /// [`pbrs_erasure::ErasureCode::repair_reads`] execution.
    ///
    /// # Errors
    ///
    /// Hard I/O failures only; missing/corrupt chunks are the inner result.
    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()>;

    /// Fully verifies one chunk without returning its bytes; reports the
    /// status and how many payload bytes were read doing so. For a remote
    /// disk the verification runs server-side: only the verdict crosses
    /// the wire, never the payload.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on hard failure.
    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64)>;

    /// Deletes `*.tmp` files older than `min_age` (crash leftovers from
    /// writers that died between tmp-write and rename), returning the
    /// disk-relative paths removed. Young tmp files are left alone: they
    /// may belong to a writer that is still mid-rename.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on hard failure.
    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>>;

    /// Transport byte counters (zeros for purely local backends).
    fn counters(&self) -> BackendCounters {
        BackendCounters::default()
    }

    /// Drain trace spans recorded on the far side of this backend.
    ///
    /// A networked backend that ships requests under a trace envelope can
    /// fetch the server's finished spans here so the caller can assemble
    /// one cross-process trace tree. Local backends have no far side and
    /// return nothing.
    fn drain_spans(&self) -> Vec<pbrs_obs::trace::SpanRecord> {
        Vec::new()
    }
}

/// The classic local backend: one directory per disk, one subdirectory per
/// object, one checksummed chunk file per `(stripe, shard)` (see
/// [`crate::chunk`] for the file format and [the module docs](self) for the
/// durability contract).
#[derive(Debug)]
pub struct LocalDisk {
    root: PathBuf,
}

impl LocalDisk {
    /// A backend over `root` (not created until the first write).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LocalDisk { root: root.into() }
    }

    /// The disk's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of one chunk file within this disk.
    pub fn chunk_path(&self, object: &str, id: ChunkId) -> PathBuf {
        self.root
            .join(object)
            .join(format!("{:08}-{:02}.chunk", id.stripe, id.shard))
    }
}

impl ChunkBackend for LocalDisk {
    fn describe(&self) -> String {
        self.root.display().to_string()
    }

    fn is_available(&self) -> bool {
        self.root.is_dir()
    }

    fn ensure_object(&self, object: &str) -> Result<()> {
        let dir = self.root.join(object);
        if dir.is_dir() {
            return Ok(()); // already created (and made durable) earlier
        }
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        // Make the new directory entries durable: a crash after this call
        // must not forget that the object (or the disk root) exists.
        chunk::fsync_dir(&self.root).map_err(|e| StoreError::io(&self.root, e))?;
        Ok(())
    }

    fn remove_object(&self, object: &str) -> Result<()> {
        match fs::remove_dir_all(self.root.join(object)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::io(self.root.join(object), e)),
        }
    }

    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<()> {
        chunk::write_chunk(&self.chunk_path(object, id), id, payload)
    }

    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
        chunk::read_chunk_into(&self.chunk_path(object, id), id, out)
    }

    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()> {
        chunk::read_chunk_range(&self.chunk_path(object, id), id, chunk_len, offset, out)
    }

    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64)> {
        chunk::verify_chunk(&self.chunk_path(object, id), id, chunk_len)
    }

    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>> {
        let mut removed = Vec::new();
        // The disk root itself plus every object directory one level down.
        let top = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(removed),
            Err(e) => return Err(StoreError::io(&self.root, e)),
        };
        let mut dirs = vec![self.root.clone()];
        for entry in top {
            let entry = entry.map_err(|e| StoreError::io(&self.root, e))?;
            if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                dirs.push(entry.path());
            }
        }
        let now = SystemTime::now();
        for dir in dirs {
            let entries = match fs::read_dir(&dir) {
                Ok(entries) => entries,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(StoreError::io(&dir, e)),
            };
            for entry in entries {
                let entry = entry.map_err(|e| StoreError::io(&dir, e))?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("tmp")
                    || !entry.file_type().map(|t| t.is_file()).unwrap_or(false)
                {
                    continue;
                }
                if !is_stale(&entry, now, min_age) {
                    continue; // possibly a live writer mid-rename
                }
                match fs::remove_file(&path) {
                    // A concurrent rename/removal got there first: fine.
                    Err(e) if e.kind() != std::io::ErrorKind::NotFound => {
                        return Err(StoreError::io(&path, e))
                    }
                    _ => {}
                }
                let rel = path
                    .strip_prefix(&self.root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                removed.push(rel);
            }
        }
        removed.sort();
        Ok(removed)
    }
}

/// Whether a directory entry's mtime is at least `min_age` in the past.
/// Unknown mtimes count as fresh: never delete what we cannot date.
fn is_stale(entry: &fs::DirEntry, now: SystemTime, min_age: Duration) -> bool {
    entry
        .metadata()
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| now.duration_since(mtime).ok())
        .is_some_and(|age| age >= min_age)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TempDir;
    use std::fs::File;

    const ID: ChunkId = ChunkId {
        stripe: 0,
        shard: 1,
    };

    #[test]
    fn local_disk_round_trip_and_layout() {
        let dir = TempDir::new("backend-local");
        let disk = LocalDisk::new(dir.path().join("disk-01"));
        assert!(!disk.is_available());
        disk.ensure_object("obj").unwrap();
        assert!(disk.is_available());
        let payload: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        disk.write_chunk("obj", ID, &payload).unwrap();
        assert_eq!(
            disk.chunk_path("obj", ID),
            dir.path()
                .join("disk-01")
                .join("obj")
                .join("00000000-01.chunk")
        );
        let mut out = vec![0u8; 512];
        disk.read_chunk_into("obj", ID, &mut out).unwrap().unwrap();
        assert_eq!(out, payload);
        let mut half = vec![0u8; 256];
        disk.read_chunk_range("obj", ID, 512, 256, &mut half)
            .unwrap()
            .unwrap();
        assert_eq!(half, &payload[256..]);
        let (status, bytes) = disk.verify_chunk("obj", ID, 512).unwrap();
        assert!(status.is_healthy());
        assert_eq!(bytes, 512);
        assert_eq!(disk.counters(), BackendCounters::default());

        disk.remove_object("obj").unwrap();
        assert!(matches!(
            disk.read_chunk_into("obj", ID, &mut out)
                .unwrap()
                .unwrap_err(),
            ChunkStatus::Missing
        ));
        disk.remove_object("obj").unwrap(); // idempotent
    }

    #[test]
    fn sweep_tmp_removes_only_stale_files() {
        let dir = TempDir::new("backend-sweep");
        let disk = LocalDisk::new(dir.path().join("disk-00"));
        disk.ensure_object("obj").unwrap();
        let stale = dir.path().join("disk-00/obj/00000003-00.tmp");
        let fresh = dir.path().join("disk-00/obj/00000004-00.tmp");
        let root_stale = dir.path().join("disk-00/stray.tmp");
        let chunk = dir.path().join("disk-00/obj/keep.chunk");
        for path in [&stale, &fresh, &root_stale, &chunk] {
            fs::write(path, b"leftover").unwrap();
        }
        let old = SystemTime::now() - Duration::from_secs(3600);
        for path in [&stale, &root_stale] {
            File::options()
                .write(true)
                .open(path)
                .unwrap()
                .set_modified(old)
                .unwrap();
        }

        let removed = disk.sweep_tmp(Duration::from_secs(60)).unwrap();
        assert_eq!(removed, vec!["obj/00000003-00.tmp", "stray.tmp"]);
        assert!(!stale.exists(), "stale tmp deleted");
        assert!(fresh.exists(), "fresh tmp kept (may be a live writer)");
        assert!(chunk.exists(), "non-tmp files untouched");
        // A second sweep finds nothing; a missing disk sweeps to empty.
        assert!(disk.sweep_tmp(Duration::from_secs(60)).unwrap().is_empty());
        assert!(LocalDisk::new(dir.path().join("nope"))
            .sweep_tmp(Duration::ZERO)
            .unwrap()
            .is_empty());
    }
}
