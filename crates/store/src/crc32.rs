//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), implemented
//! in-crate so chunk checksumming needs no external dependency.
//!
//! The table is built at compile time; the byte loop is the classic
//! table-driven form, fast enough to checksum chunks at far above disk
//! speed.

/// Builds the reflected CRC-32 lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// A streaming CRC-32 hasher.
///
/// # Example
///
/// ```
/// use pbrs_store::crc32::{crc32, Crc32};
///
/// let mut hasher = Crc32::new();
/// hasher.update(b"12345");
/// hasher.update(b"6789");
/// assert_eq!(hasher.finish(), crc32(b"123456789"));
/// assert_eq!(hasher.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (does not consume the hasher;
    /// further updates continue the stream).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 9_999, 5_000, 37] {
            let mut hasher = Crc32::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finish(), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 512];
        let clean = crc32(&data);
        for bit in [0usize, 7, 2048, 4095] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "bit {bit}");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
