//! Per-disk health lifecycle: `Healthy → Suspect → Failed` with
//! hysteresis, a circuit breaker, and persisted advisory state.
//!
//! A flaky disk retried forever with no memory pins workers and inflates
//! tail latency; a dead-but-not-removed disk burns a timeout per op. The
//! [`HealthTracker`] gives every pool disk a small state machine fed by
//! op outcomes:
//!
//! ```text
//!            failures ≥ suspect_failures          failures ≥ failed_failures
//!  Healthy ─────────────────────────────▶ Suspect ─────────────────────────▶ Failed
//!     ▲                                     │  ▲                               │
//!     └──── recovery_successes consecutive ─┘  └─ recovery_successes probes ───┘
//!                 ok probes                          (one level at a time)
//! ```
//!
//! * Outcomes (ok / error / timeout) land in a sliding window per disk;
//!   crossing the error+timeout threshold demotes the disk.
//! * Demotion trips the **circuit breaker**: while a disk is Suspect or
//!   Failed, [`DiskHealth::admit`] sheds ordinary ops (the caller routes
//!   around the disk, e.g. serving the chunk degraded) and lets one
//!   *probe* through per [`HealthPolicy::probe_interval`] to test for
//!   recovery.
//! * Promotion is hysteretic: [`HealthPolicy::recovery_successes`]
//!   *consecutive* ok outcomes climb one level at a time, so a disk that
//!   answers one probe out of three stays shed.
//!
//! Transitions are reported to the caller (to count, journal, and export
//! as `pbrs_disk_health`) and mirrored into a small advisory file so an
//! operator — or the next process to open the store — can see which
//! disks were sick. The file is *advisory*: it never gates correctness,
//! and a stale one only costs a few extra probes.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Health state of one pool disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskState {
    /// Serving ops normally.
    #[default]
    Healthy,
    /// Error/timeout rate crossed the threshold; breaker is shedding
    /// ordinary load, probes test for recovery.
    Suspect,
    /// Kept failing while Suspect; treated as lost until probes recover.
    Failed,
}

impl DiskState {
    /// Stable snake_case name (metrics label, advisory file).
    pub fn as_str(self) -> &'static str {
        match self {
            DiskState::Healthy => "healthy",
            DiskState::Suspect => "suspect",
            DiskState::Failed => "failed",
        }
    }

    /// Numeric severity for the `pbrs_disk_health` gauge (0/1/2).
    pub fn severity(self) -> u64 {
        match self {
            DiskState::Healthy => 0,
            DiskState::Suspect => 1,
            DiskState::Failed => 2,
        }
    }

    fn parse(s: &str) -> Option<DiskState> {
        match s {
            "healthy" => Some(DiskState::Healthy),
            "suspect" => Some(DiskState::Suspect),
            "failed" => Some(DiskState::Failed),
            _ => None,
        }
    }
}

impl std::fmt::Display for DiskState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Thresholds of the health state machine. The defaults suit tests and
/// loopback benches (small windows, sub-second probes); production tuning
/// is workload-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Sliding-window size in ops.
    pub window: usize,
    /// Errors+timeouts within the window that demote Healthy → Suspect.
    pub suspect_failures: u32,
    /// Errors+timeouts within the window that demote Suspect → Failed.
    pub failed_failures: u32,
    /// While Suspect/Failed, at most one probe op per this interval.
    pub probe_interval: Duration,
    /// Consecutive ok outcomes that promote one level back toward
    /// Healthy.
    pub recovery_successes: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            window: 32,
            suspect_failures: 3,
            failed_failures: 8,
            probe_interval: Duration::from_millis(500),
            recovery_successes: 3,
        }
    }
}

/// What the breaker says about one op before it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Disk is Healthy: run the op.
    Allow,
    /// Disk is Suspect/Failed but this op is the recovery probe: run it
    /// and report the outcome.
    Probe,
    /// Disk is Suspect/Failed and a probe already ran this interval:
    /// don't touch the disk, route around it.
    Shed,
}

/// One op's outcome, as recorded into the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The op completed (including "chunk missing" answers — an honest
    /// answer is a healthy disk).
    Ok,
    /// The op failed hard (I/O error, corrupt payload).
    Error,
    /// The op exceeded its deadline.
    Timeout,
}

/// A state transition, for the caller to count and journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Pool disk index.
    pub disk: usize,
    /// State before.
    pub from: DiskState,
    /// State after.
    pub to: DiskState,
}

#[derive(Debug)]
struct DiskInner {
    state: DiskState,
    /// Ring of recent outcomes: `true` = failure.
    window: Vec<bool>,
    next_slot: usize,
    filled: usize,
    consecutive_ok: u32,
    next_probe: Option<Instant>,
}

impl DiskInner {
    fn new(window: usize) -> Self {
        DiskInner {
            state: DiskState::Healthy,
            window: vec![false; window.max(1)],
            next_slot: 0,
            filled: 0,
            consecutive_ok: 0,
            next_probe: None,
        }
    }

    fn push(&mut self, failure: bool) {
        self.window[self.next_slot] = failure;
        self.next_slot = (self.next_slot + 1) % self.window.len();
        self.filled = (self.filled + 1).min(self.window.len());
    }

    fn failures_in_window(&self) -> u32 {
        self.window[..self.filled].iter().filter(|&&f| f).count() as u32
    }

    fn reset_window(&mut self) {
        self.window.fill(false);
        self.next_slot = 0;
        self.filled = 0;
    }
}

/// Health of one pool disk: the state machine plus its breaker.
#[derive(Debug)]
pub struct DiskHealth {
    disk: usize,
    policy: HealthPolicy,
    inner: Mutex<DiskInner>,
    /// Ops shed by the breaker.
    shed: AtomicU64,
    /// Ops that timed out.
    timeouts: AtomicU64,
    /// Hard errors recorded.
    errors: AtomicU64,
    /// Probes admitted while Suspect/Failed.
    probes: AtomicU64,
}

impl DiskHealth {
    fn new(disk: usize, policy: HealthPolicy) -> Self {
        let window = policy.window;
        DiskHealth {
            disk,
            policy,
            inner: Mutex::new(DiskInner::new(window)),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// Current state.
    pub fn state(&self) -> DiskState {
        self.inner.lock().expect("lock").state // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
    }

    /// Breaker decision for an op starting now.
    pub fn admit(&self) -> Admission {
        self.admit_at(Instant::now())
    }

    /// [`DiskHealth::admit`] with an explicit clock (testable).
    pub fn admit_at(&self, now: Instant) -> Admission {
        let mut inner = self.inner.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        if inner.state == DiskState::Healthy {
            return Admission::Allow;
        }
        let due = inner.next_probe.is_none_or(|at| now >= at);
        if due {
            inner.next_probe = Some(now + self.policy.probe_interval);
            // Relaxed: stats tally; admission state is under the mutex.
            self.probes.fetch_add(1, Ordering::Relaxed);
            Admission::Probe
        } else {
            // Relaxed: stats tally; admission state is under the mutex.
            self.shed.fetch_add(1, Ordering::Relaxed);
            Admission::Shed
        }
    }

    /// Records one op outcome; returns the transition it caused, if any.
    pub fn record(&self, outcome: Outcome) -> Option<Transition> {
        match outcome {
            Outcome::Timeout => {
                // Relaxed: stats tally; breaker state is under the mutex.
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Error => {
                // Relaxed: stats tally; breaker state is under the mutex.
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Ok => {}
        }
        let mut inner = self.inner.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let before = inner.state;
        match outcome {
            Outcome::Ok => {
                inner.push(false);
                if inner.state == DiskState::Healthy {
                    return None;
                }
                inner.consecutive_ok += 1;
                if inner.consecutive_ok >= self.policy.recovery_successes {
                    inner.state = match inner.state {
                        DiskState::Failed => DiskState::Suspect,
                        _ => DiskState::Healthy,
                    };
                    inner.consecutive_ok = 0;
                    // A promotion earns a fresh window: old failures must
                    // not instantly re-demote the disk (hysteresis).
                    inner.reset_window();
                    if inner.state == DiskState::Healthy {
                        inner.next_probe = None;
                    }
                }
            }
            Outcome::Error | Outcome::Timeout => {
                inner.push(true);
                inner.consecutive_ok = 0;
                let failures = inner.failures_in_window();
                inner.state = match inner.state {
                    DiskState::Healthy if failures >= self.policy.suspect_failures => {
                        // Trip the breaker: next op is the probe.
                        inner.next_probe = None;
                        DiskState::Suspect
                    }
                    DiskState::Suspect if failures >= self.policy.failed_failures => {
                        DiskState::Failed
                    }
                    same => same,
                };
            }
        }
        let after = inner.state;
        (before != after).then_some(Transition {
            disk: self.disk,
            from: before,
            to: after,
        })
    }

    /// Ops shed by the breaker so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Deadline timeouts recorded so far.
    pub fn timeout_count(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Hard errors recorded so far.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Probes admitted so far.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Seeds the state from a persisted advisory entry.
    fn set_advisory_state(&self, state: DiskState) {
        let mut inner = self.inner.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        inner.state = state;
        inner.next_probe = None;
    }
}

/// Point-in-time health of one disk, for metrics and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskHealthSnapshot {
    /// Pool disk index.
    pub disk: usize,
    /// Current state.
    pub state: DiskState,
    /// Ops shed by the breaker.
    pub shed: u64,
    /// Deadline timeouts.
    pub timeouts: u64,
    /// Hard errors.
    pub errors: u64,
    /// Recovery probes admitted.
    pub probes: u64,
}

/// Health of a whole disk pool, plus the persisted advisory file.
#[derive(Debug)]
pub struct HealthTracker {
    disks: Vec<DiskHealth>,
    /// Where advisory state persists (`HEALTH.advisory` in the store
    /// root); `None` disables persistence.
    advisory_path: Option<PathBuf>,
    transitions: AtomicU64,
}

/// File name of the persisted advisory health state in the store root.
pub const ADVISORY_FILE: &str = "HEALTH.advisory";

impl HealthTracker {
    /// A tracker for `disks` pool disks under `policy`. If
    /// `advisory_path` is given, previously persisted Suspect/Failed
    /// states are loaded back (advisory only — probes re-verify) and
    /// every transition is persisted.
    pub fn new(disks: usize, policy: HealthPolicy, advisory_path: Option<PathBuf>) -> Self {
        let tracker = HealthTracker {
            disks: (0..disks)
                .map(|d| DiskHealth::new(d, policy.clone()))
                .collect(),
            advisory_path,
            transitions: AtomicU64::new(0),
        };
        if let Some(path) = &tracker.advisory_path {
            if let Ok(text) = fs::read_to_string(path) {
                for line in text.lines() {
                    let mut parts = line.split_whitespace();
                    if let (Some(disk), Some(state)) = (parts.next(), parts.next()) {
                        if let (Ok(disk), Some(state)) =
                            (disk.parse::<usize>(), DiskState::parse(state))
                        {
                            if state != DiskState::Healthy {
                                if let Some(d) = tracker.disks.get(disk) {
                                    d.set_advisory_state(state);
                                }
                            }
                        }
                    }
                }
            }
        }
        tracker
    }

    /// The per-disk health handle.
    pub fn disk(&self, disk: usize) -> &DiskHealth {
        &self.disks[disk]
    }

    /// Number of tracked disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Records an outcome for `disk`; on a transition, persists the new
    /// advisory state and returns the transition for journaling.
    pub fn record(&self, disk: usize, outcome: Outcome) -> Option<Transition> {
        let transition = self.disks[disk].record(outcome)?;
        // Relaxed: stats tally; the authoritative state just transitioned
        // under the per-disk mutex inside record().
        self.transitions.fetch_add(1, Ordering::Relaxed);
        self.persist();
        Some(transition)
    }

    /// Total state transitions so far.
    pub fn transition_count(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Total breaker-shed ops across the pool.
    pub fn total_shed(&self) -> u64 {
        self.disks.iter().map(DiskHealth::shed_count).sum()
    }

    /// Total deadline timeouts across the pool.
    pub fn total_timeouts(&self) -> u64 {
        self.disks.iter().map(DiskHealth::timeout_count).sum()
    }

    /// Point-in-time health of every disk.
    pub fn snapshot(&self) -> Vec<DiskHealthSnapshot> {
        self.disks
            .iter()
            .map(|d| DiskHealthSnapshot {
                disk: d.disk,
                state: d.state(),
                shed: d.shed_count(),
                timeouts: d.timeout_count(),
                errors: d.error_count(),
                probes: d.probe_count(),
            })
            .collect()
    }

    /// Best-effort advisory persistence: one `disk state` line per disk.
    /// Never fails the op that triggered it — health is advisory, chunk
    /// data has its own durability story.
    fn persist(&self) {
        let Some(path) = &self.advisory_path else {
            return;
        };
        let mut text = String::new();
        for d in &self.disks {
            text.push_str(&format!("{} {}\n", d.disk, d.state()));
        }
        let _ = fs::write(path, text);
    }
}

/// Renders the pool's health as Prometheus families:
/// `pbrs_disk_health{disk=...}` (gauge: 0 healthy / 1 suspect / 2
/// failed) plus per-disk shed/timeout/probe counters.
pub fn write_prometheus(snapshot: &[DiskHealthSnapshot], out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(out, "# TYPE pbrs_disk_health gauge");
    for d in snapshot {
        let _ = writeln!(
            out,
            "pbrs_disk_health{{disk=\"{}\",state=\"{}\"}} {}",
            d.disk,
            d.state,
            d.state.severity()
        );
    }
    for (family, pick) in [
        (
            "pbrs_disk_shed_total",
            &(|d: &DiskHealthSnapshot| d.shed) as &dyn Fn(_) -> u64,
        ),
        ("pbrs_disk_timeouts_total", &|d: &DiskHealthSnapshot| {
            d.timeouts
        }),
        ("pbrs_disk_probes_total", &|d: &DiskHealthSnapshot| d.probes),
    ] {
        let _ = writeln!(out, "# TYPE {family} counter");
        for d in snapshot {
            let _ = writeln!(out, "{family}{{disk=\"{}\"}} {}", d.disk, pick(d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            window: 8,
            suspect_failures: 3,
            failed_failures: 6,
            probe_interval: Duration::from_millis(50),
            recovery_successes: 2,
        }
    }

    #[test]
    fn failures_demote_and_probes_recover() {
        let tracker = HealthTracker::new(2, policy(), None);
        // Two failures: still Healthy (threshold is 3).
        assert!(tracker.record(0, Outcome::Error).is_none());
        assert!(tracker.record(0, Outcome::Timeout).is_none());
        assert_eq!(tracker.disk(0).state(), DiskState::Healthy);
        // Third failure trips Suspect.
        let t = tracker.record(0, Outcome::Error).unwrap();
        assert_eq!((t.from, t.to), (DiskState::Healthy, DiskState::Suspect));
        // The other disk is untouched.
        assert_eq!(tracker.disk(1).state(), DiskState::Healthy);
        // Two consecutive oks (recovery_successes) promote back.
        assert!(tracker.record(0, Outcome::Ok).is_none());
        let t = tracker.record(0, Outcome::Ok).unwrap();
        assert_eq!((t.from, t.to), (DiskState::Suspect, DiskState::Healthy));
        assert_eq!(tracker.transition_count(), 2);
    }

    #[test]
    fn sustained_failures_reach_failed_and_recover_one_level_at_a_time() {
        let tracker = HealthTracker::new(1, policy(), None);
        let mut seen = Vec::new();
        for _ in 0..6 {
            if let Some(t) = tracker.record(0, Outcome::Timeout) {
                seen.push((t.from, t.to));
            }
        }
        assert_eq!(
            seen,
            [
                (DiskState::Healthy, DiskState::Suspect),
                (DiskState::Suspect, DiskState::Failed)
            ]
        );
        // Recovery climbs Failed → Suspect → Healthy, two oks per level.
        let t = |tr: Option<Transition>| tr.map(|t| (t.from, t.to));
        assert_eq!(t(tracker.record(0, Outcome::Ok)), None);
        assert_eq!(
            t(tracker.record(0, Outcome::Ok)),
            Some((DiskState::Failed, DiskState::Suspect))
        );
        assert_eq!(t(tracker.record(0, Outcome::Ok)), None);
        assert_eq!(
            t(tracker.record(0, Outcome::Ok)),
            Some((DiskState::Suspect, DiskState::Healthy))
        );
    }

    #[test]
    fn one_ok_between_failures_does_not_recover() {
        let tracker = HealthTracker::new(1, policy(), None);
        for _ in 0..3 {
            tracker.record(0, Outcome::Error);
        }
        assert_eq!(tracker.disk(0).state(), DiskState::Suspect);
        // ok, fail, ok, fail … never two consecutive oks: stays Suspect.
        for _ in 0..4 {
            tracker.record(0, Outcome::Ok);
            tracker.record(0, Outcome::Error);
        }
        assert_eq!(tracker.disk(0).state(), DiskState::Suspect);
    }

    #[test]
    fn breaker_sheds_between_probes() {
        let tracker = HealthTracker::new(1, policy(), None);
        let d = tracker.disk(0);
        let t0 = Instant::now();
        assert_eq!(d.admit_at(t0), Admission::Allow);
        for _ in 0..3 {
            tracker.record(0, Outcome::Error);
        }
        // First op after the trip is the probe; the rest of the interval
        // sheds; after the interval the next probe is admitted.
        assert_eq!(d.admit_at(t0), Admission::Probe);
        assert_eq!(d.admit_at(t0), Admission::Shed);
        assert_eq!(d.admit_at(t0 + Duration::from_millis(10)), Admission::Shed);
        assert_eq!(d.admit_at(t0 + Duration::from_millis(60)), Admission::Probe);
        assert_eq!(d.shed_count(), 2);
        assert_eq!(d.probe_count(), 2);
    }

    #[test]
    fn advisory_state_round_trips_through_the_file() {
        let dir = crate::testing::TempDir::new("health-advisory");
        let path = dir.path().join(ADVISORY_FILE);
        let tracker = HealthTracker::new(3, policy(), Some(path.clone()));
        for _ in 0..3 {
            tracker.record(1, Outcome::Error);
        }
        assert_eq!(tracker.disk(1).state(), DiskState::Suspect);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("1 suspect"), "{text}");
        // A fresh tracker (fresh process) loads the advisory state back.
        let reopened = HealthTracker::new(3, policy(), Some(path));
        assert_eq!(reopened.disk(0).state(), DiskState::Healthy);
        assert_eq!(reopened.disk(1).state(), DiskState::Suspect);
        // Advisory state is probed, not trusted forever: two oks recover.
        reopened.record(1, Outcome::Ok);
        reopened.record(1, Outcome::Ok);
        assert_eq!(reopened.disk(1).state(), DiskState::Healthy);
    }

    #[test]
    fn prometheus_rendering_carries_state_and_counters() {
        let tracker = HealthTracker::new(2, policy(), None);
        for _ in 0..3 {
            tracker.record(1, Outcome::Timeout);
        }
        let t0 = Instant::now();
        tracker.disk(1).admit_at(t0);
        tracker.disk(1).admit_at(t0);
        let mut out = String::new();
        write_prometheus(&tracker.snapshot(), &mut out);
        assert!(out.contains("# TYPE pbrs_disk_health gauge"), "{out}");
        assert!(out.contains("pbrs_disk_health{disk=\"0\",state=\"healthy\"} 0"));
        assert!(out.contains("pbrs_disk_health{disk=\"1\",state=\"suspect\"} 1"));
        assert!(out.contains("pbrs_disk_timeouts_total{disk=\"1\"} 3"));
        assert!(out.contains("pbrs_disk_shed_total{disk=\"1\"} 1"));
    }
}
