//! The durable stripe manifest.
//!
//! One small text file at the store root records the store-wide geometry
//! (code spec, chunk length, backend pool size, placement policy and seed),
//! every object's logical length and stripe count, every placed stripe's
//! disk set, and the tombstones of deleted objects whose chunks are still
//! awaiting the scrub sweep. The format is line-oriented and versioned:
//!
//! ```text
//! pbrs-store v2
//! code piggyback-10-4
//! chunk 65536
//! pool 28
//! policy rack-disjoint
//! pseed 42
//! object 67108864 26 my-dataset.bin
//! place my-dataset.bin 0 3,7,12,25,1,9,14,20,5,17,22,11,27,6
//! tomb old-dataset.bin
//! ```
//!
//! `place` lines exist only for stores with a non-identity placement
//! policy: they pin each stripe's shard→disk assignment durably, so reads
//! after a reopen resolve chunks without re-deriving the placement (the
//! derivation is deterministic, but the manifest is the authority). `tomb`
//! lines are the delete path's write-ahead record: the named object is gone
//! from the object table, and its chunks are garbage to be swept by the
//! next scrub.
//!
//! Version 1 manifests (fixed shard-`i`-on-disk-`i` layout, no pool or
//! placement lines) still load: they imply `pool = total shards`, the
//! identity policy and no placements, and are upgraded to v2 on the next
//! save.
//!
//! Object names are restricted to `[A-Za-z0-9._-]` (and may not be `.` or
//! `..`), so a name is always a safe directory component and the name can be
//! the final, whitespace-containing-free token of its line. The manifest is
//! rewritten atomically (`MANIFEST.tmp` + rename) after every mutation, so
//! a crash leaves either the old or the new manifest, never a torn one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use pbrs_erasure::CodeSpec;
use pbrs_placement::PlacementPolicy;

use crate::error::{Result, StoreError};

/// File name of the manifest within the store root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The first line of every v2 manifest.
const VERSION_LINE_V2: &str = "pbrs-store v2";

/// The first line of legacy v1 manifests (fixed layout, no placement).
const VERSION_LINE_V1: &str = "pbrs-store v1";

/// Durable description of one stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Logical length in bytes (the exact byte count `get` returns).
    pub len: u64,
    /// Number of stripes the object occupies.
    pub stripes: u64,
}

/// The in-memory manifest: store geometry plus the object table, stripe
/// placements and delete tombstones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The erasure code every stripe of this store uses.
    pub spec: CodeSpec,
    /// Payload bytes per chunk (equal for every chunk in the store).
    pub chunk_len: usize,
    /// Backends mounted (the disk pool the placements index into).
    pub pool: usize,
    /// The placement policy stripes were (and will be) placed under.
    pub policy: PlacementPolicy,
    /// The deterministic placement seed.
    pub seed: u64,
    /// All objects, keyed by name.
    pub objects: BTreeMap<String, ObjectInfo>,
    /// Per-stripe disk sets of placed objects: `placements[name][stripe]`
    /// lists the disk holding each shard. Objects without an entry use the
    /// identity layout (shard `i` on disk `i`).
    pub placements: BTreeMap<String, Vec<Vec<usize>>>,
    /// Deleted objects whose chunks have not been swept yet.
    pub tombstones: BTreeSet<String>,
}

/// Validates an object name for use as a path component and manifest token.
///
/// # Errors
///
/// Returns [`StoreError::InvalidObjectName`] for empty names, names longer
/// than 255 bytes, path-traversal names (`.`, `..`) and characters outside
/// `[A-Za-z0-9._-]`.
pub fn validate_object_name(name: &str) -> Result<()> {
    let reject = |reason| {
        Err(StoreError::InvalidObjectName {
            name: name.to_string(),
            reason,
        })
    };
    if name.is_empty() {
        return reject("name is empty");
    }
    if name.len() > 255 {
        return reject("name exceeds 255 bytes");
    }
    if name == "." || name == ".." {
        return reject("name is a path-traversal component");
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return reject("allowed characters are A-Z a-z 0-9 . _ -");
    }
    Ok(())
}

impl Manifest {
    /// A fresh manifest with no objects.
    pub fn new(
        spec: CodeSpec,
        chunk_len: usize,
        pool: usize,
        policy: PlacementPolicy,
        seed: u64,
    ) -> Self {
        Manifest {
            spec,
            chunk_len,
            pool,
            policy,
            seed,
            objects: BTreeMap::new(),
            placements: BTreeMap::new(),
            tombstones: BTreeSet::new(),
        }
    }

    /// Serialises the manifest to its (v2) text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(VERSION_LINE_V2);
        out.push('\n');
        out.push_str(&format!("code {}\n", self.spec));
        out.push_str(&format!("chunk {}\n", self.chunk_len));
        out.push_str(&format!("pool {}\n", self.pool));
        out.push_str(&format!("policy {}\n", self.policy));
        out.push_str(&format!("pseed {}\n", self.seed));
        for (name, info) in &self.objects {
            out.push_str(&format!("object {} {} {name}\n", info.len, info.stripes));
        }
        for (name, stripes) in &self.placements {
            for (stripe, disks) in stripes.iter().enumerate() {
                let list: Vec<String> = disks.iter().map(usize::to_string).collect();
                out.push_str(&format!("place {name} {stripe} {}\n", list.join(",")));
            }
        }
        for name in &self.tombstones {
            out.push_str(&format!("tomb {name}\n"));
        }
        out
    }

    /// Parses a manifest from its text form (v1 or v2).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptManifest`] naming the offending line.
    pub fn parse(path: &Path, text: &str) -> Result<Self> {
        let corrupt = |line: usize, reason: String| StoreError::CorruptManifest {
            path: path.to_path_buf(),
            line,
            reason,
        };
        let mut lines = text.lines().enumerate();
        let Some((_, version)) = lines.next() else {
            return Err(corrupt(0, "empty manifest".into()));
        };
        let legacy = match version {
            VERSION_LINE_V2 => false,
            VERSION_LINE_V1 => true,
            other => {
                return Err(corrupt(
                    1,
                    format!("unknown version line {other:?} (expected {VERSION_LINE_V2:?})"),
                ))
            }
        };
        let mut spec: Option<CodeSpec> = None;
        let mut chunk_len: Option<usize> = None;
        let mut pool: Option<usize> = None;
        let mut policy: Option<PlacementPolicy> = None;
        let mut seed: u64 = 0;
        let mut objects = BTreeMap::new();
        let mut placements: BTreeMap<String, Vec<Vec<usize>>> = BTreeMap::new();
        let mut tombstones = BTreeSet::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(lineno, format!("malformed line {line:?}")))?;
            match key {
                "code" => {
                    let parsed = rest
                        .parse()
                        .map_err(|e| corrupt(lineno, format!("bad code spec: {e}")))?;
                    spec = Some(parsed);
                }
                "chunk" => {
                    let parsed = rest
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad chunk length {rest:?}")))?;
                    chunk_len = Some(parsed);
                }
                "pool" => {
                    let parsed = rest
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad pool size {rest:?}")))?;
                    pool = Some(parsed);
                }
                "policy" => {
                    let parsed = rest
                        .parse()
                        .map_err(|e| corrupt(lineno, format!("bad placement policy: {e}")))?;
                    policy = Some(parsed);
                }
                "pseed" => {
                    seed = rest
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad placement seed {rest:?}")))?;
                }
                "object" => {
                    let mut fields = rest.splitn(3, ' ');
                    let (len, stripes, name) = match (fields.next(), fields.next(), fields.next()) {
                        (Some(len), Some(stripes), Some(name)) => (len, stripes, name),
                        _ => {
                            return Err(corrupt(
                                lineno,
                                format!("object line needs <len> <stripes> <name>: {line:?}"),
                            ))
                        }
                    };
                    let len: u64 = len
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad object length {len:?}")))?;
                    let stripes: u64 = stripes
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad stripe count {stripes:?}")))?;
                    validate_object_name(name)
                        .map_err(|e| corrupt(lineno, format!("bad object name: {e}")))?;
                    if objects
                        .insert(name.to_string(), ObjectInfo { len, stripes })
                        .is_some()
                    {
                        return Err(corrupt(lineno, format!("duplicate object {name:?}")));
                    }
                }
                "place" => {
                    let mut fields = rest.splitn(3, ' ');
                    let (name, stripe, disks) = match (fields.next(), fields.next(), fields.next())
                    {
                        (Some(name), Some(stripe), Some(disks)) => (name, stripe, disks),
                        _ => {
                            return Err(corrupt(
                                lineno,
                                format!("place line needs <name> <stripe> <disks>: {line:?}"),
                            ))
                        }
                    };
                    validate_object_name(name)
                        .map_err(|e| corrupt(lineno, format!("bad object name: {e}")))?;
                    let stripe: usize = stripe
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad stripe index {stripe:?}")))?;
                    let disks: Vec<usize> = disks
                        .split(',')
                        .map(|d| d.parse::<usize>())
                        .collect::<std::result::Result<_, _>>()
                        .map_err(|_| corrupt(lineno, format!("bad disk list {disks:?}")))?;
                    let rows = placements.entry(name.to_string()).or_default();
                    // Placement rows must arrive dense and in stripe order.
                    if stripe != rows.len() {
                        return Err(corrupt(
                            lineno,
                            format!(
                                "place line for {name:?} stripe {stripe} out of order \
                                 (expected stripe {})",
                                rows.len()
                            ),
                        ));
                    }
                    rows.push(disks);
                }
                "tomb" => {
                    validate_object_name(rest)
                        .map_err(|e| corrupt(lineno, format!("bad tombstone name: {e}")))?;
                    tombstones.insert(rest.to_string());
                }
                other => return Err(corrupt(lineno, format!("unknown key {other:?}"))),
            }
        }
        let spec = spec.ok_or_else(|| corrupt(0, "missing \"code\" line".into()))?;
        let chunk_len = chunk_len.ok_or_else(|| corrupt(0, "missing \"chunk\" line".into()))?;
        let (pool, policy) = if legacy {
            // v1: fixed layout, one disk per shard.
            (spec.total_shards(), PlacementPolicy::Identity)
        } else {
            (
                pool.ok_or_else(|| corrupt(0, "missing \"pool\" line".into()))?,
                policy.ok_or_else(|| corrupt(0, "missing \"policy\" line".into()))?,
            )
        };
        let manifest = Manifest {
            spec,
            chunk_len,
            pool,
            policy,
            seed,
            objects,
            placements,
            tombstones,
        };
        manifest.check_consistency(path)?;
        Ok(manifest)
    }

    /// Cross-line invariants: placements reference live objects, cover their
    /// stripes exactly, index real disks, and no name is both an object and
    /// a tombstone.
    fn check_consistency(&self, path: &Path) -> Result<()> {
        let corrupt = |reason: String| StoreError::CorruptManifest {
            path: path.to_path_buf(),
            line: 0,
            reason,
        };
        let width = self.spec.total_shards();
        for (name, rows) in &self.placements {
            let info = self
                .objects
                .get(name)
                .ok_or_else(|| corrupt(format!("placement for unknown object {name:?}")))?;
            if rows.len() as u64 != info.stripes {
                return Err(corrupt(format!(
                    "object {name:?} has {} stripes but {} placement rows",
                    info.stripes,
                    rows.len()
                )));
            }
            for (stripe, disks) in rows.iter().enumerate() {
                if disks.len() != width {
                    return Err(corrupt(format!(
                        "placement of {name:?} stripe {stripe} lists {} disks \
                         for a {width}-shard code",
                        disks.len()
                    )));
                }
                if let Some(&bad) = disks.iter().find(|&&d| d >= self.pool) {
                    return Err(corrupt(format!(
                        "placement of {name:?} stripe {stripe} names disk {bad} \
                         outside the {}-disk pool",
                        self.pool
                    )));
                }
            }
        }
        if self.policy == PlacementPolicy::Identity {
            if let Some(name) = self.placements.keys().next() {
                return Err(corrupt(format!(
                    "placement rows for {name:?} under the identity policy"
                )));
            }
        } else {
            // A placed store's manifest is the placement authority: every
            // non-empty object must carry its rows.
            for (name, info) in &self.objects {
                if info.stripes > 0 && !self.placements.contains_key(name) {
                    return Err(corrupt(format!(
                        "object {name:?} has no placement rows under the {} policy",
                        self.policy
                    )));
                }
            }
        }
        if let Some(both) = self
            .tombstones
            .iter()
            .find(|t| self.objects.contains_key(*t))
        {
            return Err(corrupt(format!(
                "{both:?} is both a live object and a tombstone"
            )));
        }
        Ok(())
    }

    /// Loads the manifest from `root/MANIFEST`, or `None` if the file does
    /// not exist (a fresh store).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] / [`StoreError::CorruptManifest`].
    pub fn load(root: &Path) -> Result<Option<Self>> {
        let path = manifest_path(root);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        Self::parse(&path, &text).map(Some)
    }

    /// Atomically and durably writes the manifest to `root/MANIFEST`: the
    /// text goes to a `.tmp` sibling, is fsynced, is renamed into place,
    /// and the root directory is fsynced — so a crash at any point leaves
    /// either the old manifest or the new one, and a completed save cannot
    /// be undone by power loss (the rename lives in the directory's data
    /// blocks, which the file's own fsync does not cover).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, root: &Path) -> Result<()> {
        use std::io::Write;

        let path = manifest_path(root);
        let tmp = path.with_extension("tmp");
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut file = fs::File::create(tmp)?;
            file.write_all(self.to_text().as_bytes())?;
            // Without the sync, the rename below can hit disk before the
            // data blocks, leaving a torn manifest after power loss.
            file.sync_data()?;
            Ok(())
        };
        write(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        crate::chunk::fsync_dir(root).map_err(|e| StoreError::io(root, e))?;
        Ok(())
    }
}

/// Path of the manifest file within a store root.
pub fn manifest_path(root: &Path) -> PathBuf {
    root.join(MANIFEST_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TempDir;

    fn sample() -> Manifest {
        let mut m = Manifest::new(
            CodeSpec::FACEBOOK_PIGGYBACK,
            65536,
            28,
            PlacementPolicy::RackDisjoint,
            42,
        );
        m.objects.insert(
            "a.bin".into(),
            ObjectInfo {
                len: 1000,
                stripes: 1,
            },
        );
        m.objects.insert(
            "models_v2-final".into(),
            ObjectInfo {
                len: 1500,
                stripes: 2,
            },
        );
        m.placements.insert(
            "a.bin".into(),
            vec![vec![0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 1, 4, 7, 10]],
        );
        m.placements.insert(
            "models_v2-final".into(),
            vec![
                vec![2, 5, 8, 11, 14, 17, 20, 23, 26, 0, 3, 6, 9, 12],
                vec![13, 16, 19, 22, 25, 1, 4, 7, 10, 2, 5, 8, 11, 14],
            ],
        );
        m.tombstones.insert("gone.bin".into());
        m
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let parsed = Manifest::parse(Path::new("MANIFEST"), &m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = TempDir::new("manifest-io");
        let m = sample();
        m.save(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap().unwrap(), m);
        assert!(!manifest_path(dir.path()).with_extension("tmp").exists());
        // A store root with no manifest loads as None.
        let empty = TempDir::new("manifest-empty");
        assert!(Manifest::load(empty.path()).unwrap().is_none());
    }

    #[test]
    fn legacy_v1_manifests_imply_the_fixed_layout() {
        let text = "pbrs-store v1\ncode rs-10-4\nchunk 64\nobject 10 1 a\n";
        let m = Manifest::parse(Path::new("MANIFEST"), text).unwrap();
        assert_eq!(m.pool, 14, "pool defaults to the code width");
        assert_eq!(m.policy, PlacementPolicy::Identity);
        assert_eq!(m.seed, 0);
        assert!(m.placements.is_empty());
        assert!(m.tombstones.is_empty());
        assert_eq!(m.objects.len(), 1);
        // Saving upgrades the file to v2.
        assert!(m.to_text().starts_with("pbrs-store v2\n"));
    }

    #[test]
    fn parse_rejects_damage() {
        let path = Path::new("MANIFEST");
        let v2 = "pbrs-store v2\ncode rs-4-2\nchunk 64\npool 12\npolicy rack-disjoint\npseed 7\n";
        let cases = [
            ("".to_string(), "empty"),
            ("pbrs-store v9\n".to_string(), "version"),
            ("pbrs-store v1\nchunk 64\n".to_string(), "missing \"code\""),
            (
                "pbrs-store v1\ncode rs-10-4\n".to_string(),
                "missing \"chunk\"",
            ),
            (
                "pbrs-store v1\ncode nonsense-1\nchunk 64\n".to_string(),
                "code spec",
            ),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk x\n".to_string(),
                "chunk length",
            ),
            (
                "pbrs-store v2\ncode rs-10-4\nchunk 64\npolicy identity\n".to_string(),
                "v2 missing \"pool\"",
            ),
            (
                "pbrs-store v2\ncode rs-10-4\nchunk 64\npool 14\n".to_string(),
                "v2 missing \"policy\"",
            ),
            (format!("{v2}policy sideways\n"), "unknown policy"),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nobject 10 a\n".to_string(),
                "object line",
            ),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nobject 10 1 a\nobject 10 1 a\n".to_string(),
                "duplicate",
            ),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nwhatever 1\n".to_string(),
                "unknown key",
            ),
            (
                format!("{v2}object 10 1 a\nplace a 1 0,1,2,3,4,5\n"),
                "place row out of order",
            ),
            (
                format!("{v2}object 10 1 a\nplace a 0 0,1,2\n"),
                "place row too narrow",
            ),
            (
                format!("{v2}object 10 1 a\nplace a 0 0,1,2,3,4,99\n"),
                "place disk outside the pool",
            ),
            (
                format!("{v2}place ghost 0 0,1,2,3,4,5\n"),
                "place for unknown object",
            ),
            (
                format!("{v2}object 10 1 a\n"),
                "object missing its placement rows",
            ),
            (
                format!("{v2}object 10 1 a\nplace a 0 0,1,2,3,4,5\ntomb a\n"),
                "object and tombstone at once",
            ),
        ];
        for (text, why) in cases {
            assert!(
                Manifest::parse(path, &text).is_err(),
                "{why}: {text:?} should be rejected"
            );
        }
    }

    #[test]
    fn object_name_validation() {
        for good in ["a", "A-1_b.bin", "x".repeat(255).as_str(), "..a", "a.."] {
            assert!(validate_object_name(good).is_ok(), "{good:?}");
        }
        for bad in [
            "",
            ".",
            "..",
            "a/b",
            "a b",
            "a\nb",
            "é",
            "x".repeat(256).as_str(),
        ] {
            assert!(validate_object_name(bad).is_err(), "{bad:?}");
        }
    }
}
