//! The durable stripe manifest.
//!
//! One small text file at the store root records the store-wide geometry
//! (code spec, chunk length) and every object's logical length and stripe
//! count. The format is line-oriented and versioned:
//!
//! ```text
//! pbrs-store v1
//! code piggyback-10-4
//! chunk 65536
//! object 67108864 26 my-dataset.bin
//! ```
//!
//! Object names are restricted to `[A-Za-z0-9._-]` (and may not be `.` or
//! `..`), so a name is always a safe directory component and the name can be
//! the final, whitespace-containing-free token of its line. The manifest is
//! rewritten atomically (`MANIFEST.tmp` + rename) after every mutation, so
//! a crash leaves either the old or the new manifest, never a torn one.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use pbrs_erasure::CodeSpec;

use crate::error::{Result, StoreError};

/// File name of the manifest within the store root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The first line of every v1 manifest.
const VERSION_LINE: &str = "pbrs-store v1";

/// Durable description of one stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Logical length in bytes (the exact byte count `get` returns).
    pub len: u64,
    /// Number of stripes the object occupies.
    pub stripes: u64,
}

/// The in-memory manifest: store geometry plus the object table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The erasure code every stripe of this store uses.
    pub spec: CodeSpec,
    /// Payload bytes per chunk (equal for every chunk in the store).
    pub chunk_len: usize,
    /// All objects, keyed by name.
    pub objects: BTreeMap<String, ObjectInfo>,
}

/// Validates an object name for use as a path component and manifest token.
///
/// # Errors
///
/// Returns [`StoreError::InvalidObjectName`] for empty names, names longer
/// than 255 bytes, path-traversal names (`.`, `..`) and characters outside
/// `[A-Za-z0-9._-]`.
pub fn validate_object_name(name: &str) -> Result<()> {
    let reject = |reason| {
        Err(StoreError::InvalidObjectName {
            name: name.to_string(),
            reason,
        })
    };
    if name.is_empty() {
        return reject("name is empty");
    }
    if name.len() > 255 {
        return reject("name exceeds 255 bytes");
    }
    if name == "." || name == ".." {
        return reject("name is a path-traversal component");
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return reject("allowed characters are A-Z a-z 0-9 . _ -");
    }
    Ok(())
}

impl Manifest {
    /// A fresh manifest with no objects.
    pub fn new(spec: CodeSpec, chunk_len: usize) -> Self {
        Manifest {
            spec,
            chunk_len,
            objects: BTreeMap::new(),
        }
    }

    /// Serialises the manifest to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(VERSION_LINE);
        out.push('\n');
        out.push_str(&format!("code {}\n", self.spec));
        out.push_str(&format!("chunk {}\n", self.chunk_len));
        for (name, info) in &self.objects {
            out.push_str(&format!("object {} {} {name}\n", info.len, info.stripes));
        }
        out
    }

    /// Parses a manifest from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptManifest`] naming the offending line.
    pub fn parse(path: &Path, text: &str) -> Result<Self> {
        let corrupt = |line: usize, reason: String| StoreError::CorruptManifest {
            path: path.to_path_buf(),
            line,
            reason,
        };
        let mut lines = text.lines().enumerate();
        let Some((_, version)) = lines.next() else {
            return Err(corrupt(0, "empty manifest".into()));
        };
        if version != VERSION_LINE {
            return Err(corrupt(
                1,
                format!("unknown version line {version:?} (expected {VERSION_LINE:?})"),
            ));
        }
        let mut spec: Option<CodeSpec> = None;
        let mut chunk_len: Option<usize> = None;
        let mut objects = BTreeMap::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(lineno, format!("malformed line {line:?}")))?;
            match key {
                "code" => {
                    let parsed = rest
                        .parse()
                        .map_err(|e| corrupt(lineno, format!("bad code spec: {e}")))?;
                    spec = Some(parsed);
                }
                "chunk" => {
                    let parsed = rest
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad chunk length {rest:?}")))?;
                    chunk_len = Some(parsed);
                }
                "object" => {
                    let mut fields = rest.splitn(3, ' ');
                    let (len, stripes, name) = match (fields.next(), fields.next(), fields.next()) {
                        (Some(len), Some(stripes), Some(name)) => (len, stripes, name),
                        _ => {
                            return Err(corrupt(
                                lineno,
                                format!("object line needs <len> <stripes> <name>: {line:?}"),
                            ))
                        }
                    };
                    let len: u64 = len
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad object length {len:?}")))?;
                    let stripes: u64 = stripes
                        .parse()
                        .map_err(|_| corrupt(lineno, format!("bad stripe count {stripes:?}")))?;
                    validate_object_name(name)
                        .map_err(|e| corrupt(lineno, format!("bad object name: {e}")))?;
                    if objects
                        .insert(name.to_string(), ObjectInfo { len, stripes })
                        .is_some()
                    {
                        return Err(corrupt(lineno, format!("duplicate object {name:?}")));
                    }
                }
                other => return Err(corrupt(lineno, format!("unknown key {other:?}"))),
            }
        }
        let spec = spec.ok_or_else(|| corrupt(0, "missing \"code\" line".into()))?;
        let chunk_len = chunk_len.ok_or_else(|| corrupt(0, "missing \"chunk\" line".into()))?;
        Ok(Manifest {
            spec,
            chunk_len,
            objects,
        })
    }

    /// Loads the manifest from `root/MANIFEST`, or `None` if the file does
    /// not exist (a fresh store).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] / [`StoreError::CorruptManifest`].
    pub fn load(root: &Path) -> Result<Option<Self>> {
        let path = manifest_path(root);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(&path, e)),
        };
        Self::parse(&path, &text).map(Some)
    }

    /// Atomically and durably writes the manifest to `root/MANIFEST`: the
    /// text goes to a `.tmp` sibling, is fsynced, is renamed into place,
    /// and the root directory is fsynced — so a crash at any point leaves
    /// either the old manifest or the new one, and a completed save cannot
    /// be undone by power loss (the rename lives in the directory's data
    /// blocks, which the file's own fsync does not cover).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, root: &Path) -> Result<()> {
        use std::io::Write;

        let path = manifest_path(root);
        let tmp = path.with_extension("tmp");
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut file = fs::File::create(tmp)?;
            file.write_all(self.to_text().as_bytes())?;
            // Without the sync, the rename below can hit disk before the
            // data blocks, leaving a torn manifest after power loss.
            file.sync_data()?;
            Ok(())
        };
        write(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        crate::chunk::fsync_dir(root).map_err(|e| StoreError::io(root, e))?;
        Ok(())
    }
}

/// Path of the manifest file within a store root.
pub fn manifest_path(root: &Path) -> PathBuf {
    root.join(MANIFEST_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TempDir;

    fn sample() -> Manifest {
        let mut m = Manifest::new(CodeSpec::FACEBOOK_PIGGYBACK, 65536);
        m.objects.insert(
            "a.bin".into(),
            ObjectInfo {
                len: 1000,
                stripes: 1,
            },
        );
        m.objects.insert(
            "models_v2-final".into(),
            ObjectInfo {
                len: 67108864,
                stripes: 26,
            },
        );
        m
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let parsed = Manifest::parse(Path::new("MANIFEST"), &m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = TempDir::new("manifest-io");
        let m = sample();
        m.save(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap().unwrap(), m);
        assert!(!manifest_path(dir.path()).with_extension("tmp").exists());
        // A store root with no manifest loads as None.
        let empty = TempDir::new("manifest-empty");
        assert!(Manifest::load(empty.path()).unwrap().is_none());
    }

    #[test]
    fn parse_rejects_damage() {
        let path = Path::new("MANIFEST");
        let cases = [
            ("", "empty"),
            ("pbrs-store v9\n", "version"),
            ("pbrs-store v1\nchunk 64\n", "missing \"code\""),
            ("pbrs-store v1\ncode rs-10-4\n", "missing \"chunk\""),
            ("pbrs-store v1\ncode nonsense-1\nchunk 64\n", "code spec"),
            ("pbrs-store v1\ncode rs-10-4\nchunk x\n", "chunk length"),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nobject 10 a\n",
                "object line",
            ),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nobject 10 1 a\nobject 10 1 a\n",
                "duplicate",
            ),
            (
                "pbrs-store v1\ncode rs-10-4\nchunk 64\nwhatever 1\n",
                "unknown key",
            ),
        ];
        for (text, why) in cases {
            assert!(
                Manifest::parse(path, text).is_err(),
                "{why}: {text:?} should be rejected"
            );
        }
    }

    #[test]
    fn object_name_validation() {
        for good in ["a", "A-1_b.bin", "x".repeat(255).as_str(), "..a", "a.."] {
            assert!(validate_object_name(good).is_ok(), "{good:?}");
        }
        for bad in [
            "",
            ".",
            "..",
            "a/b",
            "a b",
            "a\nb",
            "é",
            "x".repeat(256).as_str(),
        ] {
            assert!(validate_object_name(bad).is_err(), "{bad:?}");
        }
    }
}
