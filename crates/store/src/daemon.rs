//! The background repair daemon.
//!
//! A [`RepairDaemon`] owns a pool of `std::thread` workers fed by a shared
//! scan/enqueue queue. A scan pass ([`RepairDaemon::scan_now`], or a
//! periodic scanner thread when [`DaemonConfig::scan_interval`] is set)
//! scrubs every chunk of the store, groups the damage it finds by stripe,
//! and enqueues one repair task per damaged stripe; workers pop tasks and
//! call [`BlockStore::repair_stripe`], which rebuilds missing or corrupt
//! chunks along each code's cheapest repair path. The daemon's counters
//! (and the store's [`crate::metrics::MetricsSnapshot`]) report the helper
//! bytes that crossed disks — the store-level reproduction of the paper's
//! repair-traffic measurements.
//!
//! Everything is plain `std`: queue + `Condvar` hand-off, atomic counters,
//! graceful shutdown on [`RepairDaemon::shutdown`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbrs_store::{BlockStore, DaemonConfig, RepairDaemon, StoreConfig};
//! use pbrs_store::testing::TempDir;
//!
//! # fn main() -> Result<(), pbrs_store::StoreError> {
//! let dir = TempDir::new("daemon-doc");
//! let spec = "rs-4-2".parse().unwrap();
//! let store = Arc::new(BlockStore::open(
//!     StoreConfig::new(dir.path().join("store"), spec).chunk_len(256),
//! )?);
//! store.put("obj", &vec![7u8; 4096][..])?;
//!
//! // Lose a disk, then let the daemon find and rebuild every lost chunk.
//! std::fs::remove_dir_all(store.disk_path(2)).unwrap();
//! let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
//! let scan = daemon.scan_now()?;
//! assert_eq!(scan.lost_disks, vec![2]);
//! daemon.wait_idle();
//! let stats = daemon.shutdown();
//! assert!(stats.chunks_repaired > 0);
//! assert!(store.scrub()?.is_clean());
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use pbrs_obs::{Event, EventJournal, EventKind};

use crate::error::{Result, StoreError};
use crate::store::{panic_message, BlockStore, ScrubReport};

/// How many structured events the daemon's journal retains; older events
/// are evicted (and counted) once the ring is full.
pub const EVENT_JOURNAL_CAPACITY: usize = 64;

/// Configuration of a [`RepairDaemon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Worker threads rebuilding stripes in parallel.
    pub workers: usize,
    /// When set, a scanner thread rescans the store at this interval; when
    /// `None`, scans run only on [`RepairDaemon::scan_now`].
    pub scan_interval: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            scan_interval: None,
        }
    }
}

/// One unit of repair work: every damaged shard of one stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RepairTask {
    object: String,
    stripe: u64,
    damaged: Vec<usize>,
}

/// Outcome of one scan pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Disk indices whose directory is missing entirely.
    pub lost_disks: Vec<usize>,
    /// Damaged chunks found by the scrub.
    pub damaged_chunks: usize,
    /// Stripe repair tasks enqueued (stripes already queued are skipped).
    pub enqueued_stripes: usize,
}

/// Counters accumulated over the daemon's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonStats {
    /// Scan passes completed.
    pub scans: u64,
    /// Stripe repair tasks executed.
    pub stripes_repaired: u64,
    /// Chunks rebuilt and written back.
    pub chunks_repaired: u64,
    /// Helper bytes read from surviving disks by repairs.
    pub helper_bytes: u64,
    /// Helper bytes served from within the rebuilt chunk's own rack (the
    /// locality-first scheduler's yield; zero without a grouping placement).
    pub intra_rack_bytes: u64,
    /// Helper bytes that crossed racks — the paper's headline metric.
    pub cross_rack_bytes: u64,
    /// Rebuilt payload bytes written.
    pub bytes_written: u64,
    /// Repairs that failed (e.g. unrecoverable stripes).
    pub failures: u64,
}

#[derive(Default)]
struct QueueState {
    tasks: VecDeque<RepairTask>,
    /// Stripes currently queued or being repaired, to dedup repeat scans.
    pending: HashSet<(String, u64)>,
    /// Workers currently executing a task.
    active: usize,
}

struct Shared {
    store: Arc<BlockStore>,
    queue: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the queue drains and every worker goes idle.
    idle: Condvar,
    shutdown: AtomicBool,
    scans: AtomicU64,
    stripes_repaired: AtomicU64,
    chunks_repaired: AtomicU64,
    helper_bytes: AtomicU64,
    intra_rack_bytes: AtomicU64,
    cross_rack_bytes: AtomicU64,
    bytes_written: AtomicU64,
    failures: AtomicU64,
    /// Bounded ring of structured events (repairs, scans, failures,
    /// panics); replaces the old single-slot `last_error` string.
    journal: EventJournal,
}

/// A running repair daemon; see the [module docs](self) for the lifecycle.
pub struct RepairDaemon {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    scanner: Option<JoinHandle<()>>,
}

impl RepairDaemon {
    /// Starts the worker pool (and the periodic scanner, if configured).
    pub fn start(store: Arc<BlockStore>, config: DaemonConfig) -> Self {
        let shared = Arc::new(Shared {
            store,
            queue: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            scans: AtomicU64::new(0),
            stripes_repaired: AtomicU64::new(0),
            chunks_repaired: AtomicU64::new(0),
            helper_bytes: AtomicU64::new(0),
            intra_rack_bytes: AtomicU64::new(0),
            cross_rack_bytes: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            journal: EventJournal::new(EVENT_JOURNAL_CAPACITY),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pbrs-repair-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // pbrs-lint: allow(panic-hygiene) -- thread spawn fails only on OS resource exhaustion at startup; aborting is the intended response
                    .expect("spawn repair worker")
            })
            .collect();
        let scanner = config.scan_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("pbrs-repair-scan".into())
                .spawn(move || scanner_loop(&shared, interval))
                // pbrs-lint: allow(panic-hygiene) -- thread spawn fails only on OS resource exhaustion at startup; aborting is the intended response
                .expect("spawn repair scanner")
        });
        RepairDaemon {
            shared,
            workers,
            scanner,
        }
    }

    /// Runs one scan pass now: scrub the store, enqueue a repair task for
    /// every damaged stripe not already queued, and wake the workers.
    ///
    /// # Errors
    ///
    /// Propagates hard I/O failures from the scrub.
    pub fn scan_now(&self) -> Result<ScanReport> {
        scan_once(&self.shared)
    }

    /// Blocks until the queue is empty and every worker is idle.
    ///
    /// With no periodic scanner this means "all damage found so far is
    /// repaired (or recorded as failed)".
    pub fn wait_idle(&self) {
        let mut queue = self.shared.queue.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        while !queue.tasks.is_empty() || queue.active > 0 {
            queue = self.shared.idle.wait(queue).expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        }
    }

    /// A copy of the daemon's lifetime counters.
    pub fn stats(&self) -> DaemonStats {
        let s = &self.shared;
        DaemonStats {
            // Relaxed, all fields: lifetime tallies sampled for reporting;
            // cross-counter skew from in-flight repairs is acceptable.
            scans: s.scans.load(Ordering::Relaxed),
            stripes_repaired: s.stripes_repaired.load(Ordering::Relaxed),
            // Relaxed: see above.
            chunks_repaired: s.chunks_repaired.load(Ordering::Relaxed),
            helper_bytes: s.helper_bytes.load(Ordering::Relaxed),
            // Relaxed: see above.
            intra_rack_bytes: s.intra_rack_bytes.load(Ordering::Relaxed),
            cross_rack_bytes: s.cross_rack_bytes.load(Ordering::Relaxed),
            // Relaxed: see above.
            bytes_written: s.bytes_written.load(Ordering::Relaxed),
            failures: s.failures.load(Ordering::Relaxed),
        }
    }

    /// The daemon's recent structured events, oldest first: successful
    /// repairs, scans that enqueued work, and failures/panics. The journal
    /// is a bounded ring of [`EVENT_JOURNAL_CAPACITY`] entries; older
    /// events are evicted and counted by [`RepairDaemon::events_dropped`].
    pub fn recent_events(&self) -> Vec<Event> {
        self.shared.journal.recent()
    }

    /// Events evicted from the journal because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.shared.journal.dropped()
    }

    /// The most recent repair failure, if any.
    ///
    /// Compatibility shim over the event journal: returns the detail of the
    /// latest `Error`/`Panic` event. Prefer [`RepairDaemon::recent_events`]
    /// for the full structured history.
    pub fn last_error(&self) -> Option<String> {
        self.shared.journal.last_failure()
    }

    /// Stops the scanner and workers (finishing in-flight tasks, dropping
    /// queued ones) and returns the final counters.
    ///
    /// Dropping the daemon without calling this performs the same stop/join
    /// sequence; `shutdown` only adds the final stats.
    pub fn shutdown(mut self) -> DaemonStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        // SeqCst: once-per-shutdown flag; the strongest order keeps it
        // trivially correct against the scanner/worker polling loads.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        if let Some(scanner) = self.scanner.take() {
            let _ = scanner.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for RepairDaemon {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for RepairDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairDaemon")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn scan_once(shared: &Shared) -> Result<ScanReport> {
    let scrub: ScrubReport = shared.store.scrub()?;
    // On a hardened store, stripes whose damage sits on Suspect/Failed
    // disks repair first: those disks are actively losing ops right now,
    // so their stripes are the closest to dropping below k survivors.
    let health = shared.store.health_snapshot();
    let severity = |disk: usize| health.get(disk).map_or(0, |h| h.state.severity());
    let mut by_stripe: BTreeMap<(String, u64), (Vec<usize>, u64)> = BTreeMap::new();
    for damage in &scrub.damages {
        let entry = by_stripe
            .entry((damage.object.clone(), damage.stripe))
            .or_default();
        entry.0.push(damage.shard);
        entry.1 += severity(damage.disk);
    }
    let damaged_chunks = scrub.damages.len();
    let mut ordered: Vec<_> = by_stripe.into_iter().collect();
    // Stable sort: manifest (object, stripe) order within equal priority.
    ordered.sort_by_key(|entry| std::cmp::Reverse(entry.1 .1));
    let mut enqueued = 0usize;
    {
        let mut queue = shared.queue.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        for ((object, stripe), (damaged, _priority)) in ordered {
            if queue.pending.insert((object.clone(), stripe)) {
                queue.tasks.push_back(RepairTask {
                    object,
                    stripe,
                    damaged,
                });
                enqueued += 1;
            }
        }
    }
    if enqueued > 0 {
        shared.work.notify_all();
        // Journal only scans that found work — a fast periodic scanner over
        // a healthy store would otherwise evict every interesting event.
        shared.journal.push(
            EventKind::Scan,
            format!("scan found {damaged_chunks} damaged chunks, enqueued {enqueued} stripes"),
        );
    }
    // Relaxed: stats tally, sampled only by stats().
    shared.scans.fetch_add(1, Ordering::Relaxed);
    Ok(ScanReport {
        lost_disks: scrub.lost_disks,
        damaged_chunks,
        enqueued_stripes: enqueued,
    })
}

/// Undoes one task's queue bookkeeping when dropped: decrements
/// `queue.active`, removes the `pending` entry (so later scans can
/// re-enqueue the stripe), and wakes `wait_idle` waiters if the queue just
/// drained. Running this in a drop guard — not straight-line code — is what
/// keeps a panicking [`BlockStore::repair_stripe`] from leaking the
/// counters and hanging [`RepairDaemon::wait_idle`] forever.
struct TaskGuard<'a> {
    shared: &'a Shared,
    object: String,
    stripe: u64,
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        let mut queue = self.shared.queue.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        queue.active -= 1;
        queue
            .pending
            .remove(&(std::mem::take(&mut self.object), self.stripe));
        if queue.tasks.is_empty() && queue.active == 0 {
            self.shared.idle.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            loop {
                // Shutdown wins over queued work: in-flight repairs finish,
                // queued ones are dropped (as `shutdown` documents), so
                // stopping never waits on a long backlog of disk rebuilds.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(task) = queue.tasks.pop_front() {
                    queue.active += 1;
                    break task;
                }
                queue = shared.work.wait(queue).expect("lock"); // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            }
        };

        // From here to the end of the iteration the guard owns the task's
        // bookkeeping; a panic below unwinds through it instead of leaking
        // `active`/`pending`.
        let guard = TaskGuard {
            shared,
            object: task.object.clone(),
            stripe: task.stripe,
        };
        // Contain panics at the task boundary: the worker thread survives,
        // the panic becomes a counted failure, and the stripe stays
        // repairable by a later scan.
        let result = catch_unwind(AssertUnwindSafe(|| {
            shared
                .store
                .repair_stripe(&task.object, task.stripe, &task.damaged)
        }))
        .unwrap_or_else(|payload| {
            Err(StoreError::WorkerPanic {
                context: format!(
                    "repair of {:?} stripe {}: {}",
                    task.object,
                    task.stripe,
                    panic_message(payload.as_ref())
                ),
            })
        });
        match result {
            Ok(repair) => {
                // Relaxed, this whole block: independent stats tallies,
                // sampled only by stats(); they publish no other memory.
                shared.stripes_repaired.fetch_add(1, Ordering::Relaxed);
                shared
                    .chunks_repaired
                    // Relaxed: see block comment above.
                    .fetch_add(repair.rebuilt.len() as u64, Ordering::Relaxed);
                shared
                    .helper_bytes
                    // Relaxed: see block comment above.
                    .fetch_add(repair.helper_bytes, Ordering::Relaxed);
                shared
                    .intra_rack_bytes
                    // Relaxed: see block comment above.
                    .fetch_add(repair.intra_rack_bytes, Ordering::Relaxed);
                shared
                    .cross_rack_bytes
                    // Relaxed: see block comment above.
                    .fetch_add(repair.cross_rack_bytes, Ordering::Relaxed);
                shared
                    .bytes_written
                    // Relaxed: see block comment above.
                    .fetch_add(repair.bytes_written, Ordering::Relaxed);
                shared.journal.push(
                    EventKind::Repair,
                    format!(
                        "repaired {:?} stripe {}: {} chunks rebuilt, {} helper bytes",
                        task.object,
                        task.stripe,
                        repair.rebuilt.len(),
                        repair.helper_bytes
                    ),
                );
            }
            Err(e) => {
                // Relaxed: stats tally, sampled only by stats().
                shared.failures.fetch_add(1, Ordering::Relaxed);
                let kind = match &e {
                    StoreError::WorkerPanic { .. } => EventKind::Panic,
                    _ => EventKind::Error,
                };
                shared.journal.push(
                    kind,
                    format!(
                        "repair of {:?} stripe {} failed: {e}",
                        task.object, task.stripe
                    ),
                );
            }
        }
        drop(guard);
    }
}

fn scanner_loop(shared: &Shared, interval: Duration) {
    // SeqCst: shutdown poll, once per scan interval; pairs with the
    // store in stop_and_join.
    while !shared.shutdown.load(Ordering::SeqCst) {
        if let Err(e) = scan_once(shared) {
            shared
                .journal
                .push(EventKind::Error, format!("scan failed: {e}"));
            // Relaxed: stats tally, sampled only by stats().
            shared.failures.fetch_add(1, Ordering::Relaxed);
        }
        // Sleep in small slices so shutdown stays responsive.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = (interval - slept).min(Duration::from_millis(20));
            thread::sleep(step);
            slept += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use crate::testing::TempDir;
    use std::fs;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 17 + 3) % 253) as u8).collect()
    }

    fn store_with_object(dir: &TempDir, spec: &str, len: usize) -> Arc<BlockStore> {
        let spec = spec.parse().unwrap();
        let store = Arc::new(
            BlockStore::open(StoreConfig::new(dir.path().join("store"), spec).chunk_len(512))
                .unwrap(),
        );
        store.put("obj", &pattern(len)[..]).unwrap();
        store
    }

    #[test]
    fn daemon_rebuilds_a_lost_disk() {
        let dir = TempDir::new("daemon-lost-disk");
        let store = store_with_object(&dir, "piggyback-4-2", 4 * 512 * 3 + 5);
        fs::remove_dir_all(store.disk_path(0)).unwrap();

        let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
        let scan = daemon.scan_now().unwrap();
        assert_eq!(scan.lost_disks, vec![0]);
        assert_eq!(scan.damaged_chunks, 4);
        assert_eq!(scan.enqueued_stripes, 4);
        daemon.wait_idle();

        // A second scan finds nothing new.
        let rescan = daemon.scan_now().unwrap();
        assert_eq!(rescan.damaged_chunks, 0);
        assert_eq!(rescan.enqueued_stripes, 0);

        let stats = daemon.shutdown();
        assert_eq!(stats.scans, 2);
        assert_eq!(stats.stripes_repaired, 4);
        assert_eq!(stats.chunks_repaired, 4);
        assert!(stats.helper_bytes > 0);
        assert_eq!(stats.failures, 0);
        assert!(store.scrub().unwrap().is_clean());
        assert_eq!(store.get("obj").unwrap(), pattern(4 * 512 * 3 + 5));
    }

    #[test]
    fn periodic_scanner_repairs_without_manual_scans() {
        let dir = TempDir::new("daemon-periodic");
        let store = store_with_object(&dir, "rs-4-2", 4 * 512 * 2);
        fs::remove_dir_all(store.disk_path(5)).unwrap();

        let daemon = RepairDaemon::start(
            Arc::clone(&store),
            DaemonConfig {
                workers: 2,
                scan_interval: Some(Duration::from_millis(10)),
            },
        );
        // Poll until the background loop has healed the store.
        for _ in 0..500 {
            if daemon.stats().chunks_repaired >= 2 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        let stats = daemon.shutdown();
        assert!(stats.scans >= 1);
        assert_eq!(stats.chunks_repaired, 2);
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn unrecoverable_damage_is_a_counted_failure() {
        let dir = TempDir::new("daemon-failure");
        let store = store_with_object(&dir, "rs-4-2", 4 * 512);
        for disk in [0, 1, 2] {
            fs::remove_dir_all(store.disk_path(disk)).unwrap();
        }
        let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
        daemon.scan_now().unwrap();
        daemon.wait_idle();
        let stats = daemon.shutdown();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.chunks_repaired, 0);
    }

    #[test]
    fn dropping_the_daemon_joins_its_threads() {
        let dir = TempDir::new("daemon-drop");
        let store = store_with_object(&dir, "rs-4-2", 4 * 512);
        fs::remove_dir_all(store.disk_path(1)).unwrap();
        {
            let daemon = RepairDaemon::start(
                Arc::clone(&store),
                DaemonConfig {
                    workers: 2,
                    scan_interval: Some(Duration::from_millis(5)),
                },
            );
            daemon.scan_now().unwrap();
            daemon.wait_idle();
            // No shutdown(): Drop must stop the scanner and join everything
            // (a leak would hang the test binary at exit instead).
        }
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn panicking_repair_worker_cannot_hang_wait_idle() {
        let dir = TempDir::new("daemon-panic");
        let store = store_with_object(&dir, "rs-4-2", 4 * 512 * 3);
        fs::remove_dir_all(store.disk_path(2)).unwrap();

        // Every repair_stripe call panics: wait_idle must still return,
        // the panics must be counted as failures, and the pending entries
        // must be released so a later scan can re-enqueue the stripes.
        store.inject_repair_panic(true);
        let daemon = RepairDaemon::start(
            Arc::clone(&store),
            DaemonConfig {
                workers: 2,
                scan_interval: None,
            },
        );
        let scan = daemon.scan_now().unwrap();
        assert_eq!(scan.enqueued_stripes, 3);
        daemon.wait_idle(); // the bug: this used to block forever
        let stats = daemon.stats();
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.chunks_repaired, 0);
        assert!(
            daemon.last_error().unwrap().contains("panic"),
            "last_error must name the panic: {:?}",
            daemon.last_error()
        );
        // The journal carries the same failures as structured events.
        let panics: Vec<_> = daemon
            .recent_events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Panic)
            .collect();
        assert_eq!(panics.len(), 3, "one Panic event per failed stripe");
        assert!(panics.iter().all(|e| e.detail.contains("panic")));

        // The workers survived their panics and the stripes were not
        // poisoned: heal everything on the next scan.
        store.inject_repair_panic(false);
        let rescan = daemon.scan_now().unwrap();
        assert_eq!(rescan.enqueued_stripes, 3, "pending entries were leaked");
        daemon.wait_idle();
        let stats = daemon.shutdown();
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.chunks_repaired, 3);
        assert!(store.scrub().unwrap().is_clean());
        assert_eq!(store.get("obj").unwrap(), pattern(4 * 512 * 3));
    }

    #[test]
    fn journal_stays_bounded_under_concurrent_workers() {
        let dir = TempDir::new("daemon-journal");
        // 70 stripes: enough repair events to overflow the 64-entry ring
        // while four workers push concurrently.
        let stripes = 70usize;
        let store = store_with_object(&dir, "rs-4-2", 4 * 512 * stripes);
        fs::remove_dir_all(store.disk_path(3)).unwrap();

        let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
        let scan = daemon.scan_now().unwrap();
        assert_eq!(scan.enqueued_stripes, stripes);
        daemon.wait_idle();

        let events = daemon.recent_events();
        assert_eq!(events.len(), EVENT_JOURNAL_CAPACITY);
        // 1 Scan + 70 Repair events were pushed; the ring kept the newest.
        assert!(daemon.events_dropped() >= (stripes as u64 + 1) - EVENT_JOURNAL_CAPACITY as u64);
        assert!(events.iter().all(|e| e.kind == EventKind::Repair));
        assert!(events.iter().all(|e| e.detail.contains("chunks rebuilt")));
        // Events are oldest-first and timestamps never go backwards.
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(daemon.last_error().is_none(), "no failures occurred");

        let stats = daemon.shutdown();
        assert_eq!(stats.stripes_repaired, stripes as u64);
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn scan_events_are_journaled_when_damage_is_found() {
        let dir = TempDir::new("daemon-scan-event");
        let store = store_with_object(&dir, "rs-4-2", 4 * 512 * 2);
        let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());

        // A clean scan journals nothing.
        daemon.scan_now().unwrap();
        assert!(daemon.recent_events().is_empty());

        fs::remove_dir_all(store.disk_path(1)).unwrap();
        daemon.scan_now().unwrap();
        daemon.wait_idle();
        let events = daemon.recent_events();
        assert_eq!(events[0].kind, EventKind::Scan);
        assert!(events[0].detail.contains("enqueued 2 stripes"));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == EventKind::Repair)
                .count(),
            2
        );
        daemon.shutdown();
    }

    #[test]
    fn wait_idle_returns_immediately_when_clean() {
        let dir = TempDir::new("daemon-idle");
        let store = store_with_object(&dir, "rep-3", 100);
        let daemon = RepairDaemon::start(
            store,
            DaemonConfig {
                workers: 1,
                scan_interval: None,
            },
        );
        daemon.wait_idle();
        let scan = daemon.scan_now().unwrap();
        assert_eq!(scan.enqueued_stripes, 0);
        daemon.wait_idle();
        assert_eq!(daemon.shutdown().stripes_repaired, 0);
    }
}
