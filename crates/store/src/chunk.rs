//! The on-disk chunk file format.
//!
//! Every shard of every stripe is stored as one *chunk file* on its disk,
//! a length-prefixed header followed by the raw shard payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"PBRSCHK2"
//!      8     8  stripe id                        (u64 LE)
//!     16     4  shard index                      (u32 LE)
//!     20     4  payload length                   (u32 LE)
//!     24     4  CRC-32 of payload[..len / 2]     (u32 LE)
//!     28     4  CRC-32 of payload[len / 2..]     (u32 LE)
//!     32     4  header CRC-32 over bytes 0..32   (u32 LE)
//!     36     …  payload
//! ```
//!
//! The header carries its own CRC so a chunk whose *metadata* is damaged is
//! detected without touching the payload. The payload is checksummed in two
//! halves rather than as a whole because the repair paths read *partial*
//! chunks: every byte range [`pbrs_erasure::ErasureCode::repair_reads`]
//! emits is exactly a half-chunk or a whole chunk (Piggybacked-RS reads
//! half-shards; every other code reads whole shards), so
//! [`read_chunk_range`] can verify the checksum of precisely the halves it
//! touches — a bit-rotted helper can never poison a degraded read or be
//! laundered into a freshly-checksummed rebuilt chunk. Ranges that are not
//! half-aligned are served by reading (and verifying) the covering halves.
//!
//! Writes go to a `*.tmp` sibling first and are atomically renamed into
//! place, so a crashed writer leaves no truncated chunk behind. The rename
//! alone is not durable, though: the new directory entry lives in the
//! *directory's* data blocks, so after the rename the parent directory is
//! fsynced too ([`fsync_dir`]) — otherwise a power loss can forget the
//! rename and resurrect the old file (or no file at all) even though the
//! chunk's own bytes were synced.

use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::crc32::{crc32, Crc32};
use crate::error::{Result, StoreError};

/// Magic bytes opening every chunk file.
pub const MAGIC: [u8; 8] = *b"PBRSCHK2";

/// Size of the fixed chunk header in bytes.
pub const HEADER_LEN: usize = 36;

/// The identity of one chunk within its object: which stripe, which shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkId {
    /// Stripe index within the object.
    pub stripe: u64,
    /// Shard index within the stripe.
    pub shard: usize,
}

/// Health of a chunk file, as judged by [`verify_chunk`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkStatus {
    /// Present, header and payload checksums valid, identity matches.
    Healthy,
    /// The file does not exist (e.g. its disk directory was lost).
    Missing,
    /// The file exists but is unreadable as the expected chunk.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
}

impl ChunkStatus {
    /// Whether the chunk can serve reads.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ChunkStatus::Healthy)
    }
}

/// The result shape shared by the fallible readers: the outer error is a
/// hard I/O failure, the inner one a missing/corrupt chunk.
pub type ChunkRead<T> = Result<std::result::Result<T, ChunkStatus>>;

/// Fsyncs a directory, making the entry mutations inside it (renames, file
/// and subdirectory creations) durable. A no-op on platforms where
/// directories cannot be opened for syncing.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

fn encode_header(id: ChunkId, payload_len: u32, crc_lo: u32, crc_hi: u32) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..16].copy_from_slice(&id.stripe.to_le_bytes());
    header[16..20].copy_from_slice(&(id.shard as u32).to_le_bytes());
    header[20..24].copy_from_slice(&payload_len.to_le_bytes());
    header[24..28].copy_from_slice(&crc_lo.to_le_bytes());
    header[28..32].copy_from_slice(&crc_hi.to_le_bytes());
    let header_crc = crc32(&header[0..32]);
    header[32..36].copy_from_slice(&header_crc.to_le_bytes());
    header
}

/// The two payload-half checksums recovered from a valid header.
#[derive(Clone, Copy)]
struct HalfCrcs {
    lo: u32,
    hi: u32,
}

fn decode_header(
    header: &[u8; HEADER_LEN],
    expect: ChunkId,
    expect_len: usize,
) -> std::result::Result<HalfCrcs, ChunkStatus> {
    let corrupt = |reason: String| ChunkStatus::Corrupt { reason };
    if header[0..8] != MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let stored_crc = le_u32(&header[32..36]);
    if crc32(&header[0..32]) != stored_crc {
        return Err(corrupt("header checksum mismatch".into()));
    }
    let stripe = le_u64(&header[8..16]);
    let shard = le_u32(&header[16..20]) as usize;
    let payload_len = le_u32(&header[20..24]) as usize;
    if stripe != expect.stripe || shard != expect.shard {
        return Err(corrupt(format!(
            "chunk identity is stripe {stripe} shard {shard}, \
             expected stripe {} shard {}",
            expect.stripe, expect.shard
        )));
    }
    if payload_len != expect_len {
        return Err(corrupt(format!(
            "payload length is {payload_len}, expected {expect_len}"
        )));
    }
    Ok(HalfCrcs {
        lo: le_u32(&header[24..28]),
        hi: le_u32(&header[28..32]),
    })
}

/// Little-endian u32 from the first 4 bytes of `b`; callers slice a
/// fixed-size header, so the length is known.
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian u64 from the first 8 bytes of `b`; same contract as
/// [`le_u32`].
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Writes a chunk file atomically and durably: the bytes go to a `path.tmp`
/// sibling, are fsynced, renamed over `path`, and the parent directory is
/// fsynced so the rename itself survives power loss.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on any filesystem failure.
pub fn write_chunk(path: &Path, id: ChunkId, payload: &[u8]) -> Result<()> {
    let half = payload.len() / 2;
    let header = encode_header(
        id,
        u32::try_from(payload.len()).map_err(|_| StoreError::InvalidConfig {
            reason: format!("chunk payload of {} bytes exceeds u32", payload.len()),
        })?,
        crc32(&payload[..half]),
        crc32(&payload[half..]),
    );
    let tmp = path.with_extension("tmp");
    let write = |tmp: &Path| -> io::Result<()> {
        let mut file = File::create(tmp)?;
        file.write_all(&header)?;
        file.write_all(payload)?;
        file.sync_data()?;
        Ok(())
    };
    write(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent).map_err(|e| StoreError::io(parent, e))?;
    }
    Ok(())
}

/// Classifies an I/O error: "file missing" vs "hard failure".
fn missing_or_err(path: &Path, e: io::Error) -> std::result::Result<ChunkStatus, StoreError> {
    if e.kind() == io::ErrorKind::NotFound {
        Ok(ChunkStatus::Missing)
    } else {
        Err(StoreError::io(path, e))
    }
}

/// `read_exact` where a short file means "corrupt chunk" (with `reason`)
/// rather than a hard error.
fn read_exact_or_corrupt(
    file: &mut File,
    path: &Path,
    buf: &mut [u8],
    reason: &str,
) -> ChunkRead<()> {
    match file.read_exact(buf) {
        Ok(()) => Ok(Ok(())),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(Err(ChunkStatus::Corrupt {
            reason: reason.to_string(),
        })),
        Err(e) => Err(StoreError::io(path, e)),
    }
}

/// Opens the file and reads + validates the header, yielding the half CRCs.
fn open_and_check_header(
    path: &Path,
    expect: ChunkId,
    expect_len: usize,
) -> ChunkRead<(File, HalfCrcs)> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return missing_or_err(path, e).map(Err),
    };
    let mut header = [0u8; HEADER_LEN];
    if let Err(status) = read_exact_or_corrupt(
        &mut file,
        path,
        &mut header,
        "file shorter than the chunk header",
    )? {
        return Ok(Err(status));
    }
    match decode_header(&header, expect, expect_len) {
        Ok(crcs) => Ok(Ok((file, crcs))),
        Err(status) => Ok(Err(status)),
    }
}

/// Reads and fully verifies a chunk into a caller-provided buffer whose
/// length is the expected payload length.
///
/// This is the allocation-free primitive behind the store's stripe reads:
/// a worker reuses one stripe-sized scratch buffer across every stripe it
/// serves instead of allocating a payload `Vec` per chunk. On a
/// missing/corrupt inner result the buffer contents are unspecified.
///
/// # Errors
///
/// Returns [`StoreError::Io`] only for failures other than "file missing".
pub fn read_chunk_into(path: &Path, expect: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
    let expect_len = out.len();
    let (mut file, crcs) = match open_and_check_header(path, expect, expect_len)? {
        Ok(ok) => ok,
        Err(status) => return Ok(Err(status)),
    };
    if let Err(status) = read_exact_or_corrupt(
        &mut file,
        path,
        out,
        "file shorter than its declared payload",
    )? {
        return Ok(Err(status));
    }
    let half = expect_len / 2;
    if crc32(&out[..half]) != crcs.lo || crc32(&out[half..]) != crcs.hi {
        return Ok(Err(ChunkStatus::Corrupt {
            reason: "payload checksum mismatch".into(),
        }));
    }
    Ok(Ok(()))
}

/// Reads and fully verifies a chunk, returning its payload — or a
/// [`ChunkStatus`] explaining why the chunk cannot serve reads.
///
/// Allocating wrapper over [`read_chunk_into`].
///
/// # Errors
///
/// Returns [`StoreError::Io`] only for failures other than "file missing".
pub fn read_chunk(path: &Path, expect: ChunkId, expect_len: usize) -> ChunkRead<Vec<u8>> {
    let mut payload = vec![0u8; expect_len];
    match read_chunk_into(path, expect, &mut payload)? {
        Ok(()) => Ok(Ok(payload)),
        Err(status) => Ok(Err(status)),
    }
}

/// Reads `out.len()` payload bytes starting at `offset`, checksum-verified.
///
/// This is the partial-read primitive behind degraded reads and repairs:
/// the byte ranges come from [`pbrs_erasure::ErasureCode::repair_reads`],
/// so only the helper bytes the rebuild consumes are read (and counted).
/// Verification works at half-chunk granularity — the requested range is
/// covered by whole payload halves, each read in full and checked against
/// its stored CRC, so a payload-corrupt helper is detected here and can
/// never poison a rebuild. Every range the current codes emit is exactly a
/// half or a whole chunk, so nothing extra is read in practice.
///
/// Returns `Err(status)` in the inner result when the chunk is missing,
/// header-damaged, or fails a half checksum.
///
/// # Errors
///
/// Returns [`StoreError::Io`] for hard I/O failures.
pub fn read_chunk_range(
    path: &Path,
    expect: ChunkId,
    expect_len: usize,
    offset: usize,
    out: &mut [u8],
) -> ChunkRead<()> {
    debug_assert!(offset + out.len() <= expect_len, "range exceeds payload");
    let (mut file, crcs) = match open_and_check_header(path, expect, expect_len)? {
        Ok(ok) => ok,
        Err(status) => return Ok(Err(status)),
    };
    let (start, end) = (offset, offset + out.len());
    let half = expect_len / 2;
    let halves = [(0usize, half, crcs.lo), (half, expect_len, crcs.hi)];
    let mut buf = Vec::new();
    for (h_start, h_end, expect_crc) in halves {
        if h_start >= h_end || end <= h_start || start >= h_end {
            continue; // empty half or no overlap with the requested range
        }
        buf.resize(h_end - h_start, 0);
        if let Err(e) = file.seek(SeekFrom::Start((HEADER_LEN + h_start) as u64)) {
            return Err(StoreError::io(path, e));
        }
        if let Err(status) = read_exact_or_corrupt(
            &mut file,
            path,
            &mut buf,
            "file shorter than its declared payload",
        )? {
            return Ok(Err(status));
        }
        if crc32(&buf) != expect_crc {
            return Ok(Err(ChunkStatus::Corrupt {
                reason: "payload checksum mismatch".into(),
            }));
        }
        let copy_start = start.max(h_start);
        let copy_end = end.min(h_end);
        out[copy_start - start..copy_end - start]
            .copy_from_slice(&buf[copy_start - h_start..copy_end - h_start]);
    }
    Ok(Ok(()))
}

/// Fully verifies a chunk (header + both payload-half CRCs) without
/// returning its bytes; used by the scrub pass. Also reports how many
/// payload bytes were read (0 when missing or header-corrupt).
///
/// # Errors
///
/// Returns [`StoreError::Io`] for hard I/O failures.
pub fn verify_chunk(path: &Path, expect: ChunkId, expect_len: usize) -> Result<(ChunkStatus, u64)> {
    let (mut file, crcs) = match open_and_check_header(path, expect, expect_len)? {
        Ok(ok) => ok,
        Err(status) => return Ok((status, 0)),
    };
    let half = expect_len / 2;
    let mut hashers = [(Crc32::new(), crcs.lo), (Crc32::new(), crcs.hi)];
    let mut position = 0usize;
    let mut buf = vec![0u8; 64 * 1024];
    let mut read_bytes = 0u64;
    while position < expect_len {
        let want = (expect_len - position).min(buf.len());
        match file.read(&mut buf[..want]) {
            Ok(0) => {
                return Ok((
                    ChunkStatus::Corrupt {
                        reason: "file shorter than its declared payload".into(),
                    },
                    read_bytes,
                ))
            }
            Ok(n) => {
                // Feed the bytes to whichever half hasher(s) they fall in.
                let (chunk_start, chunk_end) = (position, position + n);
                if chunk_start < half {
                    hashers[0]
                        .0
                        .update(&buf[..half.min(chunk_end) - chunk_start]);
                }
                if chunk_end > half {
                    hashers[1]
                        .0
                        .update(&buf[half.max(chunk_start) - chunk_start..n]);
                }
                position = chunk_end;
                read_bytes += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(StoreError::io(path, e)),
        }
    }
    if hashers
        .iter()
        .any(|(hasher, expect)| hasher.finish() != *expect)
    {
        return Ok((
            ChunkStatus::Corrupt {
                reason: "payload checksum mismatch".into(),
            },
            read_bytes,
        ));
    }
    Ok((ChunkStatus::Healthy, read_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TempDir;

    const ID: ChunkId = ChunkId {
        stripe: 7,
        shard: 3,
    };

    fn payload() -> Vec<u8> {
        (0..1024u32).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = TempDir::new("chunk-roundtrip");
        let path = dir.path().join("c.chunk");
        write_chunk(&path, ID, &payload()).unwrap();
        assert_eq!(read_chunk(&path, ID, 1024).unwrap().unwrap(), payload());
        let (status, bytes) = verify_chunk(&path, ID, 1024).unwrap();
        assert!(status.is_healthy());
        assert_eq!(bytes, 1024);
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
    }

    #[test]
    fn odd_length_payloads_round_trip() {
        let dir = TempDir::new("chunk-odd");
        let path = dir.path().join("c.chunk");
        let data: Vec<u8> = (0..333u32).map(|i| (i % 17) as u8).collect();
        write_chunk(&path, ID, &data).unwrap();
        assert_eq!(read_chunk(&path, ID, 333).unwrap().unwrap(), data);
        assert!(verify_chunk(&path, ID, 333).unwrap().0.is_healthy());
        let mut out = vec![0u8; 333];
        read_chunk_range(&path, ID, 333, 0, &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn partial_reads_return_exact_ranges() {
        let dir = TempDir::new("chunk-range");
        let path = dir.path().join("c.chunk");
        let data = payload();
        write_chunk(&path, ID, &data).unwrap();
        // A half-aligned range (the shape repair_reads emits).
        let mut out = vec![0u8; 512];
        read_chunk_range(&path, ID, 1024, 512, &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(out, &data[512..1024]);
        // An unaligned range spanning the half boundary still reads exactly.
        let mut out = vec![0u8; 100];
        read_chunk_range(&path, ID, 1024, 462, &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(out, &data[462..562]);
        // Zero-length range at the end is fine.
        let mut empty = [0u8; 0];
        read_chunk_range(&path, ID, 1024, 1024, &mut empty)
            .unwrap()
            .unwrap();
    }

    #[test]
    fn partial_reads_detect_payload_corruption() {
        let dir = TempDir::new("chunk-range-corrupt");
        let path = dir.path().join("c.chunk");
        write_chunk(&path, ID, &payload()).unwrap();
        // Corrupt a byte in the second half only.
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 700] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        // A first-half read is unaffected…
        let mut out = vec![0u8; 512];
        read_chunk_range(&path, ID, 1024, 0, &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(out, &payload()[..512]);
        // …but any read touching the second half sees the corruption.
        assert!(matches!(
            read_chunk_range(&path, ID, 1024, 512, &mut out)
                .unwrap()
                .unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));
    }

    #[test]
    fn missing_and_corrupt_are_distinguished() {
        let dir = TempDir::new("chunk-damage");
        let path = dir.path().join("c.chunk");
        assert_eq!(
            read_chunk(&path, ID, 1024).unwrap().unwrap_err(),
            ChunkStatus::Missing
        );

        // Payload corruption: caught by the full read and by verify.
        write_chunk(&path, ID, &payload()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 17] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_chunk(&path, ID, 1024).unwrap().unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));
        let (status, _) = verify_chunk(&path, ID, 1024).unwrap();
        assert!(matches!(status, ChunkStatus::Corrupt { .. }));

        // Header corruption: caught even by partial reads.
        write_chunk(&path, ID, &payload()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[9] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut out = vec![0u8; 8];
        assert!(matches!(
            read_chunk_range(&path, ID, 1024, 0, &mut out)
                .unwrap()
                .unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));

        // Truncation below the header.
        fs::write(&path, b"PBRS").unwrap();
        assert!(matches!(
            read_chunk(&path, ID, 1024).unwrap().unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));
    }

    #[test]
    fn wrong_identity_is_corrupt() {
        let dir = TempDir::new("chunk-identity");
        let path = dir.path().join("c.chunk");
        write_chunk(&path, ID, &payload()).unwrap();
        let other = ChunkId {
            stripe: 8,
            shard: 3,
        };
        assert!(matches!(
            read_chunk(&path, other, 1024).unwrap().unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));
        assert!(matches!(
            read_chunk(&path, ID, 512).unwrap().unwrap_err(),
            ChunkStatus::Corrupt { .. }
        ));
    }
}
