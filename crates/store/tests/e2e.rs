//! End-to-end acceptance: a ≥ 64 MiB object across a temp-dir cluster,
//! one disk removed, served byte-identical degraded, then repaired by the
//! daemon — with the daemon-reported cross-disk helper bytes for
//! `piggyback-10-4` at least 25 % below `rs-10-4` on the same workload.
//!
//! This is the paper's headline experiment run on real file I/O instead of
//! the simulator. The GF kernels and chunk I/O are optimised even in the
//! dev profile (see the workspace `Cargo.toml` profile overrides), so the
//! test stays fast under plain `cargo test`.

use std::fs;
use std::io::Read;
use std::sync::Arc;

use pbrs_store::testing::TempDir;
use pbrs_store::{BlockStore, DaemonConfig, RepairDaemon, StoreConfig};

const OBJECT_LEN: usize = 64 * 1024 * 1024;
const CHUNK_LEN: usize = 256 * 1024;
/// The data disk to destroy. Shard 0 sits in a piggyback group of size 4,
/// so its repair reads (10 + 4) / 2 = 7.0 chunk-equivalents vs RS's 10.
const LOST_DISK: usize = 0;

/// A deterministic pseudo-random byte stream (xorshift64*), so the 64 MiB
/// object costs no memory for an expectation copy beyond the stream state.
struct PatternReader {
    state: u64,
    remaining: usize,
}

impl PatternReader {
    fn new(seed: u64, len: usize) -> Self {
        PatternReader {
            state: seed | 1,
            remaining: len,
        }
    }
}

impl Read for PatternReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.remaining);
        for byte in &mut buf[..n] {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            *byte = (self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
        self.remaining -= n;
        Ok(n)
    }
}

fn pattern_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    PatternReader::new(seed, len).read_exact(&mut out).unwrap();
    out
}

/// Runs the full write → lose disk → degraded read → daemon repair cycle
/// for one code and returns the daemon-reported helper bytes.
fn run_workload(spec: &str) -> u64 {
    let dir = TempDir::new(&format!("e2e-{spec}"));
    let parsed = spec.parse().unwrap();
    let store = Arc::new(
        BlockStore::open(StoreConfig::new(dir.path().join("store"), parsed).chunk_len(CHUNK_LEN))
            .unwrap(),
    );

    // Write ≥ 64 MiB, streamed.
    let seed = 0xE2E0_0001;
    let info = store
        .put("big-object", PatternReader::new(seed, OBJECT_LEN))
        .unwrap();
    assert_eq!(info.len, OBJECT_LEN as u64, "{spec}");
    let expected_stripes = (OBJECT_LEN as u64).div_ceil(store.stripe_data_len() as u64);
    assert_eq!(info.stripes, expected_stripes, "{spec}");

    // Remove one whole disk directory.
    fs::remove_dir_all(store.disk_path(LOST_DISK)).unwrap();

    // Degraded read must be byte-identical.
    let read = store.get("big-object").unwrap();
    assert_eq!(read.len(), OBJECT_LEN, "{spec}");
    assert_eq!(
        read,
        pattern_bytes(seed, OBJECT_LEN),
        "{spec}: degraded read"
    );
    let metrics = store.metrics();
    assert_eq!(metrics.degraded_stripe_reads, info.stripes, "{spec}");

    // Background repair: scan finds the lost disk, workers rebuild it.
    let daemon = RepairDaemon::start(
        Arc::clone(&store),
        DaemonConfig {
            workers: 4,
            scan_interval: None,
        },
    );
    let scan = daemon.scan_now().unwrap();
    assert_eq!(scan.lost_disks, vec![LOST_DISK], "{spec}");
    assert_eq!(scan.enqueued_stripes, info.stripes as usize, "{spec}");
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.failures, 0, "{spec}: {:?}", store.metrics());
    assert_eq!(stats.chunks_repaired, info.stripes, "{spec}");
    assert_eq!(
        stats.bytes_written,
        info.stripes * CHUNK_LEN as u64,
        "{spec}"
    );

    // The store is whole again: clean scrub, normal (non-degraded) reads.
    assert!(store.scrub().unwrap().is_clean(), "{spec}");
    let before = store.metrics().degraded_stripe_reads;
    assert_eq!(store.get("big-object").unwrap().len(), OBJECT_LEN);
    assert_eq!(store.metrics().degraded_stripe_reads, before, "{spec}");

    stats.helper_bytes
}

#[test]
fn lost_disk_cycle_and_piggyback_traffic_saving() {
    let rs_helper_bytes = run_workload("rs-10-4");
    let pb_helper_bytes = run_workload("piggyback-10-4");

    // RS reads k whole chunks per lost chunk.
    let stripes = (OBJECT_LEN as u64).div_ceil(10 * CHUNK_LEN as u64);
    assert_eq!(rs_helper_bytes, stripes * 10 * CHUNK_LEN as u64);
    // Piggyback reads (10 + 4) / 2 = 7.0 chunk-equivalents for shard 0.
    assert_eq!(pb_helper_bytes, stripes * 7 * CHUNK_LEN as u64);

    // The acceptance bar: ≥ 25 % less repair traffic on identical workloads.
    let saving = 1.0 - (pb_helper_bytes as f64 / rs_helper_bytes as f64);
    assert!(
        saving >= 0.25,
        "piggyback saved only {:.1}% helper bytes ({pb_helper_bytes} vs {rs_helper_bytes})",
        saving * 100.0
    );
}
