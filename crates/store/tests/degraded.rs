//! Degraded-read coverage: for every spec in the registry and every single
//! lost shard, a degraded read returns the original object bytes exactly —
//! and a corrupted (bad-CRC) chunk is treated the same as a missing one.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fs;

use pbrs_core::registry;
use pbrs_store::testing::TempDir;
use pbrs_store::{BlockStore, StoreConfig};

const CHUNK_LEN: usize = 256;

/// How shard damage is inflicted on disk.
#[derive(Debug, Clone, Copy)]
enum DamageKind {
    /// Delete the chunk file.
    DeleteChunk,
    /// Delete the whole disk directory.
    DeleteDisk,
    /// Flip one payload byte (bad payload CRC).
    FlipPayloadByte,
    /// Flip one header byte (bad header CRC).
    FlipHeaderByte,
    /// Truncate the file mid-payload.
    Truncate,
}

const KINDS: [DamageKind; 5] = [
    DamageKind::DeleteChunk,
    DamageKind::DeleteDisk,
    DamageKind::FlipPayloadByte,
    DamageKind::FlipHeaderByte,
    DamageKind::Truncate,
];

fn inflict(store: &BlockStore, object: &str, stripe: u64, shard: usize, kind: DamageKind) {
    let path = store.chunk_path(object, stripe, shard);
    match kind {
        DamageKind::DeleteChunk => fs::remove_file(&path).unwrap(),
        DamageKind::DeleteDisk => fs::remove_dir_all(store.disk_path(shard)).unwrap(),
        DamageKind::FlipPayloadByte => {
            let mut bytes = fs::read(&path).unwrap();
            let at = pbrs_store::chunk::HEADER_LEN + (stripe as usize * 37) % CHUNK_LEN;
            bytes[at] ^= 0x40;
            fs::write(&path, bytes).unwrap();
        }
        DamageKind::FlipHeaderByte => {
            let mut bytes = fs::read(&path).unwrap();
            bytes[10] ^= 0x01;
            fs::write(&path, bytes).unwrap();
        }
        DamageKind::Truncate => {
            let bytes = fs::read(&path).unwrap();
            fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        }
    }
}

/// Writes an object, damages shard `shard` of every stripe, and asserts the
/// degraded read is byte-identical. Returns the store for extra checks.
fn assert_degraded_read(spec: pbrs_erasure::CodeSpec, data: &[u8], shard: usize, kind: DamageKind) {
    let dir = TempDir::new("degraded-prop");
    let store =
        BlockStore::open(StoreConfig::new(dir.path().join("store"), spec).chunk_len(CHUNK_LEN))
            .unwrap();
    let info = store.put("obj", data).unwrap();
    match kind {
        DamageKind::DeleteDisk => inflict(&store, "obj", 0, shard, kind),
        _ => {
            for stripe in 0..info.stripes {
                inflict(&store, "obj", stripe, shard, kind);
            }
        }
    }
    let read = store.get("obj").unwrap();
    assert_eq!(
        read, data,
        "degraded read mismatch: spec {spec}, shard {shard}, {kind:?}"
    );
    let metrics = store.metrics();
    let k = spec.params().unwrap().data_shards();
    if shard < k {
        // Losing a data shard degrades every stripe's read…
        assert_eq!(
            metrics.degraded_stripe_reads, info.stripes,
            "{spec} {kind:?}"
        );
        assert!(metrics.degraded_helper_bytes > 0);
    } else {
        // …while a lost parity shard never touches the read path.
        assert_eq!(metrics.degraded_stripe_reads, 0, "{spec} {kind:?}");
    }

    // Either way the damage is repairable: scrub, rebuild, scrub clean.
    let scrub = store.scrub().unwrap();
    assert!(
        !scrub.is_clean(),
        "{spec} {kind:?}: scrub must see the damage"
    );
    for stripe in 0..info.stripes {
        let damaged: Vec<usize> = scrub
            .damages
            .iter()
            .filter(|d| d.stripe == stripe)
            .map(|d| d.shard)
            .collect();
        if !damaged.is_empty() {
            let repair = store.repair_stripe("obj", stripe, &damaged).unwrap();
            assert_eq!(repair.rebuilt, damaged, "{spec} {kind:?}");
        }
    }
    assert!(store.scrub().unwrap().is_clean(), "{spec} {kind:?}");
    assert_eq!(
        store.get("obj").unwrap(),
        data,
        "{spec} {kind:?} post-repair"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The satellite property: every registry spec × every single lost
    /// shard × random object sizes (sub-stripe, unaligned, multi-stripe)
    /// round-trips exactly through a degraded read; corruption and loss are
    /// interchangeable.
    #[test]
    fn every_spec_every_lost_shard_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for spec in registry::known_specs() {
            let n = spec.total_shards();
            let k = spec.params().unwrap().data_shards();
            // Between a fraction of a stripe and a few stripes.
            let len = rng.random_range(1..3 * k * CHUNK_LEN + 1);
            let data: Vec<u8> = (0..len).map(|_| rng.random()).collect();
            for shard in 0..n {
                // Rotate damage kinds so every run covers them all without
                // multiplying the case count.
                let kind = KINDS[(shard + seed as usize) % KINDS.len()];
                assert_degraded_read(spec, &data, shard, kind);
            }
        }
    }
}

/// Pin the "corrupt equals missing" equivalence deterministically: the same
/// workload loses a chunk one time and corrupts it the other, and both roads
/// lead to the same served bytes and the same helper-byte count.
#[test]
fn corrupt_chunk_costs_the_same_as_missing_chunk() {
    for spec in registry::known_specs() {
        let spec_str = spec.to_string();
        let k = spec.params().unwrap().data_shards();
        let data: Vec<u8> = (0..2 * k * CHUNK_LEN + 17)
            .map(|i| ((i * 29 + 11) % 256) as u8)
            .collect();
        let run = |kind: DamageKind| {
            let dir = TempDir::new("corrupt-vs-missing");
            let store = BlockStore::open(
                StoreConfig::new(dir.path().join("store"), spec).chunk_len(CHUNK_LEN),
            )
            .unwrap();
            let info = store.put("obj", &data[..]).unwrap();
            for stripe in 0..info.stripes {
                inflict(&store, "obj", stripe, 0, kind);
            }
            let read = store.get("obj").unwrap();
            (read, store.metrics().degraded_helper_bytes)
        };
        let (missing_bytes, missing_helpers) = run(DamageKind::DeleteChunk);
        let (corrupt_bytes, corrupt_helpers) = run(DamageKind::FlipPayloadByte);
        assert_eq!(missing_bytes, data, "{spec_str}: missing");
        assert_eq!(corrupt_bytes, data, "{spec_str}: corrupt");
        assert_eq!(
            missing_helpers, corrupt_helpers,
            "{spec_str}: a bad-CRC chunk must cost exactly what a missing one costs"
        );
    }
}
