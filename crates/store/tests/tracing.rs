//! Causal-tracing integration: store spans under a scoped trace context.
//!
//! The store records spans only when (a) a tracer is installed and (b) a
//! [`TraceCtx`] is in scope on the calling thread — exactly how the
//! gateway drives it. These tests pin the span shapes the flight
//! recorder's consumers rely on: a degraded read retains a tree whose
//! `chunk_io` leaves name the disks and racks actually read, and a
//! repair job mints its own root trace.

use std::fs;
use std::sync::Arc;

use pbrs_obs::trace::{RootFlags, ScopedCtx, Tracer, TracerConfig};
use pbrs_store::testing::TempDir;
use pbrs_store::{BlockStore, StoreConfig};

const CHUNK_LEN: usize = 1024;

fn spec() -> pbrs_erasure::CodeSpec {
    "piggyback-6-2".parse().unwrap()
}

fn open_traced(dir: &TempDir) -> (BlockStore, Arc<Tracer>) {
    let store =
        BlockStore::open(StoreConfig::new(dir.path().join("store"), spec()).chunk_len(CHUNK_LEN))
            .unwrap();
    let tracer = Arc::new(Tracer::new("store-test", TracerConfig::default()));
    store.set_tracer(Arc::clone(&tracer));
    (store, tracer)
}

fn delete_chunk(store: &BlockStore, object: &str, stripe: u64, shard: usize) {
    let disk = store.stripe_disks(object, stripe)[shard];
    let path = store
        .disk_path(disk)
        .join(object)
        .join(format!("{stripe:08}-{shard:02}.chunk"));
    fs::remove_file(path).unwrap();
}

#[test]
fn degraded_get_retains_a_tree_with_disk_labelled_chunk_io_leaves() {
    let dir = TempDir::new("trace-degraded");
    let (store, tracer) = open_traced(&dir);
    let data: Vec<u8> = (0..4 * CHUNK_LEN).map(|i| (i % 251) as u8).collect();
    store.put("obj", &data[..]).unwrap();
    delete_chunk(&store, "obj", 0, 0);

    let root = tracer.root_span("get", None);
    let ctx = root.ctx();
    let got = {
        let _scope = ScopedCtx::enter(Some(ctx));
        store.get("obj").unwrap()
    };
    assert_eq!(got, data);
    assert!(
        root.finish_root(&tracer, RootFlags::default()),
        "a degraded read must be retained via span-tag evidence alone"
    );

    let retained = tracer.retained();
    assert_eq!(retained.len(), 1);
    let tree = &retained[0];
    assert_eq!(tree.trace, ctx.trace);
    assert!(tree.reasons.contains(&"degraded"), "{:?}", tree.reasons);

    let read = tree
        .spans
        .iter()
        .find(|s| s.name == "read_stripe" && s.tag("degraded").is_some())
        .expect("one stripe read span tagged degraded");
    assert_eq!(read.parent, Some(tree.root));
    assert_eq!(read.tag("object"), Some("obj"));

    // Every helper read is a chunk_io leaf under the stripe span, naming
    // the pool disk, its rack, and the backend actually touched.
    let leaves: Vec<_> = tree.spans.iter().filter(|s| s.name == "chunk_io").collect();
    assert!(!leaves.is_empty(), "helper reads must leave chunk_io spans");
    for leaf in &leaves {
        assert_eq!(leaf.parent, Some(read.id));
        let disk: usize = leaf.tag("disk").unwrap().parse().unwrap();
        assert!(disk < store.disk_count());
        assert!(leaf.tag("rack").is_some(), "{:?}", leaf.tags);
        assert!(
            leaf.tag("backend").unwrap().contains("disk-"),
            "{:?}",
            leaf.tags
        );
    }
}

#[test]
fn healthy_get_is_not_retained_beyond_sampling() {
    let dir = TempDir::new("trace-healthy");
    let (store, tracer) = open_traced(&dir);
    let data = vec![7u8; 2 * CHUNK_LEN];
    store.put("obj", &data[..]).unwrap();

    let mut retained = 0;
    for _ in 0..3 {
        let root = tracer.root_span("get", None);
        let _scope = ScopedCtx::enter(Some(root.ctx()));
        store.get("obj").unwrap();
        drop(_scope);
        if root.finish_root(&tracer, RootFlags::default()) {
            retained += 1;
        }
    }
    // Default 1-in-128 sampling retains exactly the first healthy root.
    assert_eq!(retained, 1);
    assert_eq!(tracer.retained()[0].reasons, vec!["sampled"]);
}

#[test]
fn repair_jobs_mint_their_own_root_trace() {
    let dir = TempDir::new("trace-repair");
    let (store, tracer) = open_traced(&dir);
    let data = vec![3u8; 3 * CHUNK_LEN];
    store.put("obj", &data[..]).unwrap();
    delete_chunk(&store, "obj", 0, 1);

    let report = store.repair_stripe("obj", 0, &[1]).unwrap();
    assert_eq!(report.rebuilt, vec![1]);

    // No caller context: the repair is its own root, caught here by the
    // 1-in-N healthy sampler (first root always samples).
    let retained = tracer.retained();
    assert_eq!(retained.len(), 1);
    let tree = &retained[0];
    assert_eq!(tree.op, "repair");
    assert_eq!(tree.spans.iter().filter(|s| s.name == "repair").count(), 1);
    assert!(
        tree.spans
            .iter()
            .any(|s| s.name == "chunk_io" && s.tag("rack").is_some()),
        "helper reads of the rebuild must appear under the repair root"
    );
    assert!(
        tree.spans.iter().any(|s| s.name == "rebuild"),
        "the planned rebuild records its erasure span"
    );
}
