//! Placed-store integration tests: a backend pool larger than the code
//! width, rack-disjoint and rack-aware policies, persisted placements
//! across reopen, locality-first repair accounting, the delete→tombstone→
//! sweep lifecycle, and resumable incremental scrubs.

use std::fs;
use std::sync::Arc;

use pbrs_store::testing::TempDir;
use pbrs_store::{
    BlockStore, ChunkBackend, DaemonConfig, LocalDisk, PlacementPolicy, RackMap, RepairDaemon,
    StoreConfig, StoreError,
};

const CHUNK_LEN: usize = 512;

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 41 + 5) % 251) as u8).collect()
}

/// One `LocalDisk` per pool slot under `dir`, stable across reopens.
fn pool_disks(dir: &TempDir, count: usize) -> Vec<Arc<dyn ChunkBackend>> {
    (0..count)
        .map(|i| {
            Arc::new(LocalDisk::new(dir.path().join(format!("pool-{i:02}"))))
                as Arc<dyn ChunkBackend>
        })
        .collect()
}

fn pool_path(dir: &TempDir, disk: usize) -> std::path::PathBuf {
    dir.path().join(format!("pool-{disk:02}"))
}

/// 6 racks × 2 disks, rs-4-2 (width 6) rack-disjoint over a 12-disk pool.
fn disjoint_store(dir: &TempDir) -> BlockStore {
    BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap())
            .chunk_len(CHUNK_LEN)
            .placement_seed(7),
        pool_disks(dir, 12),
        RackMap::uniform(6, 2),
        PlacementPolicy::RackDisjoint,
    )
    .unwrap()
}

#[test]
fn placed_store_round_trip_persists_placement_across_reopen() {
    let dir = TempDir::new("placement-roundtrip");
    let data = pattern(4 * CHUNK_LEN * 5 + 333); // 6 stripes, last partial
    {
        let store = disjoint_store(&dir);
        store.put("obj", &data[..]).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
        // Every stripe resolves to 6 in-bounds, rack-disjoint pool disks,
        // and the chunk files really live where the placement says.
        for stripe in 0..6u64 {
            let row = store.stripe_disks("obj", stripe);
            assert_eq!(row.len(), 6);
            assert!(
                store.racks().is_rack_disjoint(&row),
                "stripe {stripe}: {row:?}"
            );
            for (shard, &disk) in row.iter().enumerate() {
                let chunk = pool_path(&dir, disk)
                    .join("obj")
                    .join(format!("{stripe:08}-{shard:02}.chunk"));
                assert!(
                    chunk.is_file(),
                    "stripe {stripe} shard {shard} on disk {disk}"
                );
            }
        }
    }
    // Reopen over the same mounts: placements come back from the manifest.
    let reopened = disjoint_store(&dir);
    assert_eq!(reopened.get("obj").unwrap(), data);
    assert_eq!(reopened.placement_policy(), PlacementPolicy::RackDisjoint);
    let fresh = disjoint_store(&dir);
    for stripe in 0..6u64 {
        assert_eq!(
            reopened.stripe_disks("obj", stripe),
            fresh.stripe_disks("obj", stripe)
        );
    }
}

#[test]
fn degraded_reads_succeed_for_every_lost_pool_disk() {
    let dir = TempDir::new("placement-every-disk");
    let store = Arc::new(disjoint_store(&dir));
    let data = pattern(4 * CHUNK_LEN * 7 + 99); // 8 stripes
    store.put("obj", &data[..]).unwrap();

    for disk in 0..12 {
        fs::remove_dir_all(pool_path(&dir, disk)).unwrap();
        assert_eq!(
            store.get("obj").unwrap(),
            data,
            "degraded read after losing pool disk {disk}"
        );
        // Heal before the next iteration so losses never accumulate.
        let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
        daemon.scan_now().unwrap();
        daemon.wait_idle();
        assert_eq!(daemon.shutdown().failures, 0, "disk {disk}");
        assert!(store.scrub().unwrap().is_clean(), "disk {disk}");
    }
    assert_eq!(store.get("obj").unwrap(), data);
}

#[test]
fn rack_disjoint_repairs_are_all_cross_rack() {
    let dir = TempDir::new("placement-disjoint-cross");
    let store = Arc::new(disjoint_store(&dir));
    store.put("obj", &pattern(4 * CHUNK_LEN * 6)[..]).unwrap();
    fs::remove_dir_all(pool_path(&dir, 3)).unwrap();

    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert!(stats.helper_bytes > 0);
    assert_eq!(
        stats.intra_rack_bytes, 0,
        "rack-disjoint placement leaves no same-rack helpers"
    );
    assert_eq!(stats.cross_rack_bytes, stats.helper_bytes);
    let snap = store.metrics();
    assert_eq!(snap.repair_cross_rack_bytes, stats.cross_rack_bytes);
    assert_eq!(snap.repair_intra_rack_bytes, 0);
}

#[test]
fn rack_aware_placement_yields_intra_rack_helpers() {
    let dir = TempDir::new("placement-aware-intra");
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap())
                .chunk_len(CHUNK_LEN)
                .placement_seed(11),
            pool_disks(&dir, 12),
            RackMap::uniform(6, 2),
            PlacementPolicy::RackAware,
        )
        .unwrap(),
    );
    let data = pattern(4 * CHUNK_LEN * 12); // 12 stripes for coverage
    store.put("obj", &data[..]).unwrap();
    fs::remove_dir_all(pool_path(&dir, 0)).unwrap();

    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.failures, 0);
    assert!(stats.helper_bytes > 0);
    // Grouped placement: disk 0's rack-mate (disk 1) holds the other shard
    // of every stripe disk 0 served, and the locality-first scheduler
    // prefers it — some helper bytes must be intra-rack.
    assert!(
        stats.intra_rack_bytes > 0,
        "locality-first repair found no same-rack helpers: {stats:?}"
    );
    assert_eq!(
        stats.intra_rack_bytes + stats.cross_rack_bytes,
        stats.helper_bytes
    );
    assert_eq!(store.get("obj").unwrap(), data);
}

#[test]
fn geometry_mismatches_are_rejected_on_reopen() {
    let dir = TempDir::new("placement-mismatch");
    {
        let store = disjoint_store(&dir);
        store.put("obj", &pattern(100)[..]).unwrap();
    }
    let config = || {
        StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap())
            .chunk_len(CHUNK_LEN)
            .placement_seed(7)
    };
    // Wrong policy.
    assert!(matches!(
        BlockStore::open_with_backends(
            config(),
            pool_disks(&dir, 12),
            RackMap::uniform(6, 2),
            PlacementPolicy::RackAware,
        ),
        Err(StoreError::ConfigMismatch {
            field: "policy",
            ..
        })
    ));
    // Wrong pool size (feasible placement, so the manifest check decides).
    assert!(matches!(
        BlockStore::open_with_backends(
            config(),
            pool_disks(&dir, 8),
            RackMap::uniform(8, 1),
            PlacementPolicy::RackDisjoint,
        ),
        Err(StoreError::ConfigMismatch { field: "pool", .. })
    ));
    // Wrong seed.
    assert!(matches!(
        BlockStore::open_with_backends(
            config().placement_seed(8),
            pool_disks(&dir, 12),
            RackMap::uniform(6, 2),
            PlacementPolicy::RackDisjoint,
        ),
        Err(StoreError::ConfigMismatch {
            field: "placement_seed",
            ..
        })
    ));
    // Infeasible geometry is a typed placement error, not a panic: width 6
    // cannot be rack-disjoint over 4 racks.
    assert!(matches!(
        BlockStore::open_with_backends(
            config(),
            pool_disks(&dir, 8),
            RackMap::uniform(4, 2),
            PlacementPolicy::RackDisjoint,
        ),
        Err(StoreError::ConfigMismatch { .. }) | Err(StoreError::Placement(_))
    ));
    // A rack map that does not cover the pool is invalid config.
    assert!(matches!(
        BlockStore::open_with_backends(
            config(),
            pool_disks(&dir, 12),
            RackMap::uniform(5, 2),
            PlacementPolicy::RackDisjoint,
        ),
        Err(StoreError::InvalidConfig { .. })
    ));
}

#[test]
fn delete_tombstones_then_scrub_sweeps_the_dead_chunks() {
    let dir = TempDir::new("placement-delete");
    let store = disjoint_store(&dir);
    let data = pattern(4 * CHUNK_LEN * 3 + 17);
    store.put("obj", &data[..]).unwrap();
    store.put("keep", &pattern(600)[..]).unwrap();
    let row0 = store.stripe_disks("obj", 0);

    let info = store.delete("obj").unwrap();
    assert_eq!(info.len, data.len() as u64);
    // Gone from the namespace immediately; chunks still on disk until the
    // sweep. The miss is *typed*: the tombstone makes "deleted" (an
    // answer) distinguishable from "never existed" and from I/O failure.
    assert!(matches!(
        store.get("obj"),
        Err(StoreError::ObjectDeleted { .. })
    ));
    assert!(matches!(
        store.delete("obj"),
        Err(StoreError::ObjectDeleted { .. })
    ));
    assert!(matches!(
        store.get("never-existed"),
        Err(StoreError::ObjectNotFound { .. })
    ));
    let dead_chunk = pool_path(&dir, row0[0])
        .join("obj")
        .join("00000000-00.chunk");
    assert!(dead_chunk.is_file(), "chunks linger until the sweep");

    let scrub = store.scrub().unwrap();
    assert_eq!(scrub.tombstones_swept, vec!["obj".to_string()]);
    assert!(scrub.is_clean());
    assert!(!dead_chunk.exists(), "sweep removed the dead chunks");
    for disk in 0..12 {
        assert!(!pool_path(&dir, disk).join("obj").exists(), "disk {disk}");
    }
    // The survivor is untouched; a second scrub sweeps nothing.
    assert_eq!(store.get("keep").unwrap(), pattern(600));
    assert!(store.scrub().unwrap().tombstones_swept.is_empty());
}

#[test]
fn deleted_names_can_be_reused_before_the_sweep() {
    let dir = TempDir::new("placement-reuse");
    let store = disjoint_store(&dir);
    store.put("obj", &pattern(4 * CHUNK_LEN * 2)[..]).unwrap();
    store.delete("obj").unwrap();
    // No scrub in between: put must sweep the dead chunks itself, and the
    // recommitted object must read back its *new* bytes.
    let fresh = pattern(4 * CHUNK_LEN + 77);
    store.put("obj", &fresh[..]).unwrap();
    assert_eq!(store.get("obj").unwrap(), fresh);
    // The tombstone is gone: nothing sweeps the reused name's chunks.
    let scrub = store.scrub().unwrap();
    assert!(scrub.tombstones_swept.is_empty());
    assert!(scrub.is_clean());
    assert_eq!(store.get("obj").unwrap(), fresh);
}

#[test]
fn scrub_partial_resumes_across_passes_and_reopens() {
    let dir = TempDir::new("placement-partial-scrub");
    let total_stripes = {
        let store = disjoint_store(&dir);
        // Three objects, 2 + 3 + 1 stripes.
        store.put("a", &pattern(4 * CHUNK_LEN * 2)[..]).unwrap();
        store.put("b", &pattern(4 * CHUNK_LEN * 3)[..]).unwrap();
        store.put("c", &pattern(100)[..]).unwrap();
        // Corrupt one chunk of object b so some pass must find it.
        let row = store.stripe_disks("b", 1);
        let victim = pool_path(&dir, row[2]).join("b").join("00000001-02.chunk");
        let mut bytes = fs::read(&victim).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x10;
        fs::write(&victim, &bytes).unwrap();

        // First pass covers 2 stripes (object a) and persists its cursor.
        let pass = store.scrub_partial(2).unwrap();
        assert_eq!(pass.stripes_scanned, 2);
        assert!(!pass.wrapped);
        assert!(pass.damages.is_empty());
        6u64
    };

    // Reopen: the cursor survives, the next passes continue at object b,
    // find the corruption, and eventually wrap.
    let store = disjoint_store(&dir);
    let mut scanned = 2u64;
    let mut damaged = Vec::new();
    let mut wrapped = false;
    for _ in 0..10 {
        let pass = store.scrub_partial(2).unwrap();
        scanned += pass.stripes_scanned;
        damaged.extend(pass.damages);
        if pass.wrapped {
            wrapped = true;
            break;
        }
    }
    assert!(wrapped, "partial scrubs must complete a full sweep");
    assert_eq!(scanned, total_stripes, "every stripe scanned exactly once");
    assert_eq!(damaged.len(), 1);
    assert_eq!(damaged[0].object, "b");
    assert_eq!(damaged[0].stripe, 1);
    assert_eq!(damaged[0].shard, 2);

    // After the wrap the cursor is reset: the next pass starts over.
    let pass = store.scrub_partial(100).unwrap();
    assert_eq!(pass.stripes_scanned, total_stripes);
    assert!(pass.wrapped);
}

#[test]
fn deleting_the_cursor_object_rewinds_the_partial_scrub() {
    let dir = TempDir::new("placement-cursor-delete");
    let store = disjoint_store(&dir);
    store.put("a", &pattern(4 * CHUNK_LEN * 2)[..]).unwrap(); // 2 stripes
    store.put("b", &pattern(4 * CHUNK_LEN * 3)[..]).unwrap(); // 3 stripes
    store.put("c", &pattern(100)[..]).unwrap(); // 1 stripe

    // Park the cursor mid-object-b: a(2) + b stripe 0 scanned.
    let pass = store.scrub_partial(3).unwrap();
    assert_eq!(pass.stripes_scanned, 3);
    assert!(!pass.wrapped);

    // Delete and re-put "b": its early stripes must not be skipped by the
    // resumed sweep (the old cursor pointed past them).
    store.delete("b").unwrap();
    // 3 full stripes + a 9-byte partial fourth.
    store.put("b", &pattern(4 * CHUNK_LEN * 3 + 9)[..]).unwrap();
    let pass = store.scrub_partial(100).unwrap();
    assert_eq!(
        pass.stripes_scanned, 5,
        "all 4 stripes of the re-put object plus object c"
    );
    assert!(pass.wrapped);
    assert!(pass.damages.is_empty());
}
