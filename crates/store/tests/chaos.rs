//! Failure-domain hardening, end to end: deterministic fault injection
//! driving the deadline guard, the health state machine, hedged planned
//! rebuilds, and the repair daemon's health-priority scheduling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pbrs_store::testing::TempDir;
use pbrs_store::{
    BlockStore, ChunkBackend, DaemonConfig, DiskState, EventKind, FaultPlan, FaultyBackend,
    HealthPolicy, LocalDisk, Outcome, PlacementPolicy, RackMap, RepairDaemon, StoreConfig,
};

const CHUNK_LEN: usize = 512;

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + 11) % 251) as u8).collect()
}

/// Path of one chunk file within the `pool-NN` backend layout used here
/// (the store's own `disk_path`/`chunk_path` cover only the all-local
/// `BlockStore::open` layout).
fn pool_chunk(
    dir: &TempDir,
    disk: usize,
    object: &str,
    stripe: u64,
    shard: usize,
) -> std::path::PathBuf {
    dir.path()
        .join(format!("pool-{disk:02}"))
        .join(object)
        .join(format!("{stripe:08}-{shard:02}.chunk"))
}

/// One `FaultyBackend(LocalDisk)` per pool slot, all sharing `plan`.
fn faulty_pool(dir: &TempDir, count: usize, plan: &Arc<FaultPlan>) -> Vec<Arc<dyn ChunkBackend>> {
    (0..count)
        .map(|i| {
            let inner: Arc<dyn ChunkBackend> =
                Arc::new(LocalDisk::new(dir.path().join(format!("pool-{i:02}"))));
            Arc::new(FaultyBackend::new(inner, Arc::clone(plan), i)) as Arc<dyn ChunkBackend>
        })
        .collect()
}

/// Small-threshold policy: two failures demote, probes far apart (so a
/// tripped breaker visibly sheds) unless a test overrides it.
fn policy() -> HealthPolicy {
    HealthPolicy {
        window: 8,
        suspect_failures: 2,
        failed_failures: 6,
        probe_interval: Duration::from_secs(60),
        recovery_successes: 3,
    }
}

fn hardened(dir: &TempDir, spec: &str, disks: usize, plan: &Arc<FaultPlan>) -> BlockStore {
    BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), spec.parse().unwrap())
            .chunk_len(CHUNK_LEN)
            .op_deadline(Duration::from_millis(200))
            .hedge_delay(Duration::from_millis(60))
            .health_policy(policy()),
        faulty_pool(dir, disks, plan),
        RackMap::per_disk(disks),
        PlacementPolicy::Identity,
    )
    .unwrap()
}

#[test]
fn stalled_disk_is_routed_around_within_deadline_and_demoted() {
    let dir = TempDir::new("chaos-stall");
    // Disk 2 (a data shard under identity placement) stalls every read
    // indefinitely; writes are clean so `put` lays the object down intact.
    let plan = Arc::new(FaultPlan::named("stall-one-disk", 42).unwrap());
    let store = hardened(&dir, "piggyback-4-2", 6, &plan);
    let data = pattern(4 * CHUNK_LEN * 3); // 3 full stripes
    store.put("obj", &data[..]).unwrap();

    // Every stripe read hits the stall on shard 2, abandons it at the
    // deadline, and serves the stripe degraded from the survivors.
    let start = Instant::now();
    assert_eq!(store.get("obj").unwrap(), data);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not bound the stalled reads: {elapsed:?}"
    );

    // Two timeouts demoted the stalled disk; the transition is journaled
    // and the advisory state hit the store root.
    assert_eq!(store.disk_state(2), Some(DiskState::Suspect));
    let health = store.health().unwrap();
    assert!(health.total_timeouts() >= 2);
    let events = store.health_events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == EventKind::DiskHealth && e.detail.contains("suspect")),
        "breaker trip missing from the health journal: {events:?}"
    );
    let advisory =
        std::fs::read_to_string(dir.path().join("root").join("HEALTH.advisory")).unwrap();
    assert!(advisory.contains("suspect"), "advisory: {advisory:?}");

    // With the breaker open, further reads shed the sick disk without
    // waiting on the stall at all.
    let start = Instant::now();
    assert_eq!(store.get("obj").unwrap(), data);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "breaker did not shed: {:?}",
        start.elapsed()
    );
    let metrics = store.metrics();
    assert!(metrics.disk_timeouts >= 2, "{metrics:?}");
    assert!(metrics.disk_sheds >= 1, "{metrics:?}");
    assert!(metrics.degraded_stripe_reads >= 6, "{metrics:?}");

    plan.release();
}

#[test]
fn hedged_rebuild_switches_to_the_next_ranked_helper_set() {
    let dir = TempDir::new("chaos-hedge");
    // Shard 1's disk is wounded (chunks deleted) and parity disk 4 stalls:
    // the first-choice RS helper set {0,2,3,4} runs into the stall, hedges,
    // and the next-ranked set {0,2,3,5} completes the rebuild.
    let plan = Arc::new(FaultPlan::parse("disk=4 op=read stall", 7).unwrap());
    let store = hardened(&dir, "rs-4-2", 6, &plan);
    let stripes = 3usize;
    let data = pattern(4 * CHUNK_LEN * stripes);
    store.put("obj", &data[..]).unwrap();
    std::fs::remove_dir_all(dir.path().join("pool-01")).unwrap();

    let start = Instant::now();
    assert_eq!(store.get("obj").unwrap(), data);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "hedge did not bound the stalled helper: {elapsed:?}"
    );
    let metrics = store.metrics();
    assert_eq!(metrics.hedged_reads, stripes as u64, "{metrics:?}");
    assert_eq!(metrics.hedge_wins, stripes as u64, "{metrics:?}");
    // The planned (hedged) path won every stripe: no full reconstruction.
    assert_eq!(metrics.degraded_stripe_reads, stripes as u64);

    plan.release();
}

#[test]
fn repeated_runs_under_the_same_seed_are_deterministic() {
    // Same plan text + seed ⇒ identical injected outcomes, hence identical
    // hedge/health counters — the property the chaos CI job leans on.
    let run = |seed: u64| -> (u64, u64, Option<DiskState>) {
        let dir = TempDir::new("chaos-seed");
        let plan = Arc::new(FaultPlan::parse("disk=2 op=read p=0.5 error", seed).unwrap());
        // A single pipeline worker keeps the read-op order (and therefore
        // the per-rule fault sequence) identical across runs.
        let store = BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap())
                .chunk_len(CHUNK_LEN)
                .pipeline_workers(1)
                .op_deadline(Duration::from_millis(500))
                .health_policy(policy()),
            faulty_pool(&dir, 6, &plan),
            RackMap::per_disk(6),
            PlacementPolicy::Identity,
        )
        .unwrap();
        let data = pattern(4 * CHUNK_LEN * 8);
        store.put("obj", &data[..]).unwrap();
        assert_eq!(store.get("obj").unwrap(), data);
        (
            plan.fired(),
            store.metrics().degraded_stripe_reads,
            store.disk_state(2),
        )
    };
    let a = run(99);
    let b = run(99);
    assert_eq!(a, b, "same seed must replay the same faults");
    assert!(a.0 > 0, "p=0.5 over 8 stripes should fire at least once");
}

#[test]
fn daemon_repairs_stripes_on_sick_disks_first() {
    let dir = TempDir::new("chaos-priority");
    // A rule that can never fire: the pool is plumbed for injection but
    // this test wants clean disks.
    let plan = Arc::new(FaultPlan::parse("disk=5 op=meta error after=1000000000", 1).unwrap());
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap())
                .chunk_len(CHUNK_LEN)
                .op_deadline(Duration::from_millis(500))
                .health_policy(HealthPolicy {
                    // Probe interval zero: Suspect disks still serve every op
                    // (each one a probe), so scrub and repair see real bytes;
                    // large recovery threshold keeps the state pinned.
                    probe_interval: Duration::ZERO,
                    recovery_successes: 100,
                    suspect_failures: 2,
                    ..policy()
                }),
            faulty_pool(&dir, 6, &plan),
            RackMap::per_disk(6),
            PlacementPolicy::Identity,
        )
        .unwrap(),
    );
    let data = pattern(4 * CHUNK_LEN);
    // BTreeMap scan order is ("cold", …) < ("hot", …): without the health
    // priority, "cold" would be enqueued and repaired first.
    store.put("cold", &data[..]).unwrap();
    store.put("hot", &data[..]).unwrap();
    std::fs::remove_file(pool_chunk(&dir, 3, "cold", 0, 3)).unwrap();
    std::fs::remove_file(pool_chunk(&dir, 1, "hot", 0, 1)).unwrap();
    // Disk 1 (holding "hot"'s damage) is demoted by two recorded timeouts.
    let health = Arc::clone(store.health().unwrap());
    health.record(1, Outcome::Timeout);
    health.record(1, Outcome::Timeout);
    assert_eq!(store.disk_state(1), Some(DiskState::Suspect));

    let daemon = RepairDaemon::start(
        Arc::clone(&store),
        DaemonConfig {
            workers: 1, // serial: repair order == queue order
            scan_interval: None,
        },
    );
    let scan = daemon.scan_now().unwrap();
    assert_eq!(scan.enqueued_stripes, 2);
    daemon.wait_idle();
    let repairs: Vec<String> = daemon
        .recent_events()
        .into_iter()
        .filter(|e| e.kind == EventKind::Repair)
        .map(|e| e.detail)
        .collect();
    assert_eq!(repairs.len(), 2);
    assert!(
        repairs[0].contains("hot"),
        "sick-disk stripe must repair first: {repairs:?}"
    );
    daemon.shutdown();
    assert!(store.scrub().unwrap().is_clean());
}
