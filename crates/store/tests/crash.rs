//! Crash-consistency scenarios: what a writer that died mid-write leaves
//! behind, and that scrub + repair restore the store to a clean state
//! without mistaking debris for damage (or deleting a live writer's tmp).

use std::fs::{self, File};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use pbrs_store::testing::TempDir;
use pbrs_store::{BlockStore, ChunkStatus, DaemonConfig, RepairDaemon, StoreConfig, StoreError};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 13 + 5) % 251) as u8).collect()
}

fn age(path: &std::path::Path, by: Duration) {
    File::options()
        .write(true)
        .open(path)
        .unwrap()
        .set_modified(SystemTime::now() - by)
        .unwrap();
}

/// A crash between a chunk's tmp write and its rename leaves a stale
/// `*.tmp` and no renamed chunk file. Scrub must delete the tmp, report it
/// separately from the damage, and repair must rebuild the chunk.
#[test]
fn stale_tmp_plus_missing_chunk_is_swept_and_repaired() {
    let dir = TempDir::new("crash-consistency");
    let store = Arc::new(
        BlockStore::open(
            StoreConfig::new(dir.path().join("store"), "rs-4-2".parse().unwrap()).chunk_len(512),
        )
        .unwrap(),
    );
    let data = pattern(4 * 512 * 2);
    store.put("obj", &data[..]).unwrap();

    // Simulate the crash: chunk (1, 2) never got renamed — its payload sits
    // in a tmp sibling — and the renamed file is gone.
    let chunk = store.chunk_path("obj", 1, 2);
    let tmp = chunk.with_extension("tmp");
    fs::rename(&chunk, &tmp).unwrap();
    age(&tmp, Duration::from_secs(3600));
    // A second, younger tmp elsewhere models a live writer mid-rename.
    let fresh_tmp = store.chunk_path("obj", 0, 0).with_extension("tmp");
    fs::write(&fresh_tmp, b"live writer").unwrap();

    let scrub = store.scrub().unwrap();
    assert_eq!(scrub.stale_tmp_removed, vec!["disk-02/obj/00000001-02.tmp"]);
    assert!(!tmp.exists(), "stale tmp deleted");
    assert!(fresh_tmp.exists(), "fresh tmp kept");
    assert_eq!(scrub.damages.len(), 1);
    assert_eq!(scrub.damages[0].stripe, 1);
    assert_eq!(scrub.damages[0].shard, 2);
    assert_eq!(scrub.damages[0].status, ChunkStatus::Missing);

    // The repair daemon heals the missing chunk; afterwards only the fresh
    // tmp (a live writer's) remains, and the object reads back intact.
    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.chunks_repaired, 1);
    assert_eq!(stats.failures, 0);
    let rescrub = store.scrub().unwrap();
    assert!(rescrub.is_clean());
    assert!(rescrub.stale_tmp_removed.is_empty());
    assert_eq!(store.get("obj").unwrap(), data);
}

/// A stale `MANIFEST.tmp` (a manifest save that died before its rename) is
/// swept from the store root; the committed manifest it shadowed is intact.
#[test]
fn stale_manifest_tmp_is_swept() {
    let dir = TempDir::new("crash-manifest-tmp");
    let root = dir.path().join("store");
    let store = BlockStore::open(StoreConfig::new(&root, "rs-4-2".parse().unwrap()).chunk_len(512))
        .unwrap();
    store.put("obj", &pattern(100)[..]).unwrap();

    let tmp = root.join("MANIFEST.tmp");
    fs::write(&tmp, "pbrs-store v1\ncode rs-4-2\nchunk 512\n").unwrap();
    age(&tmp, Duration::from_secs(3600));

    let scrub = store.scrub().unwrap();
    assert!(scrub.is_clean());
    assert_eq!(scrub.stale_tmp_removed, vec!["MANIFEST.tmp"]);
    assert!(!tmp.exists());
    // The real manifest still loads on reopen.
    drop(store);
    let reopened =
        BlockStore::open(StoreConfig::new(&root, "rs-4-2".parse().unwrap()).chunk_len(512))
            .unwrap();
    assert_eq!(reopened.get("obj").unwrap(), pattern(100));
}

/// The panic-injection pair from the crate's unit tests, exercised through
/// the public API: neither a panicking repair worker nor a panicking
/// pipeline encode worker may hang its caller.
#[test]
fn injected_panics_terminate_instead_of_hanging() {
    let dir = TempDir::new("crash-panics");
    let store = Arc::new(
        BlockStore::open(
            StoreConfig::new(dir.path().join("store"), "rs-4-2".parse().unwrap())
                .chunk_len(512)
                .pipeline_workers(2),
        )
        .unwrap(),
    );
    let data = pattern(4 * 512 * 4);
    store.put("obj", &data[..]).unwrap();

    // Pipelined put under injected encode panics: errors, never hangs.
    store.inject_encode_panic(true);
    assert!(matches!(
        store.put("obj2", &data[..]),
        Err(StoreError::WorkerPanic { .. })
    ));
    store.inject_encode_panic(false);

    // Daemon under injected repair panics: wait_idle returns, failure
    // counted, and the damage is still repairable afterwards.
    fs::remove_file(store.chunk_path("obj", 0, 1)).unwrap();
    store.inject_repair_panic(true);
    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    assert_eq!(daemon.stats().failures, 1);
    store.inject_repair_panic(false);
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    assert_eq!(daemon.shutdown().chunks_repaired, 1);
    assert!(store.scrub().unwrap().is_clean());
    assert_eq!(store.get("obj").unwrap(), data);
}
