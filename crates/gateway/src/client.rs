//! A small blocking gateway client.
//!
//! [`GatewayClient`] wraps one TCP connection and offers whole-object
//! convenience calls (`put` / `get` / `delete` / `stat` / `metrics`)
//! plus a streaming [`GatewayClient::get_streamed`] that hands each
//! stripe to a sink as it arrives — the client-side half of the
//! gateway's O(stripe) memory story, and what the load harness uses so
//! measured latency is first-byte-honest.
//!
//! For pipelining (several requests in flight on one socket, responses
//! matched by id) the raw [`GatewayClient::send_request`] /
//! [`GatewayClient::recv_response`] pair exposes the frame layer
//! directly; the loopback tests use it to prove id-based demultiplexing
//! under reordering.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pbrs_obs::trace::TraceCtx;

use crate::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};

/// How much payload one `PUT_DATA` frame carries (well under
/// [`MAX_FRAME`]; several frames keep the gateway's workers busy while
/// the client keeps writing).
pub const PUT_CHUNK: usize = 1 << 20;

/// Errors a gateway round trip can produce.
#[derive(Debug)]
pub enum GatewayError {
    /// Transport failure (connect, read, write, framing).
    Io(io::Error),
    /// The gateway shed the request at its admission limit; back off and
    /// retry.
    Busy,
    /// The object never existed.
    NotFound,
    /// The object existed and was deleted (typed tombstone).
    Deleted,
    /// The gateway reported a failure executing the request.
    Remote(String),
    /// The gateway answered with a frame that does not fit the exchange.
    Protocol(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::Io(e) => write!(f, "gateway transport error: {e}"),
            GatewayError::Busy => write!(f, "gateway is busy (admission limit); retry later"),
            GatewayError::NotFound => write!(f, "object not found"),
            GatewayError::Deleted => write!(f, "object was deleted"),
            GatewayError::Remote(m) => write!(f, "gateway error: {m}"),
            GatewayError::Protocol(m) => write!(f, "gateway protocol violation: {m}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GatewayError {
    fn from(e: io::Error) -> Self {
        GatewayError::Io(e)
    }
}

/// Result alias for gateway calls.
pub type Result<T> = std::result::Result<T, GatewayError>;

/// The flight recorder's retained traces, as served by the `TRACES`
/// verb: the same trees rendered two ways.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traces {
    /// Structured JSON (`{"traces":[...]}`): trace ids, retention
    /// reasons, and every span with its parent/process/tags.
    pub json: String,
    /// Chrome `trace_event` JSON array — load it in Perfetto or
    /// `chrome://tracing` to see the trees on a timeline.
    pub chrome: String,
}

/// A whole object fetched by [`GatewayClient::get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetObject {
    /// The payload.
    pub data: Vec<u8>,
    /// How many of its stripes the gateway served degraded.
    pub degraded_stripes: u64,
}

/// One blocking connection to a gateway; see the [module docs](self).
#[derive(Debug)]
pub struct GatewayClient {
    stream: TcpStream,
    next_id: u64,
}

impl GatewayClient {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(GatewayClient { stream, next_id: 1 })
    }

    /// Sets (or clears) the read timeout used while waiting for
    /// responses.
    ///
    /// # Errors
    ///
    /// The OS rejecting the timeout.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// A request id unused on this connection.
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one request frame under `req_id` without waiting — the raw
    /// building block for pipelining.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_request(&mut self, req_id: u64, request: &Request) -> Result<()> {
        write_frame(&mut self.stream, req_id, &request.encode())?;
        Ok(())
    }

    /// Receives the next response frame, whatever request it belongs to.
    ///
    /// # Errors
    ///
    /// Transport failures and undecodable bodies.
    pub fn recv_response(&mut self) -> Result<(u64, Response)> {
        let (id, body) = read_frame(&mut self.stream)?;
        let resp = Response::decode(&body)?;
        Ok((id, resp))
    }

    /// Stores `data` under `name`, streaming it in [`PUT_CHUNK`] pieces.
    /// Returns `(len, stripes)` as committed.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Busy`] when shed, [`GatewayError::Remote`] for
    /// store-side failures (e.g. the name exists), transport errors.
    pub fn put(&mut self, name: &str, data: &[u8]) -> Result<(u64, u64)> {
        let id = self.fresh_id();
        // Buffer the small frames; one flush before waiting.
        let mut w = BufWriter::new(&self.stream);
        write_frame(
            &mut w,
            id,
            &Request::PutStart { name: name.into() }.encode(),
        )?;
        for piece in data.chunks(PUT_CHUNK.min(MAX_FRAME)) {
            write_frame(
                &mut w,
                id,
                &Request::PutData {
                    data: piece.to_vec(),
                }
                .encode(),
            )?;
        }
        write_frame(&mut w, id, &Request::PutEnd.encode())?;
        w.flush()?;
        drop(w);
        match self.expect_for(id)? {
            Response::Created { len, stripes } => Ok((len, stripes)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches `name` whole.
    ///
    /// # Errors
    ///
    /// [`GatewayError::NotFound`] / [`GatewayError::Deleted`] for the
    /// typed misses, [`GatewayError::Busy`], remote and transport errors.
    pub fn get(&mut self, name: &str) -> Result<GetObject> {
        let mut data = Vec::new();
        let degraded_stripes = self.get_streamed(name, |stripe| data.extend_from_slice(stripe))?;
        Ok(GetObject {
            data,
            degraded_stripes,
        })
    }

    /// Fetches `name`, handing each stripe's payload to `sink` as it
    /// arrives; client memory stays O(stripe). Returns how many stripes
    /// were served degraded.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::get`].
    pub fn get_streamed(&mut self, name: &str, sink: impl FnMut(&[u8])) -> Result<u64> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Get { name: name.into() })?;
        recv_get_stream(&self.stream, id, sink)
    }

    /// Tombstones `name`; returns how many payload bytes it held.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::get`].
    pub fn delete(&mut self, name: &str) -> Result<u64> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Delete { name: name.into() })?;
        match self.expect_for(id)? {
            Response::DeletedOk { len } => Ok(len),
            other => Err(unexpected(other)),
        }
    }

    /// Looks up `name`'s metadata: `(len, stripes)`.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::get`].
    pub fn stat(&mut self, name: &str) -> Result<(u64, u64)> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Stat { name: name.into() })?;
        match self.expect_for(id)? {
            Response::Stat { len, stripes } => Ok((len, stripes)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the gateway's counters as JSON.
    ///
    /// # Errors
    ///
    /// Transport and remote errors.
    pub fn metrics(&mut self) -> Result<String> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Metrics)?;
        match self.expect_for(id)? {
            Response::Metrics { json } => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the gateway's Prometheus text exposition (gateway counters
    /// and latency histograms plus the store's).
    ///
    /// # Errors
    ///
    /// Transport and remote errors.
    pub fn prometheus(&mut self) -> Result<String> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Prometheus)?;
        match self.expect_for(id)? {
            Response::Prometheus { text } => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the gateway's retained traces (JSON + Chrome trace_event).
    /// The gateway pulls chunkd-recorded spans over the wire first, so
    /// the trees span every process that touched the op.
    ///
    /// # Errors
    ///
    /// Transport and remote errors.
    pub fn traces(&mut self) -> Result<Traces> {
        let id = self.fresh_id();
        self.send_request(id, &Request::Traces)?;
        match self.expect_for(id)? {
            Response::Traces { json, chrome } => Ok(Traces { json, chrome }),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches `name` whole under a caller-supplied trace context: the
    /// gateway's root span adopts `ctx`'s trace id and parents on its
    /// span id, so the op joins a trace the caller began elsewhere.
    ///
    /// # Errors
    ///
    /// As [`GatewayClient::get`].
    pub fn get_traced(&mut self, name: &str, ctx: TraceCtx) -> Result<GetObject> {
        let id = self.fresh_id();
        self.send_request(
            id,
            &Request::Traced {
                ctx,
                inner: Box::new(Request::Get { name: name.into() }),
            },
        )?;
        let mut data = Vec::new();
        let degraded_stripes = recv_get_stream(&self.stream, id, |stripe| {
            data.extend_from_slice(stripe);
        })?;
        Ok(GetObject {
            data,
            degraded_stripes,
        })
    }

    /// Receives the response for `id`, folding the shared status frames
    /// into typed errors.
    fn expect_for(&mut self, id: u64) -> Result<Response> {
        let mut reader = BufReader::new(&self.stream);
        recv_for(&mut reader, id)
    }
}

/// Receives one GET's response stream (header, stripes, end marker) for
/// request `id`, feeding each stripe payload to `sink`. Returns the
/// degraded-stripe count.
fn recv_get_stream(stream: &TcpStream, id: u64, mut sink: impl FnMut(&[u8])) -> Result<u64> {
    let mut reader = BufReader::new(stream);
    let header = recv_for(&mut reader, id)?;
    let (mut remaining, _stripes) = match header {
        Response::ObjectHeader { len, stripes } => (len, stripes),
        Response::NotFound => return Err(GatewayError::NotFound),
        Response::Deleted => return Err(GatewayError::Deleted),
        Response::Busy => return Err(GatewayError::Busy),
        Response::Err { message } => return Err(GatewayError::Remote(message)),
        other => return Err(unexpected(other)),
    };
    loop {
        match recv_for(&mut reader, id)? {
            Response::Data { data } => {
                remaining = remaining.saturating_sub(data.len() as u64);
                sink(&data);
            }
            Response::ObjectEnd { degraded_stripes } => {
                if remaining != 0 {
                    return Err(GatewayError::Protocol(format!(
                        "stream ended {remaining} bytes short"
                    )));
                }
                return Ok(degraded_stripes);
            }
            Response::Err { message } => return Err(GatewayError::Remote(message)),
            other => return Err(unexpected(other)),
        }
    }
}

/// Receives frames until one tagged `id` arrives (frames for other ids
/// are a protocol error for this sequential helper), mapping the shared
/// failure statuses to typed errors.
fn recv_for(reader: &mut impl Read, id: u64) -> Result<Response> {
    let (got, body) = read_frame(reader)?;
    if got != id {
        return Err(GatewayError::Protocol(format!(
            "response for request {got} while waiting on {id}"
        )));
    }
    match Response::decode(&body)? {
        Response::NotFound => Err(GatewayError::NotFound),
        Response::Deleted => Err(GatewayError::Deleted),
        Response::Busy => Err(GatewayError::Busy),
        resp => Ok(resp),
    }
}

fn unexpected(resp: Response) -> GatewayError {
    match resp {
        Response::Err { message } => GatewayError::Remote(message),
        other => GatewayError::Protocol(format!("unexpected response {other:?}")),
    }
}
