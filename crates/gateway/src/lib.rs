//! `pbrs-gateway`: the cluster's streaming object front door.
//!
//! The chunk services (`pbrs-chunkd`) and the placement-aware store
//! (`pbrs-store`) give the repo durable, repairable erasure-coded
//! storage; this crate puts a network API in front of it. Clients speak a
//! small length-prefixed RPC vocabulary (`PUT` / `GET` / `DELETE` /
//! `STAT` / `METRICS`) over plain TCP, and the gateway streams objects
//! **stripe by stripe** in both directions: an object of any size crosses
//! the gateway holding only O(stripe) memory per request.
//!
//! The serving core is a hand-rolled readiness-based reactor
//! ([`server`]): one thread multiplexing non-blocking sockets with
//! `poll(2)` (via the [`poll`] shim — the workspace's only FFI), a small
//! worker pool doing the erasure coding and chunk I/O, and explicit
//! backpressure at three levels (admission `BUSY` shed, per-connection
//! stripe budgets, TCP pushback on writes). Degraded reads — the paper's
//! central cost — are first-class: every `GET` reports how many of its
//! stripes were rebuilt from survivors, and [`metrics`] aggregates the
//! degraded-read share the load harness plots.
//!
//! Module map:
//!
//! * [`protocol`] — frame format, request/response vocabulary, and the
//!   incremental [`protocol::FrameDecoder`].
//! * [`poll`] — the `poll(2)` FFI shim (the crate's only `unsafe`).
//! * [`server`] — the reactor, worker pool, and backpressure machinery.
//! * [`client`] — a small blocking client, with pipelining-capable raw
//!   frame access for tests and load generators.
//! * [`metrics`] — gateway-side counters, serialised by the `METRICS`
//!   RPC.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod server;

pub use client::{GatewayClient, GatewayError, GetObject};
pub use metrics::{GatewayLatencySnapshot, GatewayMetrics, OpClass};
pub use protocol::{Request, Response, FRAME_OVERHEAD, MAX_FRAME};
pub use server::{Gateway, GatewayConfig};
