//! A thin shim over `poll(2)` — the one place the workspace talks to libc
//! directly.
//!
//! The build environment has no `libc` crate, but `std` already links the
//! platform C library, so declaring the one symbol we need is enough. The
//! reactor deliberately uses `poll` rather than `epoll`: the fd sets here
//! are rebuilt per iteration anyway (interest flips with backpressure),
//! portability is wider, and at the connection counts the bench drives
//! (hundreds, not hundreds of thousands) the O(n) scan is noise next to
//! erasure decoding.
//!
//! Everything above this module is safe code; the `unsafe` below is the
//! single FFI call, sound because the slice pointer/length pair handed to
//! the kernel is exactly a live `&mut [PollFd]` and `PollFd` is
//! `#[repr(C)]`-identical to `struct pollfd`.

use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;

/// Readable data (or a closed peer, together with [`POLLHUP`]).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, only returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled, only returned in `revents`).
pub const POLLHUP: i16 = 0x010;
/// The fd is invalid (always polled, only returned in `revents`).
pub const POLLNVAL: i16 = 0x020;

/// Mirror of C `struct pollfd`; layout-compatible by `#[repr(C)]` and the
/// use of the exact C field types.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Events of interest ([`POLLIN`] | [`POLLOUT`]).
    pub events: c_short,
    /// Events that occurred, filled by the kernel.
    pub revents: c_short,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask`'s bits came back in `revents`.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the fd is readable, errored, or hung up — every condition
    /// a read-interested caller must react to (errors surface on the
    /// subsequent `read`, which is how the reactor learns the cause).
    pub fn readable_or_dead(&self) -> bool {
        self.has(POLLIN | POLLERR | POLLHUP | POLLNVAL)
    }

    /// Whether the fd is writable or errored.
    pub fn writable_or_dead(&self) -> bool {
        self.has(POLLOUT | POLLERR | POLLHUP | POLLNVAL)
    }
}

// SAFETY: the declaration matches the libc prototype: `PollFd` is
// `#[repr(C)]` with the field layout of `struct pollfd`, and `nfds_t`
// is `unsigned long` on the only targets this builds for (Linux).
unsafe extern "C" {
    /// `poll(2)`.
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Waits for readiness on `fds`, at most `timeout_ms` (negative = forever).
/// Returns how many entries have non-zero `revents`. `Interrupted` (EINTR)
/// is swallowed and reported as zero ready fds — callers loop anyway.
///
/// # Errors
///
/// The OS error from `poll(2)` for anything other than EINTR.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a live, exclusively borrowed slice of #[repr(C)]
    // pollfd-identical structs; the kernel writes only within it.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readability() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing to read yet.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].has(POLLIN));
        // One byte makes it readable.
        a.write_all(&[7]).unwrap();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].has(POLLIN));
        assert!(fds[0].readable_or_dead());
    }

    #[test]
    fn poll_reports_writability_and_hangup() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].has(POLLOUT));
        // Peer gone: POLLHUP (possibly with POLLOUT) comes back.
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable_or_dead());
    }
}
