//! The gateway itself: a readiness-based reactor front-end over a
//! [`BlockStore`].
//!
//! # Architecture
//!
//! One **reactor thread** owns the listening socket, every client
//! connection (all non-blocking), and a wake pipe; it multiplexes with
//! `poll(2)` via [`crate::poll`]. The reactor never performs store I/O —
//! chunk reads, erasure coding, and manifest commits happen on a small
//! **worker pool**, fed jobs through a channel and answering through a
//! completion queue plus one byte on the wake pipe.
//!
//! A request's expensive state ([`ObjectWriter`] / [`ObjectReader`]) is
//! *moved into* each job and handed back with the completion. That makes
//! the per-request stripe order trivially sequential (a stripe job owns
//! the reader; the next stripe cannot start until it returns) while
//! different requests — even on one connection — proceed in parallel on
//! different workers and interleave their response frames by request id.
//!
//! # Backpressure, explicitly
//!
//! Three independent controls, all visible in [`GatewayMetrics`]:
//!
//! * **Admission** ([`GatewayConfig::max_inflight_requests`]): a global
//!   cap on worker-backed requests (PUT/GET/DELETE) in flight. At the cap
//!   the gateway answers [`Response::Busy`] immediately — load is shed
//!   loudly, not queued silently.
//! * **Per-connection GET budget** ([`GatewayConfig::in_flight_stripes`]):
//!   the next stripe-read job is scheduled only while the connection's
//!   output queue is shorter than the budget. A slow reader therefore
//!   stalls its own GET at O(`in_flight_stripes` × stripe) buffered bytes
//!   — never the whole object, never other connections.
//! * **Per-connection PUT budget** (same knob): when a connection has
//!   more buffered `PUT_DATA` frames than the budget, the reactor stops
//!   polling it for readability; TCP flow control pushes back on the
//!   client until the workers catch up.
//!
//! [`GatewayConfig::max_connections`] bounds the connection table;
//! connections beyond it are accepted and immediately closed (counted as
//! `connections_refused`).

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pbrs_obs::trace::{self, RootFlags, ScopedCtx, SpanBuilder, TraceCtx, Tracer, TracerConfig};
use pbrs_obs::{prom, EventJournal, EventKind, Stage, StageTimes};
use pbrs_store::{BlockStore, ObjectReader, ObjectWriter, StoreError};

use crate::metrics::{GatewayMetrics, OpClass};
use crate::poll::{poll_fds, PollFd, POLLERR, POLLIN, POLLNVAL, POLLOUT};
use crate::protocol::{frame_header, FrameDecoder, Request, Response, FRAME_OVERHEAD};

/// Tuning knobs of one gateway; see the [module docs](self) for how each
/// participates in backpressure.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Store worker threads (encode/decode + chunk I/O). Default 4.
    pub workers: usize,
    /// Connection-table cap; connections beyond it are accepted and
    /// immediately closed. Default 1024.
    pub max_connections: usize,
    /// Per-connection stripe budget: a GET schedules its next stripe only
    /// while the connection's output queue is shorter than this, and a
    /// connection buffering more `PUT_DATA` frames than this stops being
    /// read. Default 4.
    pub in_flight_stripes: usize,
    /// Global cap on admitted worker-backed requests (PUT/GET/DELETE);
    /// above it new ones are shed with `BUSY`. Default 256.
    pub max_inflight_requests: usize,
    /// Per-stripe queue deadline for GETs: a stripe job that has already
    /// waited longer than this when a worker dequeues it is answered with
    /// a typed `deadline exceeded` error (counted as `requests_expired`)
    /// instead of doing store I/O the client has stopped waiting for.
    /// `None` (the default) never expires anything.
    pub request_deadline: Option<Duration>,
    /// Causal tracing: when on (the default), every admitted PUT/GET/
    /// DELETE gets a root trace context, spans are threaded through the
    /// store and its chunk backends, and the tail-sampling flight
    /// recorder retains slow/degraded/hedged/errored trees (plus 1-in-N
    /// healthy ops), served by the `TRACES` verb.
    pub tracing: bool,
    /// Flight-recorder tuning (ring size, retained-tree budget, per-op
    /// slow thresholds, healthy sampling); `enabled` is overridden by
    /// [`GatewayConfig::tracing`].
    pub tracer: TracerConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            max_connections: 1024,
            in_flight_stripes: 4,
            max_inflight_requests: 256,
            request_deadline: None,
            tracing: true,
            tracer: TracerConfig::default(),
        }
    }
}

/// A running gateway; dropping (or [`Gateway::shutdown`]) stops the
/// reactor, closes every connection, and joins all threads.
pub struct Gateway {
    addr: SocketAddr,
    metrics: Arc<GatewayMetrics>,
    tracer: Arc<Tracer>,
    stop: Arc<AtomicBool>,
    wake: UnixStream,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `addr` and serves `store` until shutdown. Pass port 0 to let
    /// the OS pick; read it back with [`Gateway::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket setup failures (bind, nonblocking, wake-pipe creation).
    pub fn serve(
        store: Arc<BlockStore>,
        addr: impl ToSocketAddrs,
        config: GatewayConfig,
    ) -> io::Result<Gateway> {
        let config = GatewayConfig {
            workers: config.workers.max(1),
            max_connections: config.max_connections.max(1),
            in_flight_stripes: config.in_flight_stripes.max(1),
            max_inflight_requests: config.max_inflight_requests.max(1),
            request_deadline: config.request_deadline,
            tracing: config.tracing,
            tracer: config.tracer,
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let tracer = Arc::new(Tracer::new(
            format!("gateway:{local}"),
            TracerConfig {
                enabled: config.tracing,
                ..config.tracer.clone()
            },
        ));
        // The store shares the gateway's tracer: its read_stripe/chunk_io
        // spans land in the same ring the flight recorder gathers from.
        store.set_tracer(Arc::clone(&tracer));
        let journal = Arc::new(EventJournal::new(256));
        // Wake pipe: workers (and shutdown) write one byte, the reactor's
        // poll set includes the read end.
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;

        let metrics = Arc::new(GatewayMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let jobs = Arc::new(Mutex::new(job_rx));
        let done = Arc::new(Mutex::new(VecDeque::new()));

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let store = Arc::clone(&store);
            let jobs = Arc::clone(&jobs);
            let done = Arc::clone(&done);
            let wake = wake_tx.try_clone()?;
            let metrics = Arc::clone(&metrics);
            let deadline = config.request_deadline;
            workers.push(
                thread::Builder::new()
                    .name(format!("gw-worker-{i}"))
                    .spawn(move || worker_loop(&store, &jobs, &done, wake, deadline, &metrics))?,
            );
        }

        let reactor_stop = Arc::clone(&stop);
        let reactor_metrics = Arc::clone(&metrics);
        let reactor_tracer = Arc::clone(&tracer);
        let reactor = thread::Builder::new()
            .name("gw-reactor".into())
            .spawn(move || {
                Reactor {
                    store,
                    listener,
                    wake_rx,
                    conns: HashMap::new(),
                    next_conn: 0,
                    inflight: 0,
                    config,
                    metrics: reactor_metrics,
                    tracer: reactor_tracer,
                    journal,
                    job_tx,
                    done,
                    stop: reactor_stop,
                    read_buf: vec![0u8; 64 * 1024],
                }
                .run();
            })?;

        Ok(Gateway {
            addr: local,
            metrics,
            tracer,
            stop,
            wake: wake_tx,
            reactor: Some(reactor),
            workers,
        })
    }

    /// Handle on the flight recorder (useful in-process; remote callers
    /// use the `TRACES` verb).
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Handle on the live counters.
    pub fn metrics(&self) -> Arc<GatewayMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops the reactor, closes every connection, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // SeqCst: once-per-shutdown flag, nowhere near a hot path; the
        // strongest order keeps it trivially correct against the
        // reactor's loop check.
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&self.wake).write(&[1]);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        // The reactor owned the job sender; once it is gone the workers
        // drain what is queued and exit.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway").field("addr", &self.addr).finish()
    }
}

// ---------------------------------------------------------------------------
// Jobs and completions
// ---------------------------------------------------------------------------

/// Work shipped to the pool. Jobs carry the request's writer/reader by
/// value; the matching [`Done`] carries it back.
enum Job {
    OpenWriter {
        conn: u64,
        req: u64,
        name: String,
        ctx: Option<TraceCtx>,
    },
    WriteData {
        conn: u64,
        req: u64,
        writer: ObjectWriter,
        data: Vec<u8>,
        ctx: Option<TraceCtx>,
    },
    FinishWriter {
        conn: u64,
        req: u64,
        writer: ObjectWriter,
        ctx: Option<TraceCtx>,
    },
    /// Fire-and-forget cleanup of an abandoned ingest (client vanished).
    AbortWriter { writer: ObjectWriter },
    ReadStripe {
        conn: u64,
        req: u64,
        reader: ObjectReader,
        stripe: u64,
        buf: Vec<u8>,
        /// When the reactor enqueued the job; the worker turns the gap
        /// into [`Stage::Queue`] time.
        queued: Instant,
        ctx: Option<TraceCtx>,
    },
    Delete {
        conn: u64,
        req: u64,
        name: String,
        ctx: Option<TraceCtx>,
    },
}

impl Job {
    /// The op's root trace context, scoped onto the worker thread for the
    /// job's duration so store spans parent under the gateway root.
    fn ctx(&self) -> Option<TraceCtx> {
        match self {
            Job::OpenWriter { ctx, .. }
            | Job::WriteData { ctx, .. }
            | Job::FinishWriter { ctx, .. }
            | Job::ReadStripe { ctx, .. }
            | Job::Delete { ctx, .. } => *ctx,
            Job::AbortWriter { .. } => None,
        }
    }
}

enum Done {
    WriterOpened {
        conn: u64,
        req: u64,
        result: Result<ObjectWriter, Response>,
    },
    /// `Err` means the write failed and the writer was aborted.
    DataWritten {
        conn: u64,
        req: u64,
        result: Result<ObjectWriter, Response>,
    },
    WriterFinished {
        conn: u64,
        req: u64,
        result: Response,
    },
    StripeRead {
        conn: u64,
        req: u64,
        reader: ObjectReader,
        /// The error side carries whether the failure was a queue-deadline
        /// expiry (for the root's `deadline_expired` retention reason).
        result: Result<(Vec<u8>, bool), (Response, bool)>,
        /// Queue wait + the store's erasure/chunk-io split for this stripe.
        times: StageTimes,
    },
    Deleted {
        conn: u64,
        req: u64,
        result: Response,
    },
}

fn store_error_response(e: &StoreError) -> Response {
    match e {
        StoreError::ObjectNotFound { .. } => Response::NotFound,
        StoreError::ObjectDeleted { .. } => Response::Deleted,
        other => Response::Err {
            message: other.to_string(),
        },
    }
}

fn worker_loop(
    store: &Arc<BlockStore>,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done: &Mutex<VecDeque<Done>>,
    mut wake: UnixStream,
    deadline: Option<Duration>,
    metrics: &GatewayMetrics,
) {
    loop {
        // Hold the lock only to receive; blocking in `recv` under the lock
        // is fine — peers block on the same job stream anyway.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        // Trace context by value from the reactor, scoped onto this thread
        // so the store (and its backends) see it via `current_ctx`.
        let _trace_scope = ScopedCtx::enter(job.ctx());
        let completion = match job {
            Job::OpenWriter {
                conn, req, name, ..
            } => Some(Done::WriterOpened {
                conn,
                req,
                result: store.writer(&name).map_err(|e| store_error_response(&e)),
            }),
            Job::WriteData {
                conn,
                req,
                mut writer,
                data,
                ..
            } => {
                let result = match writer.write(&data) {
                    Ok(()) => Ok(writer),
                    Err(e) => {
                        let resp = store_error_response(&e);
                        writer.abort();
                        Err(resp)
                    }
                };
                Some(Done::DataWritten { conn, req, result })
            }
            Job::FinishWriter {
                conn, req, writer, ..
            } => {
                let result = match writer.finish() {
                    Ok(info) => Response::Created {
                        len: info.len,
                        stripes: info.stripes,
                    },
                    Err(e) => store_error_response(&e),
                };
                Some(Done::WriterFinished { conn, req, result })
            }
            Job::AbortWriter { writer } => {
                writer.abort();
                None
            }
            Job::ReadStripe {
                conn,
                req,
                mut reader,
                stripe,
                mut buf,
                queued,
                ..
            } => {
                let mut times = StageTimes::new();
                let waited = queued.elapsed();
                times.add_duration(Stage::Queue, waited);
                let result = match deadline {
                    // The client's patience ran out while the job sat in
                    // the queue: answer without touching the store.
                    Some(d) if waited > d => {
                        GatewayMetrics::add(&metrics.requests_expired, 1);
                        Err((
                            Response::Err {
                                message: format!(
                                    "deadline exceeded: stripe {stripe} queued {waited:?} \
                                     against a {d:?} budget"
                                ),
                            },
                            true,
                        ))
                    }
                    _ => match reader.read_stripe(stripe, &mut buf) {
                        Ok((payload, degraded)) => {
                            buf.truncate(payload);
                            // The store attributed this stripe's
                            // chunk-io/erasure time.
                            times.merge(&reader.last_stage_times());
                            Ok((buf, degraded))
                        }
                        Err(e) => Err((store_error_response(&e), false)),
                    },
                };
                Some(Done::StripeRead {
                    conn,
                    req,
                    reader,
                    result,
                    times,
                })
            }
            Job::Delete {
                conn, req, name, ..
            } => {
                let result = match store.delete(&name) {
                    Ok(info) => Response::DeletedOk { len: info.len },
                    Err(e) => store_error_response(&e),
                };
                Some(Done::Deleted { conn, req, result })
            }
        };
        if let Some(c) = completion {
            if let Ok(mut q) = done.lock() {
                q.push_back(c);
            }
            // A full wake pipe means the reactor already has wakeups
            // pending — dropping this byte is harmless.
            let _ = wake.write(&[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// Completion record attached to an op's *final* response frame: when the
/// frame's last byte reaches the socket, the reactor records the op's
/// end-to-end latency (and, for GETs, its stage breakdown) into
/// [`GatewayMetrics`]. Measuring at last-byte-written makes the server's
/// histograms directly comparable to a client's request-to-last-byte
/// observations.
struct FinRecord {
    class: OpClass,
    started: Instant,
    /// Queue/erasure/chunk-io accumulated so far; `Some` only for GETs.
    /// Flush time is added from the connection's accumulator at
    /// completion.
    stages: Option<StageTimes>,
    /// The op's root span, finished at last-byte-written so the trace
    /// duration matches the latency the histogram records.
    root: Option<SpanBuilder>,
    flags: RootFlags,
}

/// One frame queued for writing; `off` progresses across header + body.
struct OutFrame {
    header: [u8; FRAME_OVERHEAD],
    body: Vec<u8>,
    off: usize,
    /// Request id, for attributing socket-write time to a GET's
    /// [`Stage::Flush`].
    req: u64,
    /// Write time on this frame counts toward `req`'s flush accumulator.
    track_flush: bool,
    /// Present on an op's final frame; see [`FinRecord`].
    fin: Option<FinRecord>,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: VecDeque<OutFrame>,
    requests: HashMap<u64, ReqState>,
    /// Nanoseconds spent writing each tracked request's frames to the
    /// socket, folded into [`Stage::Flush`] when the final frame lands.
    /// Nanosecond resolution matters: one nonblocking write into a ready
    /// kernel buffer is routinely sub-microsecond, so truncating each
    /// write to whole microseconds would erase the stage entirely for
    /// frames flushed in many small writes.
    flush_ns: HashMap<u64, u64>,
    dead: bool,
}

enum ReqState {
    Put(PutState),
    Get(GetState),
    /// DELETE is a single job; the state marks the id as in flight and
    /// remembers when it was admitted.
    Delete {
        started: Instant,
        root: Option<SpanBuilder>,
    },
}

struct PutState {
    /// Present while idle at the reactor; `None` while a worker owns it
    /// (or before `OpenWriter` completes).
    writer: Option<ObjectWriter>,
    /// A job for this request is at the pool.
    busy: bool,
    /// `PUT_DATA` payloads not yet shipped to a worker.
    queue: VecDeque<Vec<u8>>,
    ended: bool,
    /// First failure; the (single) response is deferred to `PUT_END` so
    /// the exchange stays one-response-per-request.
    failed: Option<Response>,
    /// When the PUT was admitted.
    started: Instant,
    /// Root span minted at admission; workers parent store spans under
    /// it via the trace context carried in each job.
    root: Option<SpanBuilder>,
}

struct GetState {
    /// Present while idle at the reactor; `None` while a worker owns it.
    reader: Option<ObjectReader>,
    next_stripe: u64,
    stripes: u64,
    degraded: u64,
    /// When the GET was admitted.
    started: Instant,
    /// Accumulated queue/erasure/chunk-io time across the stream.
    stages: StageTimes,
    /// Root span minted at admission.
    root: Option<SpanBuilder>,
}

struct Reactor {
    store: Arc<BlockStore>,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Admitted worker-backed requests (PUT/GET/DELETE) gateway-wide.
    inflight: usize,
    config: GatewayConfig,
    metrics: Arc<GatewayMetrics>,
    /// Flight recorder; shared with the store (and, transitively, its
    /// remote chunk backends) so every layer's spans land in one ring.
    tracer: Arc<Tracer>,
    /// Operational event log; overflow is exported as
    /// `pbrs_journal_events_dropped_total{component="gateway"}`.
    journal: Arc<EventJournal>,
    job_tx: mpsc::Sender<Job>,
    done: Arc<Mutex<VecDeque<Done>>>,
    stop: Arc<AtomicBool>,
    read_buf: Vec<u8>,
}

impl Reactor {
    fn run(mut self) {
        // SeqCst: pairs with the store in stop_and_join; one load per
        // poll wakeup, so the cost is irrelevant.
        while !self.stop.load(Ordering::SeqCst) {
            self.drain_completions();

            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
            let mut order = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if !self.read_paused(conn) {
                    events |= POLLIN;
                }
                if !conn.out.is_empty() {
                    events |= POLLOUT;
                }
                order.push(id);
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            }

            if poll_fds(&mut fds, 500).is_err() {
                // EBADF etc. — a conn died mid-build; reap and retry.
                self.reap_dead();
                continue;
            }

            if fds[0].readable_or_dead() {
                let mut sink = [0u8; 256];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            self.drain_completions();
            if fds[1].readable_or_dead() {
                self.accept_ready();
            }
            for (i, &id) in order.iter().enumerate() {
                let f = fds[i + 2];
                if f.has(POLLERR | POLLNVAL) {
                    if let Some(c) = self.conns.get_mut(&id) {
                        c.dead = true;
                    }
                    continue;
                }
                if f.readable_or_dead() {
                    self.read_conn(id);
                }
            }
            // Opportunistic write pass: covers both POLLOUT-ready sockets
            // and responses freshly queued this iteration.
            self.flush_and_pump_all();
            self.reap_dead();
        }
        // Shutdown: abandoned ingests are aborted by ObjectWriter::drop as
        // the connection table goes away.
        self.conns.clear();
    }

    fn read_paused(&self, conn: &Conn) -> bool {
        conn.requests.values().any(
            |r| matches!(r, ReqState::Put(p) if p.queue.len() >= self.config.in_flight_stripes),
        )
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.config.max_connections {
                        GatewayMetrics::add(&self.metrics.connections_refused, 1);
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(),
                            out: VecDeque::new(),
                            requests: HashMap::new(),
                            flush_ns: HashMap::new(),
                            dead: false,
                        },
                    );
                    GatewayMetrics::add(&self.metrics.connections_accepted, 1);
                    GatewayMetrics::add(&self.metrics.open_connections, 1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn read_conn(&mut self, id: u64) {
        let mut frames = Vec::new();
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut total = 0usize;
            loop {
                match conn.stream.read(&mut self.read_buf) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        GatewayMetrics::add(&self.metrics.bytes_in, n as u64);
                        conn.decoder.feed(&self.read_buf[..n]);
                        total += n;
                        // Fairness cap: don't let one firehose starve the
                        // rest of the poll set.
                        if total >= 256 * 1024 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            loop {
                match conn.decoder.next_frame() {
                    Ok(Some(frame)) => frames.push(frame),
                    Ok(None) => break,
                    Err(_) => {
                        // Unframeable garbage: no way to resynchronise.
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        for (req_id, body) in frames {
            self.handle_frame(id, req_id, body);
        }
    }

    /// Mints the root span for an admitted op when tracing is on,
    /// adopting a client-supplied context when one rode in on a
    /// `TRACED` wrapper.
    fn mint_root(&self, op: &str, object: &str, supplied: Option<TraceCtx>) -> Option<SpanBuilder> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let mut root = self.tracer.root_span(op, supplied);
        root.tag("object", object);
        Some(root)
    }

    fn handle_frame(&mut self, conn_id: u64, req_id: u64, body: Vec<u8>) {
        let request = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                GatewayMetrics::add(&self.metrics.request_errors, 1);
                self.journal.push(
                    EventKind::Error,
                    format!("bad request on conn {conn_id}: {e}"),
                );
                self.push_response(
                    conn_id,
                    req_id,
                    &Response::Err {
                        message: format!("bad request: {e}"),
                    },
                );
                return;
            }
        };
        // Peel the optional trace wrapper: the inner request proceeds
        // exactly as if sent bare, but its root adopts the client's ids.
        let (supplied, request) = match request {
            Request::Traced { ctx, inner } => (Some(ctx), *inner),
            other => (None, other),
        };
        match request {
            Request::Traced { .. } => {
                // Decode rejects nesting, so the peel above is exhaustive.
                GatewayMetrics::add(&self.metrics.request_errors, 1);
                self.push_response(
                    conn_id,
                    req_id,
                    &Response::Err {
                        message: "trace wrapper must be outermost".into(),
                    },
                );
            }
            Request::Metrics => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                let json = self
                    .metrics
                    .snapshot()
                    .to_json_v2(&self.metrics.latency(), &self.store.latency().to_json());
                self.push_response(conn_id, req_id, &Response::Metrics { json });
            }
            Request::Prometheus => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                let mut text = String::new();
                self.metrics.snapshot().write_prometheus(&mut text);
                // Exemplars from the flight recorder link each op class's
                // slow buckets to a concrete retained trace id.
                let exemplars = crate::metrics::OpExemplars::from_retained(&self.tracer.retained());
                self.metrics
                    .latency()
                    .write_prometheus_with_exemplars(&mut text, &exemplars);
                self.store.metrics().write_prometheus(&mut text);
                self.store.latency().write_prometheus(&mut text);
                pbrs_store::health::write_prometheus(&self.store.health_snapshot(), &mut text);
                prom::type_line(&mut text, "pbrs_journal_events_dropped_total", "counter");
                prom::sample(
                    &mut text,
                    "pbrs_journal_events_dropped_total",
                    &[("component", "gateway")],
                    self.journal.dropped() as f64,
                );
                prom::sample(
                    &mut text,
                    "pbrs_journal_events_dropped_total",
                    &[("component", "store")],
                    self.store.journal_dropped() as f64,
                );
                self.push_response(conn_id, req_id, &Response::Prometheus { text });
            }
            Request::Traces => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                // Pull chunkd-local spans over the wire and graft them
                // into their retained trees before rendering, so one
                // response shows the whole cross-process tree.
                self.tracer.attach_spans(self.store.drain_remote_spans());
                let retained = self.tracer.retained();
                let resp = Response::Traces {
                    json: trace::retained_to_json(&retained),
                    chrome: trace::retained_to_chrome(&retained),
                };
                self.push_response(conn_id, req_id, &resp);
            }
            Request::Stat { name } => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                let resp = match self.store.lookup(&name) {
                    Ok(info) => Response::Stat {
                        len: info.len,
                        stripes: info.stripes,
                    },
                    Err(e) => {
                        GatewayMetrics::add(&self.metrics.request_errors, 1);
                        store_error_response(&e)
                    }
                };
                self.push_response(conn_id, req_id, &resp);
            }
            Request::PutStart { name } => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                if !self.admit(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                let root = self.mint_root("put", &name, supplied);
                let ctx = root.as_ref().map(SpanBuilder::ctx);
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                conn.requests.insert(
                    req_id,
                    ReqState::Put(PutState {
                        writer: None,
                        busy: true,
                        queue: VecDeque::new(),
                        ended: false,
                        failed: None,
                        started: Instant::now(),
                        root,
                    }),
                );
                self.inflight += 1;
                let _ = self.job_tx.send(Job::OpenWriter {
                    conn: conn_id,
                    req: req_id,
                    name,
                    ctx,
                });
            }
            Request::PutData { data } => {
                // Data for an id we are not ingesting (shed with BUSY, or
                // already failed and responded) is silently discarded: the
                // single response for that id has been or will be sent.
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                if let Some(ReqState::Put(p)) = conn.requests.get_mut(&req_id) {
                    p.queue.push_back(data);
                    self.pump_put(conn_id, req_id);
                }
            }
            Request::PutEnd => {
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                if let Some(ReqState::Put(p)) = conn.requests.get_mut(&req_id) {
                    p.ended = true;
                    self.pump_put(conn_id, req_id);
                }
            }
            Request::Get { name } => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                if !self.admit(conn_id, req_id) {
                    return;
                }
                // Opening a reader is manifest-only (no disk I/O): inline.
                let started = Instant::now();
                match self.store.reader(&name) {
                    Ok(reader) => {
                        GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                        let root = self.mint_root("get", &name, supplied);
                        let info = reader.info();
                        let Some(conn) = self.conns.get_mut(&conn_id) else {
                            return;
                        };
                        conn.requests.insert(
                            req_id,
                            ReqState::Get(GetState {
                                reader: Some(reader),
                                next_stripe: 0,
                                stripes: info.stripes,
                                degraded: 0,
                                started,
                                stages: StageTimes::new(),
                                root,
                            }),
                        );
                        self.inflight += 1;
                        self.push_tracked(
                            conn_id,
                            req_id,
                            &Response::ObjectHeader {
                                len: info.len,
                                stripes: info.stripes,
                            },
                            None,
                        );
                        self.pump_get(conn_id, req_id);
                    }
                    Err(e) => {
                        GatewayMetrics::add(&self.metrics.request_errors, 1);
                        let resp = store_error_response(&e);
                        self.push_response(conn_id, req_id, &resp);
                    }
                }
            }
            Request::Delete { name } => {
                if self.duplicate_id(conn_id, req_id) {
                    return;
                }
                if !self.admit(conn_id, req_id) {
                    return;
                }
                GatewayMetrics::add(&self.metrics.requests_admitted, 1);
                let root = self.mint_root("delete", &name, supplied);
                let ctx = root.as_ref().map(SpanBuilder::ctx);
                let Some(conn) = self.conns.get_mut(&conn_id) else {
                    return;
                };
                conn.requests.insert(
                    req_id,
                    ReqState::Delete {
                        started: Instant::now(),
                        root,
                    },
                );
                self.inflight += 1;
                let _ = self.job_tx.send(Job::Delete {
                    conn: conn_id,
                    req: req_id,
                    name,
                    ctx,
                });
            }
        }
    }

    /// `true` (and responds with an error) when `req_id` is already in
    /// flight on this connection.
    fn duplicate_id(&mut self, conn_id: u64, req_id: u64) -> bool {
        let dup = self
            .conns
            .get(&conn_id)
            .is_some_and(|c| c.requests.contains_key(&req_id));
        if dup {
            GatewayMetrics::add(&self.metrics.request_errors, 1);
            self.push_response(
                conn_id,
                req_id,
                &Response::Err {
                    message: format!("request id {req_id} already in flight"),
                },
            );
        }
        dup
    }

    /// Admission gate; `false` means the request was shed with `BUSY`.
    fn admit(&mut self, conn_id: u64, req_id: u64) -> bool {
        if self.inflight >= self.config.max_inflight_requests {
            GatewayMetrics::add(&self.metrics.requests_shed, 1);
            self.push_response(conn_id, req_id, &Response::Busy);
            return false;
        }
        true
    }

    /// Drives one PUT forward: ship the next queued payload (or the
    /// finish) to a worker, or deliver a deferred failure at `PUT_END`.
    fn pump_put(&mut self, conn_id: u64, req_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let Some(ReqState::Put(p)) = conn.requests.get_mut(&req_id) else {
            return;
        };
        if p.busy {
            return;
        }
        if p.failed.is_some() {
            // The ingest already failed; drop buffered data and respond
            // once the client says END.
            p.queue.clear();
            if p.ended {
                if let Some(w) = p.writer.take() {
                    let _ = self.job_tx.send(Job::AbortWriter { writer: w });
                }
                // pbrs-lint: allow(panic-hygiene) -- this branch is only entered when failed was populated
                let resp = p.failed.take().expect("checked");
                let root = p.root.take();
                conn.requests.remove(&req_id);
                self.inflight -= 1;
                GatewayMetrics::add(&self.metrics.request_errors, 1);
                self.push_response(conn_id, req_id, &resp);
                if let Some(root) = root {
                    root.finish_root(
                        &self.tracer,
                        RootFlags {
                            error: true,
                            ..RootFlags::default()
                        },
                    );
                }
            }
            return;
        }
        let ctx = p.root.as_ref().map(SpanBuilder::ctx);
        if let Some(data) = p.queue.pop_front() {
            // pbrs-lint: allow(panic-hygiene) -- state machine invariant: writer is parked whenever not busy/failed
            let writer = p.writer.take().expect("writer idle when not busy/failed");
            p.busy = true;
            let _ = self.job_tx.send(Job::WriteData {
                conn: conn_id,
                req: req_id,
                writer,
                data,
                ctx,
            });
        } else if p.ended {
            // pbrs-lint: allow(panic-hygiene) -- state machine invariant: writer is parked whenever not busy/failed
            let writer = p.writer.take().expect("writer idle when not busy/failed");
            p.busy = true;
            let _ = self.job_tx.send(Job::FinishWriter {
                conn: conn_id,
                req: req_id,
                writer,
                ctx,
            });
        }
    }

    /// Drives one GET forward: finish the stream, or schedule the next
    /// stripe read if the connection's output budget allows.
    fn pump_get(&mut self, conn_id: u64, req_id: u64) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let Some(ReqState::Get(g)) = conn.requests.get_mut(&req_id) else {
            return;
        };
        if g.reader.is_none() {
            return; // a stripe job is in flight
        }
        if g.next_stripe == g.stripes {
            let degraded_stripes = g.degraded;
            let fin = FinRecord {
                class: if degraded_stripes > 0 {
                    OpClass::GetDegraded
                } else {
                    OpClass::GetHealthy
                },
                started: g.started,
                stages: Some(g.stages),
                root: g.root.take(),
                flags: RootFlags {
                    degraded: degraded_stripes > 0,
                    ..RootFlags::default()
                },
            };
            conn.requests.remove(&req_id);
            self.inflight -= 1;
            self.push_tracked(
                conn_id,
                req_id,
                &Response::ObjectEnd { degraded_stripes },
                Some(fin),
            );
            return;
        }
        if conn.out.len() >= self.config.in_flight_stripes {
            return; // resumed by flush_and_pump_all once the queue drains
        }
        // pbrs-lint: allow(panic-hygiene) -- reader presence was checked by the guard above
        let reader = g.reader.take().expect("checked");
        let buf = vec![0u8; reader.stripe_len()];
        let stripe = g.next_stripe;
        let ctx = g.root.as_ref().map(SpanBuilder::ctx);
        let _ = self.job_tx.send(Job::ReadStripe {
            conn: conn_id,
            req: req_id,
            reader,
            stripe,
            buf,
            queued: Instant::now(),
            ctx,
        });
    }

    fn drain_completions(&mut self) {
        loop {
            let next = match self.done.lock() {
                Ok(mut q) => q.pop_front(),
                Err(_) => return,
            };
            let Some(done) = next else { return };
            self.handle_done(done);
        }
    }

    fn handle_done(&mut self, done: Done) {
        match done {
            Done::WriterOpened { conn, req, result } => {
                if !self.conns.contains_key(&conn) {
                    if let Ok(w) = result {
                        let _ = self.job_tx.send(Job::AbortWriter { writer: w });
                    }
                    self.inflight -= 1;
                    return;
                }
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                let Some(ReqState::Put(p)) = c.requests.get_mut(&req) else {
                    return;
                };
                p.busy = false;
                match result {
                    Ok(w) => p.writer = Some(w),
                    Err(resp) => p.failed = Some(resp),
                }
                self.pump_put(conn, req);
            }
            Done::DataWritten { conn, req, result } => {
                if !self.conns.contains_key(&conn) {
                    if let Ok(w) = result {
                        let _ = self.job_tx.send(Job::AbortWriter { writer: w });
                    }
                    self.inflight -= 1;
                    return;
                }
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                let Some(ReqState::Put(p)) = c.requests.get_mut(&req) else {
                    return;
                };
                p.busy = false;
                match result {
                    Ok(w) => p.writer = Some(w),
                    Err(resp) => p.failed = Some(resp), // writer already aborted
                }
                self.pump_put(conn, req);
            }
            Done::WriterFinished { conn, req, result } => {
                if !self.conns.contains_key(&conn) {
                    self.inflight -= 1;
                    return;
                }
                let mut started = None;
                let mut root = None;
                if let Some(c) = self.conns.get_mut(&conn) {
                    if let Some(ReqState::Put(mut p)) = c.requests.remove(&req) {
                        started = Some(p.started);
                        root = p.root.take();
                    }
                }
                self.inflight -= 1;
                let fin = if matches!(result, Response::Created { .. }) {
                    GatewayMetrics::add(&self.metrics.objects_put, 1);
                    started.map(|started| FinRecord {
                        class: OpClass::Put,
                        started,
                        stages: None,
                        root: root.take(),
                        flags: RootFlags::default(),
                    })
                } else {
                    GatewayMetrics::add(&self.metrics.request_errors, 1);
                    None
                };
                if let Some(root) = root {
                    // Error path: the fin record did not adopt the root.
                    root.finish_root(
                        &self.tracer,
                        RootFlags {
                            error: true,
                            ..RootFlags::default()
                        },
                    );
                }
                self.push_tracked(conn, req, &result, fin);
            }
            Done::StripeRead {
                conn,
                req,
                reader,
                result,
                times,
            } => {
                if !self.conns.contains_key(&conn) {
                    drop(reader);
                    self.inflight -= 1;
                    return;
                }
                match result {
                    Ok((data, degraded)) => {
                        GatewayMetrics::add(&self.metrics.stripes_served, 1);
                        if degraded {
                            GatewayMetrics::add(&self.metrics.degraded_stripes_served, 1);
                        }
                        let Some(c) = self.conns.get_mut(&conn) else {
                            return;
                        };
                        let Some(ReqState::Get(g)) = c.requests.get_mut(&req) else {
                            return;
                        };
                        g.reader = Some(reader);
                        g.next_stripe += 1;
                        if degraded {
                            g.degraded += 1;
                        }
                        g.stages.merge(&times);
                        self.push_tracked(conn, req, &Response::Data { data }, None);
                        self.pump_get(conn, req);
                    }
                    Err((resp, expired)) => {
                        // Mid-stream failure: the header is out; terminate
                        // the stream with an error frame.
                        let mut root = None;
                        if let Some(c) = self.conns.get_mut(&conn) {
                            if let Some(ReqState::Get(mut g)) = c.requests.remove(&req) {
                                root = g.root.take();
                            }
                            c.flush_ns.remove(&req);
                        }
                        self.inflight -= 1;
                        GatewayMetrics::add(&self.metrics.request_errors, 1);
                        self.push_response(conn, req, &resp);
                        if let Some(root) = root {
                            root.finish_root(
                                &self.tracer,
                                RootFlags {
                                    error: true,
                                    expired,
                                    ..RootFlags::default()
                                },
                            );
                        }
                    }
                }
            }
            Done::Deleted { conn, req, result } => {
                if !self.conns.contains_key(&conn) {
                    self.inflight -= 1;
                    return;
                }
                let mut started = None;
                let mut root = None;
                if let Some(c) = self.conns.get_mut(&conn) {
                    if let Some(ReqState::Delete {
                        started: s,
                        root: r,
                    }) = c.requests.remove(&req)
                    {
                        started = Some(s);
                        root = r;
                    }
                }
                self.inflight -= 1;
                let fin = if matches!(result, Response::DeletedOk { .. }) {
                    GatewayMetrics::add(&self.metrics.objects_deleted, 1);
                    started.map(|started| FinRecord {
                        class: OpClass::Delete,
                        started,
                        stages: None,
                        root: root.take(),
                        flags: RootFlags::default(),
                    })
                } else {
                    GatewayMetrics::add(&self.metrics.request_errors, 1);
                    None
                };
                if let Some(root) = root {
                    // Error path: the fin record did not adopt the root.
                    root.finish_root(
                        &self.tracer,
                        RootFlags {
                            error: true,
                            ..RootFlags::default()
                        },
                    );
                }
                self.push_tracked(conn, req, &result, fin);
            }
        }
    }

    fn push_response(&mut self, conn_id: u64, req_id: u64, resp: &Response) {
        self.enqueue_frame(conn_id, req_id, resp, false, None);
    }

    /// Queues a frame whose socket-write time counts toward the request's
    /// [`Stage::Flush`] accumulator, optionally carrying the op's
    /// completion record (see [`FinRecord`]).
    fn push_tracked(&mut self, conn_id: u64, req_id: u64, resp: &Response, fin: Option<FinRecord>) {
        self.enqueue_frame(conn_id, req_id, resp, true, fin);
    }

    fn enqueue_frame(
        &mut self,
        conn_id: u64,
        req_id: u64,
        resp: &Response,
        track_flush: bool,
        fin: Option<FinRecord>,
    ) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let body = resp.encode();
        conn.out.push_back(OutFrame {
            header: frame_header(req_id, body.len()),
            body,
            off: 0,
            req: req_id,
            track_flush,
            fin,
        });
    }

    /// Writes every connection's pending output as far as the sockets
    /// allow, then re-pumps GETs whose budget freed up.
    fn flush_and_pump_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let below_budget = {
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.dead {
                    continue;
                }
                flush_conn(conn, &self.metrics, &self.tracer);
                !conn.dead && conn.out.len() < self.config.in_flight_stripes
            };
            if below_budget {
                let reqs: Vec<u64> = self
                    .conns
                    .get(&id)
                    .map(|c| {
                        c.requests
                            .iter()
                            .filter(|(_, s)| matches!(s, ReqState::Get(_)))
                            .map(|(&r, _)| r)
                            .collect()
                    })
                    .unwrap_or_default();
                for req in reqs {
                    self.pump_get(id, req);
                }
            }
        }
        // Pumping may have queued ObjectEnd frames on empty queues; give
        // them one immediate write attempt instead of waiting a poll turn.
        let ids: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dead && !c.out.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                flush_conn(conn, &self.metrics, &self.tracer);
            }
        }
    }

    fn reap_dead(&mut self) {
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead)
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            GatewayMetrics::sub(&self.metrics.open_connections, 1);
            for (_, state) in conn.requests.drain() {
                match state {
                    ReqState::Put(p) => {
                        if p.busy {
                            // The worker owns the writer; the orphaned
                            // completion decrements inflight and aborts.
                        } else {
                            if let Some(w) = p.writer {
                                let _ = self.job_tx.send(Job::AbortWriter { writer: w });
                            }
                            self.inflight -= 1;
                        }
                    }
                    ReqState::Get(g) => {
                        if g.reader.is_some() {
                            self.inflight -= 1;
                        }
                        // else: the orphaned StripeRead completion
                        // decrements inflight and drops the reader.
                    }
                    ReqState::Delete { .. } => {
                        // The orphaned Deleted completion decrements.
                    }
                }
            }
        }
    }
}

/// Writes the front of `conn.out` as far as the socket allows, vectoring
/// Rounds an op's accumulated flush nanoseconds to the microseconds the
/// stage histograms record. Rounding (rather than truncating) here means
/// at most half a microsecond of error per *op*; truncating each write
/// individually used to lose the whole stage for ops flushed in many
/// sub-microsecond writes.
fn flush_micros(ns: u64) -> u64 {
    (ns + 500) / 1_000
}

/// header+body into one syscall while the header is unsent. Tracked
/// frames accumulate their write time into the request's flush budget;
/// when a frame carrying a [`FinRecord`] finishes, the op's latency (and
/// GET stage breakdown) is recorded — i.e. at last-byte-written.
fn flush_conn(conn: &mut Conn, metrics: &GatewayMetrics, tracer: &Tracer) {
    while let Some(front) = conn.out.front_mut() {
        let header_len = front.header.len();
        let write_start = front.track_flush.then(Instant::now);
        let attempt = if front.off < header_len {
            let slices = [
                IoSlice::new(&front.header[front.off..]),
                IoSlice::new(&front.body),
            ];
            conn.stream.write_vectored(&slices)
        } else {
            conn.stream.write(&front.body[front.off - header_len..])
        };
        if let Some(t0) = write_start {
            *conn.flush_ns.entry(front.req).or_insert(0) += t0.elapsed().as_nanos() as u64;
        }
        match attempt {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                GatewayMetrics::add(&metrics.bytes_out, n as u64);
                front.off += n;
                if front.off == header_len + front.body.len() {
                    // pbrs-lint: allow(panic-hygiene) -- out was just peeked non-empty by the enclosing loop
                    let done = conn.out.pop_front().expect("front exists");
                    if let Some(fin) = done.fin {
                        let flush = conn.flush_ns.remove(&done.req).unwrap_or(0);
                        metrics
                            .op_latency(fin.class)
                            .record_duration(fin.started.elapsed());
                        if let Some(root) = fin.root {
                            // Finished here — at last-byte-written — so the
                            // trace's root duration matches the histogram.
                            root.finish_root(tracer, fin.flags);
                        }
                        if let Some(mut stages) = fin.stages {
                            stages.add(Stage::Flush, flush_micros(flush));
                            let set = match fin.class {
                                OpClass::GetDegraded => &metrics.degraded_get_stages,
                                _ => &metrics.healthy_get_stages,
                            };
                            set.record_times(&stages);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

#[cfg(test)]
mod flush_resolution_tests {
    use super::flush_micros;

    /// Regression: the flush accumulator used to truncate each write to
    /// whole microseconds, so an op flushed in many sub-microsecond
    /// writes recorded zero flush time. Accumulating nanoseconds and
    /// converting once keeps the stage visible.
    #[test]
    fn many_submicrosecond_writes_survive_conversion() {
        // 100 writes of 800 ns each: per-write µs truncation records 0;
        // nanosecond accumulation records 80 µs.
        let total_ns: u64 = (0..100).map(|_| 800u64).sum();
        assert_eq!(flush_micros(total_ns), 80);
        let truncated_per_write: u64 = (0..100).map(|_| 800u64 / 1_000).sum();
        assert_eq!(truncated_per_write, 0, "the old scheme lost the stage");
    }

    #[test]
    fn conversion_rounds_half_up() {
        assert_eq!(flush_micros(0), 0);
        assert_eq!(flush_micros(499), 0);
        assert_eq!(flush_micros(500), 1);
        assert_eq!(flush_micros(1_499), 1);
        assert_eq!(flush_micros(1_500), 2);
    }
}
