//! The gateway wire protocol: length-prefixed, request-id-tagged frames
//! carrying a small streaming RPC vocabulary.
//!
//! # Framing
//!
//! ```text
//! | len: u32 LE | req_id: u64 LE | body: len bytes |
//! ```
//!
//! `req_id` is chosen by the client, must be unique among its in-flight
//! requests, and tags **every** frame of a request and of its response(s).
//! Requests on one connection may be pipelined and their response frames
//! interleaved — a client matches by id, never by arrival order. `len`
//! counts only the body and is capped at [`MAX_FRAME`].
//!
//! # Requests (first body byte = opcode)
//!
//! * `PUT_START name` — open an object for streaming ingest; followed by
//!   any number of `PUT_DATA` frames (raw payload bytes, any sizes — the
//!   server re-stripes) and one `PUT_END`, all under the same `req_id`.
//!   The single response ([`Response::Created`]) comes after `PUT_END`.
//! * `GET name` — the response is a *stream* under the request's id:
//!   [`Response::ObjectHeader`] (total length), one [`Response::Data`] per
//!   stripe in order, then [`Response::ObjectEnd`] carrying how many of
//!   those stripes were served degraded. A large object never exists in
//!   gateway memory at once — each `Data` frame is one stripe.
//! * `DELETE name`, `STAT name`, `METRICS` — single-frame round trips.
//!
//! # Statuses
//!
//! [`Response::NotFound`] and [`Response::Deleted`] mirror the store's
//! typed miss distinction ("never existed" vs "you deleted it");
//! [`Response::Busy`] is the explicit backpressure shed — the gateway is
//! at its admission limit and the client should back off and retry, the
//! request had no effect.
//!
//! The [`FrameDecoder`] is incremental (feed arbitrary byte arrivals,
//! frames fall out) because the reactor reads whatever the socket has;
//! the blocking [`read_frame`]/[`write_frame`] helpers serve the client
//! side and tests.

use std::io::{self, Read, Write};

use pbrs_obs::trace::TraceCtx;

/// Upper bound on one frame's body. Large enough for any stripe the store
/// ships (chunk sizes are ≤ a few MiB), small enough that a hostile
/// length prefix cannot size a huge allocation.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per message (length prefix + request id).
pub const FRAME_OVERHEAD: usize = 12;

/// Longest accepted object name on the wire.
pub const MAX_NAME: usize = 4096;

fn invalid(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

// Request opcodes.
const OP_PUT_START: u8 = 0x01;
const OP_PUT_DATA: u8 = 0x02;
const OP_PUT_END: u8 = 0x03;
const OP_GET: u8 = 0x04;
const OP_DELETE: u8 = 0x05;
const OP_STAT: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_PROMETHEUS: u8 = 0x08;
const OP_TRACES: u8 = 0x09;
const OP_TRACED: u8 = 0x0A;

// Response status bytes.
const ST_CREATED: u8 = 0x81;
const ST_OBJ_HEADER: u8 = 0x82;
const ST_DATA: u8 = 0x83;
const ST_OBJ_END: u8 = 0x84;
const ST_STAT: u8 = 0x85;
const ST_METRICS: u8 = 0x86;
const ST_DELETED_OK: u8 = 0x87;
const ST_NOT_FOUND: u8 = 0x90;
const ST_DELETED: u8 = 0x91;
const ST_BUSY: u8 = 0x92;
const ST_ERR: u8 = 0x93;
const ST_PROMETHEUS: u8 = 0x94;
const ST_TRACES: u8 = 0x95;

/// One client→gateway message (the body of one request frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open object `name` for streaming ingest.
    PutStart {
        /// The object name to create.
        name: String,
    },
    /// Payload bytes of the open ingest under this request id.
    PutData {
        /// Raw object bytes (any size; the server re-stripes).
        data: Vec<u8>,
    },
    /// Ingest complete; commit and respond.
    PutEnd,
    /// Stream object `name` back stripe by stripe.
    Get {
        /// The object name to read.
        name: String,
    },
    /// Tombstone object `name`.
    Delete {
        /// The object name to delete.
        name: String,
    },
    /// Metadata of object `name`.
    Stat {
        /// The object name to look up.
        name: String,
    },
    /// The gateway's live counters.
    Metrics,
    /// Prometheus text exposition of gateway + store metrics.
    Prometheus,
    /// The flight recorder's retained trace trees, as JSON and Chrome
    /// trace_event text.
    Traces,
    /// An op under a client-supplied trace context: the gateway adopts
    /// `ctx` as the root's parent instead of minting a fresh trace id,
    /// so gateway spans join the caller's distributed trace. Strictly
    /// outermost and optional — a frame without it is the legacy wire,
    /// and an un-upgraded peer never sees this opcode.
    Traced {
        /// The caller's trace id and the span to parent the op under.
        ctx: TraceCtx,
        /// The wrapped request (never another `Traced`).
        inner: Box<Request>,
    },
}

impl Request {
    /// Serializes the request body (no framing).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::PutStart { name } => encode_named(OP_PUT_START, name),
            Request::PutData { data } => {
                let mut body = Vec::with_capacity(1 + data.len());
                body.push(OP_PUT_DATA);
                body.extend_from_slice(data);
                body
            }
            Request::PutEnd => vec![OP_PUT_END],
            Request::Get { name } => encode_named(OP_GET, name),
            Request::Delete { name } => encode_named(OP_DELETE, name),
            Request::Stat { name } => encode_named(OP_STAT, name),
            Request::Metrics => vec![OP_METRICS],
            Request::Prometheus => vec![OP_PROMETHEUS],
            Request::Traces => vec![OP_TRACES],
            Request::Traced { ctx, inner } => {
                let payload = inner.encode();
                let mut body = Vec::with_capacity(17 + payload.len());
                body.push(OP_TRACED);
                body.extend_from_slice(&ctx.trace.as_u64().to_le_bytes());
                body.extend_from_slice(&ctx.span.as_u64().to_le_bytes());
                body.extend_from_slice(&payload);
                body
            }
        }
    }

    /// Parses one request body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for an empty body, unknown opcode, or malformed
    /// fields — the gateway answers those with [`Response::Err`] rather
    /// than dropping the connection.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let (&op, rest) = body.split_first().ok_or_else(|| invalid("empty request"))?;
        match op {
            OP_PUT_START => Ok(Request::PutStart {
                name: decode_name(rest)?,
            }),
            OP_PUT_DATA => Ok(Request::PutData {
                data: rest.to_vec(),
            }),
            OP_PUT_END => {
                expect_empty(rest)?;
                Ok(Request::PutEnd)
            }
            OP_GET => Ok(Request::Get {
                name: decode_name(rest)?,
            }),
            OP_DELETE => Ok(Request::Delete {
                name: decode_name(rest)?,
            }),
            OP_STAT => Ok(Request::Stat {
                name: decode_name(rest)?,
            }),
            OP_METRICS => {
                expect_empty(rest)?;
                Ok(Request::Metrics)
            }
            OP_PROMETHEUS => {
                expect_empty(rest)?;
                Ok(Request::Prometheus)
            }
            OP_TRACES => {
                expect_empty(rest)?;
                Ok(Request::Traces)
            }
            OP_TRACED => {
                if rest.len() < 16 {
                    return Err(invalid("truncated trace context"));
                }
                let ctx = TraceCtx::from_raw(le_u64(&rest[0..8]), le_u64(&rest[8..16]))
                    .ok_or_else(|| invalid("zero trace or span id"))?;
                let inner = Request::decode(&rest[16..])?;
                if matches!(inner, Request::Traced { .. }) {
                    return Err(invalid("trace wrapper must be outermost"));
                }
                Ok(Request::Traced {
                    ctx,
                    inner: Box::new(inner),
                })
            }
            other => Err(invalid(format!("unknown request opcode {other:#04x}"))),
        }
    }
}

/// One gateway→client message (the body of one response frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A `PUT` committed durably.
    Created {
        /// Total payload bytes stored.
        len: u64,
        /// Stripes written.
        stripes: u64,
    },
    /// First frame of a `GET` stream: the object's geometry.
    ObjectHeader {
        /// Total payload bytes about to be streamed.
        len: u64,
        /// `Data` frames that will follow.
        stripes: u64,
    },
    /// One stripe's payload of a `GET` stream (in stripe order).
    Data {
        /// The stripe's payload bytes (the last stripe may be short).
        data: Vec<u8>,
    },
    /// Last frame of a `GET` stream.
    ObjectEnd {
        /// How many of the streamed stripes were served degraded.
        degraded_stripes: u64,
    },
    /// `STAT` result.
    Stat {
        /// Total payload bytes.
        len: u64,
        /// Stripe count.
        stripes: u64,
    },
    /// `METRICS` result: a JSON object, schema documented in
    /// `OPERATIONS.md`.
    Metrics {
        /// UTF-8 JSON text.
        json: String,
    },
    /// `PROMETHEUS` result: text exposition format 0.0.4.
    Prometheus {
        /// UTF-8 exposition text.
        text: String,
    },
    /// `TRACES` result: the retained trace trees, rendered twice.
    Traces {
        /// Structured JSON (schema documented in `OPERATIONS.md`).
        json: String,
        /// Chrome trace_event JSON, loadable in Perfetto as-is.
        chrome: String,
    },
    /// A `DELETE` landed; the tombstone is durable.
    DeletedOk {
        /// Payload bytes the deleted object held.
        len: u64,
    },
    /// The name never existed.
    NotFound,
    /// The name existed and was deleted — distinguishable from
    /// [`Response::NotFound`] because the store keeps typed tombstones.
    Deleted,
    /// Backpressure shed: the gateway is at its admission limit. The
    /// request was not started; retry after backing off.
    Busy,
    /// Any other failure, with the store/gateway error text.
    Err {
        /// Human-readable cause.
        message: String,
    },
}

impl Response {
    /// Serializes the response body (no framing).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Created { len, stripes } => encode_two(ST_CREATED, *len, *stripes),
            Response::ObjectHeader { len, stripes } => encode_two(ST_OBJ_HEADER, *len, *stripes),
            Response::Data { data } => {
                let mut body = Vec::with_capacity(1 + data.len());
                body.push(ST_DATA);
                body.extend_from_slice(data);
                body
            }
            Response::ObjectEnd { degraded_stripes } => {
                let mut body = vec![ST_OBJ_END];
                body.extend_from_slice(&degraded_stripes.to_le_bytes());
                body
            }
            Response::Stat { len, stripes } => encode_two(ST_STAT, *len, *stripes),
            Response::Metrics { json } => {
                let mut body = vec![ST_METRICS];
                body.extend_from_slice(json.as_bytes());
                body
            }
            Response::Prometheus { text } => {
                let mut body = vec![ST_PROMETHEUS];
                body.extend_from_slice(text.as_bytes());
                body
            }
            Response::Traces { json, chrome } => {
                let mut body = Vec::with_capacity(5 + json.len() + chrome.len());
                body.push(ST_TRACES);
                // pbrs-lint: allow(wire-protocol) -- lossless: both renderings fit one frame (the retained buffer is bounded) and write_frame rejects over-cap bodies
                body.extend_from_slice(&(json.len() as u32).to_le_bytes());
                body.extend_from_slice(json.as_bytes());
                body.extend_from_slice(chrome.as_bytes());
                body
            }
            Response::DeletedOk { len } => {
                let mut body = vec![ST_DELETED_OK];
                body.extend_from_slice(&len.to_le_bytes());
                body
            }
            Response::NotFound => vec![ST_NOT_FOUND],
            Response::Deleted => vec![ST_DELETED],
            Response::Busy => vec![ST_BUSY],
            Response::Err { message } => {
                let mut body = vec![ST_ERR];
                body.extend_from_slice(message.as_bytes());
                body
            }
        }
    }

    /// Parses one response body.
    ///
    /// # Errors
    ///
    /// `InvalidData` for an empty body, unknown status, or malformed
    /// fields.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let (&st, rest) = body
            .split_first()
            .ok_or_else(|| invalid("empty response"))?;
        match st {
            ST_CREATED => decode_two(rest).map(|(len, stripes)| Response::Created { len, stripes }),
            ST_OBJ_HEADER => {
                decode_two(rest).map(|(len, stripes)| Response::ObjectHeader { len, stripes })
            }
            ST_DATA => Ok(Response::Data {
                data: rest.to_vec(),
            }),
            ST_OBJ_END => Ok(Response::ObjectEnd {
                degraded_stripes: decode_u64(rest)?,
            }),
            ST_STAT => decode_two(rest).map(|(len, stripes)| Response::Stat { len, stripes }),
            ST_METRICS => Ok(Response::Metrics {
                json: String::from_utf8(rest.to_vec())
                    .map_err(|_| invalid("metrics payload is not UTF-8"))?,
            }),
            ST_PROMETHEUS => Ok(Response::Prometheus {
                text: String::from_utf8(rest.to_vec())
                    .map_err(|_| invalid("prometheus payload is not UTF-8"))?,
            }),
            ST_TRACES => {
                if rest.len() < 4 {
                    return Err(invalid("truncated traces payload"));
                }
                let json_len = le_u32(&rest[0..4]) as usize;
                let rest = &rest[4..];
                if rest.len() < json_len {
                    return Err(invalid("traces json length exceeds payload"));
                }
                let json = String::from_utf8(rest[..json_len].to_vec())
                    .map_err(|_| invalid("traces json is not UTF-8"))?;
                let chrome = String::from_utf8(rest[json_len..].to_vec())
                    .map_err(|_| invalid("traces chrome payload is not UTF-8"))?;
                Ok(Response::Traces { json, chrome })
            }
            ST_DELETED_OK => Ok(Response::DeletedOk {
                len: decode_u64(rest)?,
            }),
            ST_NOT_FOUND => {
                expect_empty(rest)?;
                Ok(Response::NotFound)
            }
            ST_DELETED => {
                expect_empty(rest)?;
                Ok(Response::Deleted)
            }
            ST_BUSY => {
                expect_empty(rest)?;
                Ok(Response::Busy)
            }
            ST_ERR => Ok(Response::Err {
                message: String::from_utf8_lossy(rest).into_owned(),
            }),
            other => Err(invalid(format!("unknown response status {other:#04x}"))),
        }
    }
}

fn encode_named(op: u8, name: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + name.len());
    body.push(op);
    body.extend_from_slice(name.as_bytes());
    body
}

fn decode_name(rest: &[u8]) -> io::Result<String> {
    if rest.is_empty() {
        return Err(invalid("empty object name"));
    }
    if rest.len() > MAX_NAME {
        return Err(invalid(format!("object name of {} bytes", rest.len())));
    }
    String::from_utf8(rest.to_vec()).map_err(|_| invalid("object name is not UTF-8"))
}

fn encode_two(st: u8, a: u64, b: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(17);
    body.push(st);
    body.extend_from_slice(&a.to_le_bytes());
    body.extend_from_slice(&b.to_le_bytes());
    body
}

fn decode_two(rest: &[u8]) -> io::Result<(u64, u64)> {
    if rest.len() != 16 {
        return Err(invalid(format!("expected 16 bytes, got {}", rest.len())));
    }
    Ok((le_u64(&rest[0..8]), le_u64(&rest[8..16])))
}

fn decode_u64(rest: &[u8]) -> io::Result<u64> {
    if rest.len() != 8 {
        return Err(invalid(format!("expected 8 bytes, got {}", rest.len())));
    }
    Ok(le_u64(rest))
}

/// Little-endian u32 from the first 4 bytes of `b`. Callers pass slices
/// whose length was already checked (fixed-size frame headers).
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian u64 from the first 8 bytes of `b`; same contract as
/// [`le_u32`].
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn expect_empty(rest: &[u8]) -> io::Result<()> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(invalid(format!("{} trailing bytes", rest.len())))
    }
}

/// Incremental frame parser: feed whatever the socket delivered, complete
/// `(req_id, body)` frames fall out. Partial frames are held across calls
/// — this is the reactor's read-side codec, and the fuzz tests' subject.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the buffered length prefix exceeds [`MAX_FRAME`]
    /// — the connection is poisoned and must be closed (resynchronising
    /// inside a byte stream is not possible).
    pub fn next_frame(&mut self) -> io::Result<Option<(u64, Vec<u8>)>> {
        if self.buf.len() < FRAME_OVERHEAD {
            return Ok(None);
        }
        let len = le_u32(&self.buf[0..4]) as usize;
        if len > MAX_FRAME {
            return Err(invalid(format!("frame length {len} exceeds MAX_FRAME")));
        }
        if self.buf.len() < FRAME_OVERHEAD + len {
            return Ok(None);
        }
        let req_id = le_u64(&self.buf[4..12]);
        let body = self.buf[FRAME_OVERHEAD..FRAME_OVERHEAD + len].to_vec();
        self.buf.drain(..FRAME_OVERHEAD + len);
        Ok(Some((req_id, body)))
    }
}

/// Serializes the framing header for a body of `len` bytes.
pub fn frame_header(req_id: u64, len: usize) -> [u8; FRAME_OVERHEAD] {
    let mut header = [0u8; FRAME_OVERHEAD];
    // pbrs-lint: allow(wire-protocol) -- lossless: write_frame rejects bodies over MAX_FRAME, and reactor responses are one bounded stream segment or small text
    header[0..4].copy_from_slice(&(len as u32).to_le_bytes());
    header[4..12].copy_from_slice(&req_id.to_le_bytes());
    header
}

/// Blocking frame write (client side and tests): header + body, flushed.
///
/// # Errors
///
/// `InvalidData` when `body` exceeds [`MAX_FRAME`]; otherwise transport
/// errors.
pub fn write_frame(w: &mut impl Write, req_id: u64, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(invalid(format!("frame body of {} bytes", body.len())));
    }
    w.write_all(&frame_header(req_id, body.len()))?;
    w.write_all(body)?;
    w.flush()
}

/// Blocking frame read (client side and tests).
///
/// # Errors
///
/// `InvalidData` for an over-cap length prefix; `UnexpectedEof` and other
/// transport errors pass through.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u64, Vec<u8>)> {
    let mut header = [0u8; FRAME_OVERHEAD];
    r.read_exact(&mut header)?;
    let len = le_u32(&header[0..4]) as usize;
    let req_id = le_u64(&header[4..12]);
    if len > MAX_FRAME {
        return Err(invalid(format!("frame length {len} exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((req_id, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::PutStart {
                name: "obj.bin".into(),
            },
            Request::PutData {
                data: vec![1, 2, 3, 0, 255],
            },
            Request::PutEnd,
            Request::Get { name: "x".into() },
            Request::Delete { name: "y".into() },
            Request::Stat { name: "z".into() },
            Request::Metrics,
            Request::Prometheus,
            Request::Traces,
            Request::Traced {
                ctx: TraceCtx::from_raw(0xDEAD, 0xBEEF).unwrap(),
                inner: Box::new(Request::Get { name: "x".into() }),
            },
        ];
        for case in cases {
            assert_eq!(Request::decode(&case.encode()).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn traced_wrapper_is_strictly_outermost_and_validated() {
        let ctx = TraceCtx::from_raw(1, 2).unwrap();
        let nested = Request::Traced {
            ctx,
            inner: Box::new(Request::Traced {
                ctx,
                inner: Box::new(Request::Metrics),
            }),
        };
        assert!(Request::decode(&nested.encode()).is_err());

        // Zero ids are the wire's "absent" and never valid inside OP_TRACED.
        let mut zero = vec![OP_TRACED];
        zero.extend_from_slice(&0u64.to_le_bytes());
        zero.extend_from_slice(&2u64.to_le_bytes());
        zero.push(OP_METRICS);
        assert!(Request::decode(&zero).is_err());

        // Truncated context header.
        assert!(Request::decode(&[OP_TRACED, 1, 2, 3]).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Created {
                len: 123,
                stripes: 4,
            },
            Response::ObjectHeader {
                len: u64::MAX,
                stripes: 7,
            },
            Response::Data {
                data: vec![9; 1000],
            },
            Response::ObjectEnd {
                degraded_stripes: 2,
            },
            Response::Stat {
                len: 55,
                stripes: 1,
            },
            Response::Metrics {
                json: "{\"a\":1}".into(),
            },
            Response::Prometheus {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Response::Traces {
                json: "{\"traces\":[]}".into(),
                chrome: "{\"traceEvents\":[]}".into(),
            },
            Response::Traces {
                json: String::new(),
                chrome: String::new(),
            },
            Response::DeletedOk { len: 10 },
            Response::NotFound,
            Response::Deleted,
            Response::Busy,
            Response::Err {
                message: "boom".into(),
            },
        ];
        for case in cases {
            assert_eq!(Response::decode(&case.encode()).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn decoder_handles_arbitrary_splits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"first").unwrap();
        write_frame(&mut wire, 2, b"").unwrap();
        write_frame(&mut wire, 3, &vec![7u8; 300]).unwrap();
        // Feed one byte at a time: frames must still come out intact.
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            decoder.feed(&[b]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(
            frames,
            vec![(1, b"first".to_vec()), (2, Vec::new()), (3, vec![7u8; 300])]
        );
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_length() {
        let mut decoder = FrameDecoder::new();
        let mut hostile = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        hostile.extend_from_slice(&0u64.to_le_bytes());
        decoder.feed(&hostile);
        assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn garbage_bodies_are_decode_errors_not_panics() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF, 1, 2]).is_err());
        assert!(Response::decode(&[]).is_err());
        assert!(Response::decode(&[0x55]).is_err());
        // Truncated u64 fields.
        assert!(Response::decode(&[ST_CREATED, 1, 2, 3]).is_err());
        assert!(Response::decode(&[ST_OBJ_END, 1]).is_err());
    }
}
