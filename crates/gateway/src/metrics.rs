//! Gateway-side traffic and admission counters.
//!
//! Everything is a relaxed `AtomicU64` bumped from the reactor thread (and
//! read from anywhere): the counters are monotonic totals, not a
//! consistent snapshot, exactly like the store's [`pbrs_store::metrics`].
//! The `METRICS` RPC serialises a snapshot as JSON (schema documented in
//! `OPERATIONS.md`), so a load harness can separate served stripes from
//! shed requests without scraping logs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one gateway; see the [module docs](self).
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Connections accepted and registered.
    pub connections_accepted: AtomicU64,
    /// Connections refused because `max_connections` was reached
    /// (accepted and immediately closed).
    pub connections_refused: AtomicU64,
    /// Currently registered connections.
    pub open_connections: AtomicU64,
    /// Requests admitted (PUT/GET/DELETE that got past the admission
    /// gate, plus every STAT/METRICS).
    pub requests_admitted: AtomicU64,
    /// Requests shed with `BUSY` at the admission gate.
    pub requests_shed: AtomicU64,
    /// Bytes read off client sockets (framing included).
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets (framing included).
    pub bytes_out: AtomicU64,
    /// Stripes streamed to clients by GETs.
    pub stripes_served: AtomicU64,
    /// Of those, stripes served degraded (rebuilt from survivors).
    pub degraded_stripes_served: AtomicU64,
    /// Objects committed by PUTs.
    pub objects_put: AtomicU64,
    /// Objects tombstoned by DELETEs.
    pub objects_deleted: AtomicU64,
    /// Requests answered with an error response.
    pub request_errors: AtomicU64,
}

/// A point-in-time copy of [`GatewayMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`GatewayMetrics::connections_accepted`].
    pub connections_accepted: u64,
    /// See [`GatewayMetrics::connections_refused`].
    pub connections_refused: u64,
    /// See [`GatewayMetrics::open_connections`].
    pub open_connections: u64,
    /// See [`GatewayMetrics::requests_admitted`].
    pub requests_admitted: u64,
    /// See [`GatewayMetrics::requests_shed`].
    pub requests_shed: u64,
    /// See [`GatewayMetrics::bytes_in`].
    pub bytes_in: u64,
    /// See [`GatewayMetrics::bytes_out`].
    pub bytes_out: u64,
    /// See [`GatewayMetrics::stripes_served`].
    pub stripes_served: u64,
    /// See [`GatewayMetrics::degraded_stripes_served`].
    pub degraded_stripes_served: u64,
    /// See [`GatewayMetrics::objects_put`].
    pub objects_put: u64,
    /// See [`GatewayMetrics::objects_deleted`].
    pub objects_deleted: u64,
    /// See [`GatewayMetrics::request_errors`].
    pub request_errors: u64,
}

impl GatewayMetrics {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            connections_accepted: get(&self.connections_accepted),
            connections_refused: get(&self.connections_refused),
            open_connections: get(&self.open_connections),
            requests_admitted: get(&self.requests_admitted),
            requests_shed: get(&self.requests_shed),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            stripes_served: get(&self.stripes_served),
            degraded_stripes_served: get(&self.degraded_stripes_served),
            objects_put: get(&self.objects_put),
            objects_deleted: get(&self.objects_deleted),
            request_errors: get(&self.request_errors),
        }
    }
}

impl MetricsSnapshot {
    /// The `METRICS` RPC payload: one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections_accepted\":{},\"connections_refused\":{},",
                "\"open_connections\":{},\"requests_admitted\":{},",
                "\"requests_shed\":{},\"bytes_in\":{},\"bytes_out\":{},",
                "\"stripes_served\":{},\"degraded_stripes_served\":{},",
                "\"objects_put\":{},\"objects_deleted\":{},",
                "\"request_errors\":{}}}"
            ),
            self.connections_accepted,
            self.connections_refused,
            self.open_connections,
            self.requests_admitted,
            self.requests_shed,
            self.bytes_in,
            self.bytes_out,
            self.stripes_served,
            self.degraded_stripes_served,
            self.objects_put,
            self.objects_deleted,
            self.request_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json() {
        let m = GatewayMetrics::default();
        GatewayMetrics::add(&m.requests_admitted, 3);
        GatewayMetrics::add(&m.requests_shed, 1);
        GatewayMetrics::add(&m.open_connections, 2);
        GatewayMetrics::sub(&m.open_connections, 1);
        let snap = m.snapshot();
        assert_eq!(snap.requests_admitted, 3);
        assert_eq!(snap.requests_shed, 1);
        assert_eq!(snap.open_connections, 1);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_shed\":1"));
    }
}
