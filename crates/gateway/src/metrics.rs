//! Gateway-side traffic and admission counters, plus per-op latency
//! histograms and per-stage timing of GETs.
//!
//! The counters are relaxed `AtomicU64`s bumped from the reactor thread
//! (and read from anywhere): monotonic totals, not a consistent snapshot,
//! exactly like the store's [`pbrs_store::metrics`]. Latency lives in
//! lock-free [`LatencyHistogram`]s (microsecond samples): one histogram
//! per op class ([`OpClass`]) — with GETs split healthy vs degraded — and
//! one [`StageSet`] per GET path breaking each request into
//! queue/erasure/chunk-io/flush time. The `METRICS` RPC serialises all of
//! it as versioned JSON (`schema_version: 2`, documented in
//! `OPERATIONS.md`), and the `PROMETHEUS` RPC renders the text
//! exposition, so a load harness can cross-check its client-observed
//! percentiles against the server's without scraping logs.

use std::sync::atomic::{AtomicU64, Ordering};

use pbrs_obs::hist::HistogramSnapshot;
use pbrs_obs::trace::RetainedTrace;
use pbrs_obs::{prom, LatencyHistogram, StageSet, StageSnapshot};

/// The op classes the gateway tracks latency for. GETs are split by
/// whether any stripe of the response was served degraded — the paper's
/// healthy-vs-degraded read-latency comparison, measured at the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A committed PUT (PUT_START → Created).
    Put,
    /// A GET whose every stripe was read healthy.
    GetHealthy,
    /// A GET that rebuilt at least one stripe from survivors.
    GetDegraded,
    /// A committed DELETE.
    Delete,
}

/// Live counters of one gateway; see the [module docs](self).
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// End-to-end PUT latency (admission to last response byte written).
    pub put_latency: LatencyHistogram,
    /// End-to-end latency of fully-healthy GETs.
    pub get_healthy_latency: LatencyHistogram,
    /// End-to-end latency of GETs with ≥ 1 degraded stripe.
    pub get_degraded_latency: LatencyHistogram,
    /// End-to-end DELETE latency.
    pub delete_latency: LatencyHistogram,
    /// Stage breakdown (queue/erasure/chunk-io/flush) of healthy GETs.
    pub healthy_get_stages: StageSet,
    /// Stage breakdown of degraded GETs.
    pub degraded_get_stages: StageSet,
    /// Connections accepted and registered.
    pub connections_accepted: AtomicU64,
    /// Connections refused because `max_connections` was reached
    /// (accepted and immediately closed).
    pub connections_refused: AtomicU64,
    /// Currently registered connections.
    pub open_connections: AtomicU64,
    /// Requests admitted (PUT/GET/DELETE that got past the admission
    /// gate, plus every STAT/METRICS).
    pub requests_admitted: AtomicU64,
    /// Requests shed with `BUSY` at the admission gate.
    pub requests_shed: AtomicU64,
    /// Bytes read off client sockets (framing included).
    pub bytes_in: AtomicU64,
    /// Bytes written to client sockets (framing included).
    pub bytes_out: AtomicU64,
    /// Stripes streamed to clients by GETs.
    pub stripes_served: AtomicU64,
    /// Of those, stripes served degraded (rebuilt from survivors).
    pub degraded_stripes_served: AtomicU64,
    /// Objects committed by PUTs.
    pub objects_put: AtomicU64,
    /// Objects tombstoned by DELETEs.
    pub objects_deleted: AtomicU64,
    /// Requests answered with an error response.
    pub request_errors: AtomicU64,
    /// GET stripe jobs abandoned at dequeue because they out-waited
    /// [`request_deadline`](crate::server::GatewayConfig::request_deadline).
    pub requests_expired: AtomicU64,
}

/// A point-in-time copy of [`GatewayMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`GatewayMetrics::connections_accepted`].
    pub connections_accepted: u64,
    /// See [`GatewayMetrics::connections_refused`].
    pub connections_refused: u64,
    /// See [`GatewayMetrics::open_connections`].
    pub open_connections: u64,
    /// See [`GatewayMetrics::requests_admitted`].
    pub requests_admitted: u64,
    /// See [`GatewayMetrics::requests_shed`].
    pub requests_shed: u64,
    /// See [`GatewayMetrics::bytes_in`].
    pub bytes_in: u64,
    /// See [`GatewayMetrics::bytes_out`].
    pub bytes_out: u64,
    /// See [`GatewayMetrics::stripes_served`].
    pub stripes_served: u64,
    /// See [`GatewayMetrics::degraded_stripes_served`].
    pub degraded_stripes_served: u64,
    /// See [`GatewayMetrics::objects_put`].
    pub objects_put: u64,
    /// See [`GatewayMetrics::objects_deleted`].
    pub objects_deleted: u64,
    /// See [`GatewayMetrics::request_errors`].
    pub request_errors: u64,
    /// See [`GatewayMetrics::requests_expired`].
    pub requests_expired: u64,
}

impl GatewayMetrics {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        // Relaxed: metrics cells are independent tallies sampled by
        // snapshot(); they publish no other memory.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        // Relaxed: same contract as `add`.
        counter.fetch_sub(n, Ordering::Relaxed);
    }

    /// The latency histogram of one op class.
    pub fn op_latency(&self, class: OpClass) -> &LatencyHistogram {
        match class {
            OpClass::Put => &self.put_latency,
            OpClass::GetHealthy => &self.get_healthy_latency,
            OpClass::GetDegraded => &self.get_degraded_latency,
            OpClass::Delete => &self.delete_latency,
        }
    }

    /// Snapshot of every latency histogram and stage set.
    pub fn latency(&self) -> GatewayLatencySnapshot {
        GatewayLatencySnapshot {
            put: self.put_latency.snapshot(),
            get_healthy: self.get_healthy_latency.snapshot(),
            get_degraded: self.get_degraded_latency.snapshot(),
            delete: self.delete_latency.snapshot(),
            healthy_get_stages: self.healthy_get_stages.snapshot(),
            degraded_get_stages: self.degraded_get_stages.snapshot(),
        }
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            connections_accepted: get(&self.connections_accepted),
            connections_refused: get(&self.connections_refused),
            open_connections: get(&self.open_connections),
            requests_admitted: get(&self.requests_admitted),
            requests_shed: get(&self.requests_shed),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            stripes_served: get(&self.stripes_served),
            degraded_stripes_served: get(&self.degraded_stripes_served),
            objects_put: get(&self.objects_put),
            objects_deleted: get(&self.objects_deleted),
            request_errors: get(&self.request_errors),
            requests_expired: get(&self.requests_expired),
        }
    }
}

/// Point-in-time copy of the gateway's latency histograms and stage sets.
#[derive(Clone, Debug)]
pub struct GatewayLatencySnapshot {
    /// See [`GatewayMetrics::put_latency`].
    pub put: HistogramSnapshot,
    /// See [`GatewayMetrics::get_healthy_latency`].
    pub get_healthy: HistogramSnapshot,
    /// See [`GatewayMetrics::get_degraded_latency`].
    pub get_degraded: HistogramSnapshot,
    /// See [`GatewayMetrics::delete_latency`].
    pub delete: HistogramSnapshot,
    /// See [`GatewayMetrics::healthy_get_stages`].
    pub healthy_get_stages: StageSnapshot,
    /// See [`GatewayMetrics::degraded_get_stages`].
    pub degraded_get_stages: StageSnapshot,
}

/// One exemplar per op class, harvested from the flight recorder's
/// retained traces: the Prometheus exposition attaches each to the
/// bucket its root duration falls into, linking the histogram's slow
/// tail to a concrete trace id the `TRACES` verb can expand.
#[derive(Clone, Debug, Default)]
pub struct OpExemplars {
    /// Exemplar for the `put` histogram member.
    pub put: Option<prom::Exemplar>,
    /// Exemplar for `get_healthy`.
    pub get_healthy: Option<prom::Exemplar>,
    /// Exemplar for `get_degraded`.
    pub get_degraded: Option<prom::Exemplar>,
    /// Exemplar for `delete`.
    pub delete: Option<prom::Exemplar>,
}

impl OpExemplars {
    /// Picks, per op class, the most recently retained trace (latest
    /// wins — retention order is chronological). A retained `get` counts
    /// as degraded when the recorder kept it for that reason.
    pub fn from_retained(traces: &[RetainedTrace]) -> OpExemplars {
        let mut ex = OpExemplars::default();
        for t in traces {
            let slot = match t.op.as_str() {
                "put" => &mut ex.put,
                "get" if t.reasons.contains(&"degraded") => &mut ex.get_degraded,
                "get" => &mut ex.get_healthy,
                "delete" => &mut ex.delete,
                _ => continue,
            };
            *slot = Some(prom::Exemplar {
                trace_id: t.trace.to_string(),
                value_us: t.root_dur_us(),
            });
        }
        ex
    }
}

impl GatewayLatencySnapshot {
    /// The `"ops"` object of the v2 metrics JSON: one [`pbrs_obs::Summary`]
    /// per op class.
    pub fn ops_json(&self) -> String {
        format!(
            "{{\"put\":{},\"get_healthy\":{},\"get_degraded\":{},\"delete\":{}}}",
            self.put.summary().to_json(),
            self.get_healthy.summary().to_json(),
            self.get_degraded.summary().to_json(),
            self.delete.summary().to_json(),
        )
    }

    /// The `"stages"` object of the v2 metrics JSON: per-stage summaries
    /// for the healthy and degraded GET paths.
    pub fn stages_json(&self) -> String {
        format!(
            "{{\"healthy_get\":{},\"degraded_get\":{}}}",
            self.healthy_get_stages.to_json(),
            self.degraded_get_stages.to_json(),
        )
    }

    /// Appends the gateway's latency families to a Prometheus exposition.
    pub fn write_prometheus(&self, out: &mut String) {
        self.write_prometheus_with_exemplars(out, &OpExemplars::default());
    }

    /// As [`GatewayLatencySnapshot::write_prometheus`], attaching each op
    /// class's exemplar (when present) to the bucket its value falls in.
    pub fn write_prometheus_with_exemplars(&self, out: &mut String, exemplars: &OpExemplars) {
        let dur = "pbrs_gateway_op_duration_seconds";
        prom::type_line(out, dur, "histogram");
        for (class, snap, ex) in [
            ("put", &self.put, &exemplars.put),
            ("get_healthy", &self.get_healthy, &exemplars.get_healthy),
            ("get_degraded", &self.get_degraded, &exemplars.get_degraded),
            ("delete", &self.delete, &exemplars.delete),
        ] {
            prom::histogram_samples_with_exemplar(out, dur, &[("op", class)], snap, ex.as_ref());
        }
        let stage_dur = "pbrs_gateway_get_stage_duration_seconds";
        prom::type_line(out, stage_dur, "histogram");
        for (path, stages) in [
            ("healthy", &self.healthy_get_stages),
            ("degraded", &self.degraded_get_stages),
        ] {
            for (stage, _) in stages.summaries() {
                prom::histogram_samples(
                    out,
                    stage_dur,
                    &[("path", path), ("stage", stage.as_str())],
                    stages.stage(stage),
                );
            }
        }
    }
}

impl MetricsSnapshot {
    /// Appends the gateway's counters to a Prometheus exposition.
    pub fn write_prometheus(&self, out: &mut String) {
        let fields: [(&str, u64); 13] = [
            ("connections_accepted", self.connections_accepted),
            ("connections_refused", self.connections_refused),
            ("open_connections", self.open_connections),
            ("requests_admitted", self.requests_admitted),
            ("requests_shed", self.requests_shed),
            ("bytes_in", self.bytes_in),
            ("bytes_out", self.bytes_out),
            ("stripes_served", self.stripes_served),
            ("degraded_stripes_served", self.degraded_stripes_served),
            ("objects_put", self.objects_put),
            ("objects_deleted", self.objects_deleted),
            ("request_errors", self.request_errors),
            ("requests_expired", self.requests_expired),
        ];
        for (name, value) in fields {
            // `open_connections` is a level, not a monotonic total.
            let (full, kind) = if name == "open_connections" {
                (format!("pbrs_gateway_{name}"), "gauge")
            } else {
                (format!("pbrs_gateway_{name}_total"), "counter")
            };
            prom::type_line(out, &full, kind);
            prom::sample(out, &full, &[], value as f64);
        }
    }

    /// The `METRICS` RPC payload: the v1 flat counters plus
    /// `schema_version`, per-op latency summaries (`"ops"`), per-stage GET
    /// breakdowns (`"stages"`), and the store's latency section
    /// (`"store"`, pre-rendered by the caller).
    pub fn to_json_v2(&self, latency: &GatewayLatencySnapshot, store_json: &str) -> String {
        let flat = self.to_json();
        let flat_inner = &flat[1..flat.len() - 1]; // strip the braces
        format!(
            "{{\"schema_version\":2,{},\"ops\":{},\"stages\":{},\"store\":{}}}",
            flat_inner,
            latency.ops_json(),
            latency.stages_json(),
            store_json,
        )
    }

    /// The flat v1 counters object (kept for compatibility; the `METRICS`
    /// RPC now sends [`MetricsSnapshot::to_json_v2`]).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"connections_accepted\":{},\"connections_refused\":{},",
                "\"open_connections\":{},\"requests_admitted\":{},",
                "\"requests_shed\":{},\"bytes_in\":{},\"bytes_out\":{},",
                "\"stripes_served\":{},\"degraded_stripes_served\":{},",
                "\"objects_put\":{},\"objects_deleted\":{},",
                "\"request_errors\":{},\"requests_expired\":{}}}"
            ),
            self.connections_accepted,
            self.connections_refused,
            self.open_connections,
            self.requests_admitted,
            self.requests_shed,
            self.bytes_in,
            self.bytes_out,
            self.stripes_served,
            self.degraded_stripes_served,
            self.objects_put,
            self.objects_deleted,
            self.request_errors,
            self.requests_expired,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_json() {
        let m = GatewayMetrics::default();
        GatewayMetrics::add(&m.requests_admitted, 3);
        GatewayMetrics::add(&m.requests_shed, 1);
        GatewayMetrics::add(&m.open_connections, 2);
        GatewayMetrics::sub(&m.open_connections, 1);
        let snap = m.snapshot();
        assert_eq!(snap.requests_admitted, 3);
        assert_eq!(snap.requests_shed, 1);
        assert_eq!(snap.open_connections, 1);
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_shed\":1"));
    }
}
