//! Property tests of the gateway frame layer: arbitrary partial-read /
//! short-write splits must never corrupt or reorder frames, and hostile
//! input (truncated, oversized, garbage) must produce typed errors —
//! never panics, never silent misparses.
//!
//! The vendored `proptest` has no combinator strategies, so shaped values
//! (requests, responses, frame sequences) are built from a seeded
//! [`StdRng`], the same idiom as the erasure property tests.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_gateway::protocol::{
    write_frame, FrameDecoder, Request, Response, FRAME_OVERHEAD, MAX_FRAME,
};
use pbrs_obs::trace::TraceCtx;

fn random_name(rng: &mut StdRng) -> String {
    let len = rng.random_range(1..64usize);
    (0..len)
        .map(|_| char::from(b'a' + (rng.random_range(0..26u8))))
        .collect()
}

fn random_bytes(rng: &mut StdRng, max: usize) -> Vec<u8> {
    let len = rng.random_range(0..max);
    (0..len).map(|_| rng.random()).collect()
}

/// Any wrapper-free request shape (what a legacy client can send).
fn random_plain_request(rng: &mut StdRng) -> Request {
    match rng.random_range(0..9u8) {
        0 => Request::PutStart {
            name: random_name(rng),
        },
        1 => Request::PutData {
            data: random_bytes(rng, 2048),
        },
        2 => Request::PutEnd,
        3 => Request::Get {
            name: random_name(rng),
        },
        4 => Request::Delete {
            name: random_name(rng),
        },
        5 => Request::Stat {
            name: random_name(rng),
        },
        6 => Request::Prometheus,
        7 => Request::Traces,
        _ => Request::Metrics,
    }
}

fn random_ctx(rng: &mut StdRng) -> TraceCtx {
    TraceCtx::from_raw(rng.random_range(1..u64::MAX), rng.random_range(1..u64::MAX)).unwrap()
}

/// Any request shape, sometimes under a trace wrapper.
fn random_request(rng: &mut StdRng) -> Request {
    let plain = random_plain_request(rng);
    if rng.random_bool(0.3) {
        Request::Traced {
            ctx: random_ctx(rng),
            inner: Box::new(plain),
        }
    } else {
        plain
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    match rng.random_range(0..11u8) {
        0 => Response::Created {
            len: rng.random(),
            stripes: rng.random(),
        },
        1 => Response::ObjectHeader {
            len: rng.random(),
            stripes: rng.random(),
        },
        2 => Response::Data {
            data: random_bytes(rng, 2048),
        },
        3 => Response::ObjectEnd {
            degraded_stripes: rng.random(),
        },
        4 => Response::Stat {
            len: rng.random(),
            stripes: rng.random(),
        },
        5 => Response::Metrics {
            json: random_name(rng),
        },
        6 => Response::DeletedOk { len: rng.random() },
        7 => Response::NotFound,
        8 => Response::Deleted,
        9 => Response::Busy,
        _ => Response::Err {
            message: random_name(rng),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for every request shape.
    #[test]
    fn requests_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let req = random_request(&mut rng);
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    /// encode → decode is the identity for every response shape.
    #[test]
    fn responses_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let resp = random_response(&mut rng);
            prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    /// A frame sequence fed to the decoder in arbitrary-sized pieces
    /// (modelling both partial reads and short writes) comes out intact,
    /// in order, with ids attached to the right bodies.
    #[test]
    fn arbitrary_splits_preserve_frames(
        seed in any::<u64>(),
        frame_count in 1usize..8,
        max_cut in 1usize..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<(u64, Vec<u8>)> = (0..frame_count)
            .map(|_| (rng.random(), random_bytes(&mut rng, 512)))
            .collect();
        let mut wire = Vec::new();
        for (id, body) in &frames {
            write_frame(&mut wire, *id, body).unwrap();
        }
        // Split the wire at random widths in [1, max_cut].
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < wire.len() {
            let width = rng.random_range(1..=max_cut);
            let end = (offset + width).min(wire.len());
            decoder.feed(&wire[offset..end]);
            offset = end;
            while let Some(frame) = decoder.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, frames);
        prop_assert_eq!(decoder.pending(), 0);
    }

    /// A truncated tail never yields a bogus frame: the decoder just
    /// holds the partial bytes, and the remainder completes it.
    #[test]
    fn truncated_frames_are_held_not_invented(
        seed in any::<u64>(),
        keep_fraction in 0usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let id: u64 = rng.random();
        let mut body = random_bytes(&mut rng, 255);
        body.push(rng.random()); // never empty
        let mut wire = Vec::new();
        write_frame(&mut wire, id, &body).unwrap();
        let keep = (wire.len() - 1) * keep_fraction / 100; // always short
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire[..keep]);
        prop_assert_eq!(decoder.next_frame().unwrap(), None);
        prop_assert_eq!(decoder.pending(), keep);
        decoder.feed(&wire[keep..]);
        prop_assert_eq!(decoder.next_frame().unwrap(), Some((id, body)));
    }

    /// Garbage bytes never panic the decoder: every outcome is a frame,
    /// "need more", or a typed oversize error.
    #[test]
    fn garbage_never_panics_the_decoder(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes = random_bytes(&mut rng, 512);
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        // Drain until quiescent or error; must terminate and never panic.
        for _ in 0..=bytes.len() / FRAME_OVERHEAD + 1 {
            match decoder.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => break, // oversize prefix: connection poisoned
            }
        }
    }

    /// Garbage *bodies* (framed correctly) never panic the typed
    /// decoders.
    #[test]
    fn garbage_bodies_decode_to_errors_not_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let body = random_bytes(&mut rng, 128);
            let _ = Request::decode(&body);
            let _ = Response::decode(&body);
        }
    }

    /// Oversized length prefixes are rejected regardless of the claimed
    /// id or the bytes that follow.
    #[test]
    fn oversized_length_is_always_rejected(
        seed in any::<u64>(),
        excess in 1u64..1 << 20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = (MAX_FRAME as u64 + excess).min(u64::from(u32::MAX)) as u32;
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&rng.random::<u64>().to_le_bytes());
        wire.extend_from_slice(&random_bytes(&mut rng, 64));
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        prop_assert!(decoder.next_frame().is_err());
    }

    /// The trace wrapper round-trips around every inner request shape.
    #[test]
    fn traced_requests_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let req = Request::Traced {
                ctx: random_ctx(&mut rng),
                inner: Box::new(random_plain_request(&mut rng)),
            };
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    /// An unwrapped request's bytes are exactly the legacy encoding:
    /// the trace field adds bytes only when present, so a traceless
    /// legacy client and an un-upgraded gateway interoperate silently.
    #[test]
    fn traceless_encoding_is_byte_identical_to_legacy(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let req = random_plain_request(&mut rng);
            let bytes = req.encode();
            prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    /// Truncating a traced frame anywhere — mid-context or mid-inner —
    /// yields a typed error, never a panic or a misparse into a
    /// different request.
    #[test]
    fn truncated_traced_bodies_are_typed_errors(
        seed in any::<u64>(),
        keep_fraction in 0usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Name and data payloads are "rest of body", so truncating them
        // still decodes (to a shorter name/put); use the empty-bodied
        // shapes, where any cut lands in the context or the opcode.
        let inner = match rng.random_range(0..4u8) {
            0 => Request::PutEnd,
            1 => Request::Metrics,
            2 => Request::Prometheus,
            _ => Request::Traces,
        };
        let req = Request::Traced {
            ctx: random_ctx(&mut rng),
            inner: Box::new(inner),
        };
        let bytes = req.encode();
        let keep = 1 + (bytes.len() - 2) * keep_fraction / 100; // always short
        match Request::decode(&bytes[..keep]) {
            Ok(got) => prop_assert_eq!(got, req), // only if nothing was cut
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
    }

    /// Hostile traced bodies are rejected: garbage after the opcode
    /// never panics, zero ids and nested wrappers are typed errors.
    #[test]
    fn hostile_traced_bodies_are_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let mut body = vec![0x0Au8]; // OP_TRACED
            body.extend(random_bytes(&mut rng, 64));
            let _ = Request::decode(&body);
        }
        // Zero ids are reserved for "absent" and rejected.
        let mut zero_trace = vec![0x0Au8];
        zero_trace.extend_from_slice(&0u64.to_le_bytes());
        zero_trace.extend_from_slice(&1u64.to_le_bytes());
        zero_trace.extend_from_slice(&Request::PutEnd.encode());
        prop_assert!(Request::decode(&zero_trace).is_err());
        // A wrapper inside a wrapper is rejected at decode.
        let nested = Request::Traced {
            ctx: random_ctx(&mut rng),
            inner: Box::new(Request::PutEnd),
        };
        let mut double = vec![0x0Au8];
        double.extend_from_slice(&1u64.to_le_bytes());
        double.extend_from_slice(&2u64.to_le_bytes());
        double.extend_from_slice(&nested.encode());
        prop_assert!(Request::decode(&double).is_err());
    }
}
