//! End-to-end gateway tests on loopback: round trips, typed misses,
//! degraded streaming over real chunkd sockets, pipelined demultiplexing
//! by request id, explicit BUSY shedding, and hostile-frame hygiene.

use std::fs;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use pbrs_chunkd::{ChunkServer, RemoteDisk, ServerConfig};
use pbrs_gateway::client::{GatewayClient, GatewayError};
use pbrs_gateway::protocol::{self, Request, Response};
use pbrs_gateway::server::{Gateway, GatewayConfig};
use pbrs_store::store::{BlockStore, StoreConfig};
use pbrs_store::testing::TempDir;
use pbrs_store::{ChunkBackend, PlacementPolicy, RackMap};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

fn local_store(dir: &TempDir, spec: &str, chunk_len: usize) -> Arc<BlockStore> {
    let spec = spec.parse().unwrap();
    Arc::new(
        BlockStore::open(StoreConfig::new(dir.path().join("store"), spec).chunk_len(chunk_len))
            .unwrap(),
    )
}

fn gateway(store: &Arc<BlockStore>, config: GatewayConfig) -> Gateway {
    Gateway::serve(Arc::clone(store), "127.0.0.1:0", config).unwrap()
}

fn client(gw: &Gateway) -> GatewayClient {
    let c = GatewayClient::connect(gw.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

#[test]
fn put_get_stat_delete_round_trip() {
    let dir = TempDir::new("gw-roundtrip");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    // 2.5 stripes, so the stream has a short tail.
    let data = pattern(4 * 512 * 2 + 700);
    let (len, stripes) = c.put("obj", &data).unwrap();
    assert_eq!(len, data.len() as u64);
    assert_eq!(stripes, 3);

    assert_eq!(c.stat("obj").unwrap(), (data.len() as u64, 3));

    let got = c.get("obj").unwrap();
    assert_eq!(got.data, data);
    assert_eq!(got.degraded_stripes, 0);

    // Streaming arrives in stripe-sized pieces, in order.
    let mut pieces = Vec::new();
    let degraded = c
        .get_streamed("obj", |stripe| pieces.push(stripe.to_vec()))
        .unwrap();
    assert_eq!(degraded, 0);
    assert_eq!(pieces.len(), 3);
    assert_eq!(pieces.concat(), data);
    assert!(pieces[0].len() == 4 * 512 && pieces[2].len() == 700);

    // Typed misses: never-existed vs deleted.
    assert!(matches!(c.get("nope"), Err(GatewayError::NotFound)));
    assert_eq!(c.delete("obj").unwrap(), data.len() as u64);
    assert!(matches!(c.get("obj"), Err(GatewayError::Deleted)));
    assert!(matches!(c.stat("obj"), Err(GatewayError::Deleted)));
    assert!(matches!(c.delete("obj"), Err(GatewayError::Deleted)));

    // Duplicate PUT of a live name is a remote error, not a hang.
    c.put("dup", b"x").unwrap();
    assert!(matches!(c.put("dup", b"y"), Err(GatewayError::Remote(_))));

    // Empty objects round-trip too.
    c.put("empty", b"").unwrap();
    let empty = c.get("empty").unwrap();
    assert!(empty.data.is_empty());

    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("\"objects_put\":3"), "{metrics}");
    assert!(metrics.contains("\"objects_deleted\":1"), "{metrics}");
}

#[test]
fn degraded_get_over_chunkd_sockets_reports_rebuilt_stripes() {
    let dir = TempDir::new("gw-degraded");
    let spec: pbrs_erasure::CodeSpec = "piggyback-4-2".parse().unwrap();
    // Every disk a real chunkd TCP server on loopback.
    let servers: Vec<ChunkServer> = (0..6)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 2,
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let disks: Vec<Arc<dyn ChunkBackend>> = servers
        .iter()
        .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())) as Arc<dyn ChunkBackend>)
        .collect();
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), spec).chunk_len(512),
            disks,
            RackMap::per_disk(6),
            PlacementPolicy::Identity,
        )
        .unwrap(),
    );
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    let data = pattern(4 * 512 * 4); // 4 full stripes
    c.put("obj", &data).unwrap();
    let healthy = c.get("obj").unwrap();
    assert_eq!(healthy.data, data);
    assert_eq!(healthy.degraded_stripes, 0);

    // One chunk server loses every byte it stored; reads must degrade,
    // not fail, and the stream must say so.
    fs::remove_dir_all(servers[1].root()).unwrap();
    let degraded = c.get("obj").unwrap();
    assert_eq!(degraded.data, data);
    assert_eq!(degraded.degraded_stripes, 4);

    let metrics = c.metrics().unwrap();
    assert!(
        metrics.contains("\"degraded_stripes_served\":4"),
        "{metrics}"
    );
}

/// A GET that fails *after* the `ObjectHeader` is out — damage beyond the
/// code's tolerance discovered mid-stream — terminates the stream with a
/// typed error frame in bounded time: no hang, no connection teardown.
#[test]
fn mid_stream_failure_terminates_with_typed_error_not_a_hang() {
    let dir = TempDir::new("gw-midstream");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    let data = pattern(4 * 512 * 4); // 4 stripes
    c.put("obj", &data).unwrap();

    // Kill stripe 2 on three of six disks: one more loss than rs-4-2
    // tolerates, and only discovered when the stream reaches it.
    for disk in 0..3 {
        let obj = store.disk_path(disk).join("obj");
        for entry in fs::read_dir(&obj).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("00000002-") {
                fs::remove_file(&path).unwrap();
            }
        }
    }

    let start = std::time::Instant::now();
    let mut delivered = 0u64;
    let err = c.get_streamed("obj", |_| delivered += 1).unwrap_err();
    match err {
        GatewayError::Remote(_) => {}
        other => panic!("expected a typed mid-stream error, got {other:?}"),
    }
    assert_eq!(delivered, 2, "the healthy prefix streams before the error");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "mid-stream failure must not hang: {:?}",
        start.elapsed()
    );

    // The error frame ends only that exchange; the connection sails on.
    assert_eq!(c.stat("obj").unwrap(), (data.len() as u64, 4));
    assert!(gw.metrics().snapshot().request_errors >= 1);
}

/// With `request_deadline` set, a stripe job that out-waits its budget in
/// the queue is refused with a typed `deadline exceeded` error and counted
/// as expired, and the exposition carries the new families.
#[test]
fn request_deadline_expires_queued_stripes_with_typed_errors() {
    let dir = TempDir::new("gw-deadline");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(
        &store,
        GatewayConfig {
            // Zero patience: the first stripe job has always already
            // expired by the time a worker dequeues it.
            request_deadline: Some(Duration::ZERO),
            ..GatewayConfig::default()
        },
    );
    let mut c = client(&gw);
    c.put("obj", &pattern(4 * 512 * 2)).unwrap(); // PUTs carry no deadline

    match c.get_streamed("obj", |_| {}) {
        Err(GatewayError::Remote(message)) => {
            assert!(message.contains("deadline exceeded"), "{message}");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert!(gw.metrics().snapshot().requests_expired >= 1);

    let text = c.prometheus().unwrap();
    assert!(
        text.contains("pbrs_gateway_requests_expired_total"),
        "{text}"
    );
    // The store's disk-health family rides the same exposition (empty
    // state set here: this store runs unhardened).
    assert!(text.contains("# TYPE pbrs_disk_health gauge"), "{text}");
}

#[test]
fn pipelined_requests_demux_by_id() {
    let dir = TempDir::new("gw-pipeline");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    let a = pattern(4 * 512 * 3);
    let b: Vec<u8> = pattern(4 * 512 * 2).iter().map(|x| x ^ 0xFF).collect();
    c.put("a", &a).unwrap();
    c.put("b", &b).unwrap();

    // Fire three requests back-to-back without reading anything, under
    // distinctive ids, then collect every frame of all three exchanges.
    c.send_request(1001, &Request::Get { name: "a".into() })
        .unwrap();
    c.send_request(1002, &Request::Get { name: "b".into() })
        .unwrap();
    c.send_request(1003, &Request::Stat { name: "a".into() })
        .unwrap();

    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    let mut stat = None;
    let mut open = 3; // exchanges still expecting frames
    let mut ids_seen = Vec::new();
    while open > 0 {
        let (id, resp) = c.recv_response().unwrap();
        ids_seen.push(id);
        match (id, resp) {
            (1001, Response::Data { data }) => got_a.extend_from_slice(&data),
            (1002, Response::Data { data }) => got_b.extend_from_slice(&data),
            (1001 | 1002, Response::ObjectHeader { .. }) => {}
            (1001 | 1002, Response::ObjectEnd { .. }) => open -= 1,
            (1003, Response::Stat { len, stripes }) => {
                stat = Some((len, stripes));
                open -= 1;
            }
            (id, other) => panic!("unexpected frame {other:?} for id {id}"),
        }
    }
    // Reassembled streams are intact per id, whatever the interleaving.
    assert_eq!(got_a, a);
    assert_eq!(got_b, b);
    assert_eq!(stat, Some((a.len() as u64, 3)));
    // The cheap STAT must not have been forced to wait behind both full
    // GET streams: its frame arrives before the last stream frame.
    let stat_pos = ids_seen.iter().position(|&i| i == 1003).unwrap();
    assert!(
        stat_pos < ids_seen.len() - 1,
        "stat answered dead last: {ids_seen:?}"
    );

    // A request id already in flight is rejected without killing the
    // connection or the original exchange.
    c.send_request(7, &Request::Get { name: "a".into() })
        .unwrap();
    c.send_request(7, &Request::Stat { name: "a".into() })
        .unwrap();
    let mut saw_dup_error = false;
    let mut stream_done = false;
    while !(saw_dup_error && stream_done) {
        let (id, resp) = c.recv_response().unwrap();
        assert_eq!(id, 7);
        match resp {
            Response::Err { message } => {
                assert!(message.contains("already in flight"), "{message}");
                saw_dup_error = true;
            }
            Response::ObjectEnd { .. } => stream_done = true,
            Response::ObjectHeader { .. } | Response::Data { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn busy_shed_above_the_admission_limit_and_recovery() {
    let dir = TempDir::new("gw-busy");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(
        &store,
        GatewayConfig {
            max_inflight_requests: 1,
            ..GatewayConfig::default()
        },
    );

    // Connection A opens an ingest and stalls, pinning the only slot.
    let mut a = client(&gw);
    a.send_request(
        1,
        &Request::PutStart {
            name: "slow".into(),
        },
    )
    .unwrap();
    a.send_request(1, &Request::PutData { data: pattern(100) })
        .unwrap();
    // Wait until A's PUT_START is admitted so the slot is surely pinned
    // before probing (otherwise the probe could win the slot and shed A).
    for _ in 0..500 {
        if gw.metrics().snapshot().requests_admitted >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(gw.metrics().snapshot().requests_admitted, 1);

    // Connection B is shed with BUSY — explicitly, not queued.
    let mut b = client(&gw);
    assert!(
        matches!(probe_admission(&mut b), Err(GatewayError::Busy)),
        "no BUSY while the admission slot was pinned"
    );

    // A finishes; the slot frees; B succeeds.
    a.send_request(1, &Request::PutEnd).unwrap();
    match a.recv_response().unwrap() {
        (1, Response::Created { len, .. }) => assert_eq!(len, 100),
        other => panic!("unexpected {other:?}"),
    }
    let mut ok = false;
    for _ in 0..50 {
        match b.get("slow") {
            Ok(obj) => {
                assert_eq!(obj.data, pattern(100));
                ok = true;
                break;
            }
            Err(GatewayError::Busy) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(ok, "gateway never recovered after the slot freed");

    let snapshot = gw.metrics().snapshot();
    assert!(snapshot.requests_shed >= 1);
}

/// A worker-backed probe that reports BUSY distinctly (STAT is answered
/// inline and never shed, so it cannot probe admission).
fn probe_admission(c: &mut GatewayClient) -> Result<(), GatewayError> {
    let id = c.fresh_id();
    c.send_request(
        id,
        &Request::Delete {
            name: "absent".into(),
        },
    )?;
    match c.recv_response()? {
        (got, Response::Busy) if got == id => Err(GatewayError::Busy),
        (got, _) if got == id => Ok(()),
        (got, _) => Err(GatewayError::Protocol(format!("stray id {got}"))),
    }
}

#[test]
fn slow_reader_is_flow_controlled_not_buffered() {
    let dir = TempDir::new("gw-slowreader");
    let store = local_store(&dir, "rs-4-2", 512);
    // Budget of one: at most one stripe frame queued per connection.
    let gw = gateway(
        &store,
        GatewayConfig {
            in_flight_stripes: 1,
            ..GatewayConfig::default()
        },
    );
    let mut c = client(&gw);
    let data = pattern(4 * 512 * 16); // 16 stripes
    c.put("obj", &data).unwrap();

    // Read the stream deliberately slowly; it must arrive complete and
    // in order anyway — the budget throttles, it never drops.
    let mut assembled = Vec::new();
    let degraded = c
        .get_streamed("obj", |stripe| {
            std::thread::sleep(Duration::from_millis(5));
            assembled.extend_from_slice(stripe);
        })
        .unwrap();
    assert_eq!(assembled, data);
    assert_eq!(degraded, 0);
}

#[test]
fn hostile_frames_poison_only_their_connection() {
    let dir = TempDir::new("gw-hostile");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());

    // An oversized length prefix closes the connection...
    let mut evil = TcpStream::connect(gw.local_addr()).unwrap();
    evil.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut hostile = ((protocol::MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    hostile.extend_from_slice(&1u64.to_le_bytes());
    evil.write_all(&hostile).unwrap();
    let mut sink = Vec::new();
    use std::io::Read;
    assert_eq!(
        evil.read_to_end(&mut sink).unwrap_or(0),
        0,
        "expected close"
    );

    // ...while a well-behaved connection sails on, and a garbage *body*
    // (frameable but undecodable) gets a typed error, keeping the
    // connection usable.
    let mut c = client(&gw);
    c.put("obj", b"hello").unwrap();
    let mut stream = TcpStream::connect(gw.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    protocol::write_frame(&mut stream, 9, &[0xEE, 1, 2, 3]).unwrap();
    let (id, body) = protocol::read_frame(&mut stream).unwrap();
    assert_eq!(id, 9);
    assert!(matches!(
        Response::decode(&body).unwrap(),
        Response::Err { .. }
    ));
    // Same socket still serves real requests.
    protocol::write_frame(
        &mut stream,
        10,
        &Request::Stat { name: "obj".into() }.encode(),
    )
    .unwrap();
    let (id, body) = protocol::read_frame(&mut stream).unwrap();
    assert_eq!(id, 10);
    assert!(matches!(
        Response::decode(&body).unwrap(),
        Response::Stat { len: 5, .. }
    ));
}

#[test]
fn abandoned_ingest_leaves_no_trace() {
    let dir = TempDir::new("gw-abandon");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());

    {
        let mut c = client(&gw);
        c.send_request(
            1,
            &Request::PutStart {
                name: "ghost".into(),
            },
        )
        .unwrap();
        c.send_request(
            1,
            &Request::PutData {
                data: pattern(5000),
            },
        )
        .unwrap();
        // Connection dies mid-ingest, END never sent.
    }
    // The reservation must be released and the partial chunks removed:
    // the same name becomes writable again.
    let mut c = client(&gw);
    let mut ok = false;
    for _ in 0..100 {
        match c.put("ghost", b"fresh") {
            Ok(_) => {
                ok = true;
                break;
            }
            Err(GatewayError::Remote(_)) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(ok, "abandoned ingest kept the name reserved");
    assert_eq!(c.get("ghost").unwrap().data, b"fresh");
}

#[test]
fn many_concurrent_connections() {
    let dir = TempDir::new("gw-concurrent");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());
    let addr = gw.local_addr();

    let handles: Vec<_> = (0..32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = GatewayClient::connect(addr).unwrap();
                c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let name = format!("obj-{i}");
                let data = pattern(4 * 512 + i * 37);
                loop {
                    match c.put(&name, &data) {
                        Ok(_) => break,
                        Err(GatewayError::Busy) => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
                let got = c.get(&name).unwrap();
                assert_eq!(got.data, data);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snapshot = gw.metrics().snapshot();
    assert_eq!(snapshot.objects_put, 32);
    assert_eq!(snapshot.connections_accepted, 32);
}

#[test]
fn connection_cap_refuses_loudly() {
    let dir = TempDir::new("gw-conncap");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(
        &store,
        GatewayConfig {
            max_connections: 2,
            ..GatewayConfig::default()
        },
    );
    let mut a = client(&gw);
    let _b = client(&gw);
    a.put("x", b"data").unwrap(); // force both registrations through

    // The third connection is accepted then closed; a read sees EOF.
    let mut c = TcpStream::connect(gw.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    use std::io::Read;
    let mut sink = [0u8; 1];
    let mut refused = false;
    for _ in 0..100 {
        match c.read(&mut sink) {
            Ok(0) => {
                refused = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(refused, "over-cap connection was not closed");
    assert!(gw.metrics().snapshot().connections_refused >= 1);

    // Freeing a slot lets new connections in.
    drop(a);
    let mut d = GatewayClient::connect(gw.local_addr()).unwrap();
    d.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut ok = false;
    for _ in 0..100 {
        match d.stat("x") {
            Ok((4, _)) => {
                ok = true;
                break;
            }
            Ok(other) => panic!("unexpected stat {other:?}"),
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                d = GatewayClient::connect(gw.local_addr()).unwrap();
                d.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            }
        }
    }
    assert!(ok, "slot never freed after disconnect");
}

/// The tentpole end to end: a degraded GET over real sockets leaves ONE
/// retained trace tree that spans three processes — gateway root, store
/// read/rebuild spans, and chunkd-side spans shipped back over the wire
/// — with `chunk_io` leaves naming the helper disks and racks actually
/// read. Also exercises client-supplied contexts and the exposition's
/// exemplars and journal-drop families.
#[test]
fn degraded_get_retains_one_tree_spanning_gateway_store_and_chunkd() {
    let dir = TempDir::new("gw-trace");
    let spec: pbrs_erasure::CodeSpec = "piggyback-4-2".parse().unwrap();
    let servers: Vec<ChunkServer> = (0..6)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 2,
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    // `.traced()` opts the client half in; the servers record spans for
    // trace-wrapped requests by default.
    let disks: Vec<Arc<dyn ChunkBackend>> = servers
        .iter()
        .map(|s| {
            Arc::new(RemoteDisk::new(s.local_addr().to_string()).traced()) as Arc<dyn ChunkBackend>
        })
        .collect();
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), spec).chunk_len(512),
            disks,
            RackMap::uniform(3, 2),
            PlacementPolicy::Identity,
        )
        .unwrap(),
    );
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    let data = pattern(4 * 512 * 2); // 2 stripes
    c.put("obj", &data).unwrap();
    // Lose one chunk server entirely; the GET degrades on every stripe.
    fs::remove_dir_all(servers[1].root()).unwrap();
    let got = c.get("obj").unwrap();
    assert_eq!(got.data, data);
    assert_eq!(got.degraded_stripes, 2);

    // The TRACES verb assembles the cross-process tree: the gateway
    // pulls chunkd-local spans over FETCH_SPANS before rendering.
    let traces = c.traces().unwrap();
    assert!(traces.json.contains("\"degraded\""), "{}", traces.json);
    assert!(
        traces.chrome.starts_with("{\"traceEvents\":["),
        "{}",
        traces.chrome
    );

    // Inspect the tree structurally through the in-process handle (the
    // JSON above is the same data rendered).
    let retained = gw.tracer().retained();
    let tree = retained
        .iter()
        .find(|t| t.reasons.contains(&"degraded"))
        .expect("the degraded GET must be retained");
    assert_eq!(tree.op, "get");
    let root = tree
        .spans
        .iter()
        .find(|s| s.id == tree.root)
        .expect("root span present");
    assert!(root.process.starts_with("gateway:"), "{:?}", root.process);
    assert!(
        tree.spans
            .iter()
            .any(|s| s.name == "read_stripe" && s.tag("degraded").is_some()),
        "store spans must join the gateway's tree"
    );
    // chunk_io leaves name the helper disks, their racks, and the remote
    // backends actually read.
    let leaves: Vec<_> = tree.spans.iter().filter(|s| s.name == "chunk_io").collect();
    assert!(!leaves.is_empty());
    assert!(
        leaves.iter().any(
            |s| s.tag("backend").is_some_and(|b| b.contains("chunkd://"))
                && s.tag("rack").is_some()
        ),
        "{leaves:?}"
    );
    // Spans shipped back from at least two distinct chunkd processes.
    let chunkd_procs: std::collections::HashSet<&str> = tree
        .spans
        .iter()
        .filter(|s| s.process.starts_with("chunkd:"))
        .map(|s| s.process.as_str())
        .collect();
    assert!(
        chunkd_procs.len() >= 2,
        "expected spans from >= 2 chunkd processes, got {chunkd_procs:?}"
    );

    // A client-supplied context is adopted: the op joins the caller's
    // trace instead of minting a fresh id.
    let ctx = pbrs_obs::trace::TraceCtx::from_raw(0xfeed_beef_dead_cafe, 0x1).unwrap();
    let traced = c.get_traced("obj", ctx).unwrap();
    assert_eq!(traced.data, data);
    // The root finishes on the reactor thread just after the final
    // frame's write(2); on loopback the client can observe ObjectEnd
    // first, so poll briefly.
    let mut adopted = false;
    for _ in 0..500 {
        if gw
            .tracer()
            .retained()
            .iter()
            .any(|t| t.trace.as_u64() == ctx.trace.as_u64())
        {
            adopted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        adopted,
        "client-supplied trace id must be retained (degraded op): {:?}",
        gw.tracer()
            .retained()
            .iter()
            .map(|t| (t.op.clone(), t.trace.as_u64(), t.reasons.clone()))
            .collect::<Vec<_>>()
    );

    // Exemplars: the degraded-GET histogram member links its bucket to a
    // retained trace id; journal drop counters ride the same exposition.
    let text = c.prometheus().unwrap();
    assert!(
        text.contains("op=\"get_degraded\"")
            && text.contains("# {trace_id=\"")
            && text.contains("pbrs_journal_events_dropped_total{component=\"gateway\"} 0"),
        "{text}"
    );
}

/// The gateway's per-op latency histograms, GET stage breakdowns, v2
/// METRICS JSON, and Prometheus exposition all report the ops we ran.
#[test]
fn latency_histograms_and_expositions_cover_all_ops() {
    let dir = TempDir::new("gw-latency");
    let store = local_store(&dir, "rs-4-2", 512);
    let gw = gateway(&store, GatewayConfig::default());
    let mut c = client(&gw);

    let data = pattern(4 * 512 * 3 + 77);
    c.put("obj", &data).unwrap();
    c.put("victim", &data).unwrap();
    assert_eq!(c.get("obj").unwrap().degraded_stripes, 0);

    // Lose a disk: the next GET is degraded.
    fs::remove_dir_all(store.disk_path(2)).unwrap();
    let degraded = c.get("obj").unwrap();
    assert_eq!(degraded.data, data);
    assert!(degraded.degraded_stripes > 0);
    c.delete("victim").unwrap();

    // A METRICS round trip serialises through the reactor, so every op
    // recorded above is visible both in the JSON and in direct snapshots.
    let json = c.metrics().unwrap();
    assert!(json.contains("\"schema_version\":2"), "{json}");
    assert!(json.contains("\"ops\":{\"put\":{\"count\":2"), "{json}");
    assert!(
        json.contains("\"stages\":{\"healthy_get\":{\"queue\":"),
        "{json}"
    );
    assert!(json.contains("\"store\":{"), "{json}");

    let latency = gw.metrics().latency();
    assert_eq!(latency.put.count(), 2);
    assert_eq!(latency.get_healthy.count(), 1);
    assert_eq!(latency.get_degraded.count(), 1);
    assert_eq!(latency.delete.count(), 1);
    assert!(latency.get_healthy.summary().p50_us > 0);
    // A degraded whole-object GET cannot be faster than its own mean.
    assert!(latency.get_degraded.max() >= latency.get_degraded.summary().p50_us);

    // One stage sample set per completed GET; chunk-io did real work.
    let healthy = &latency.healthy_get_stages;
    assert_eq!(healthy.stage(pbrs_obs::Stage::ChunkIo).count(), 1);
    assert!(healthy.stage(pbrs_obs::Stage::ChunkIo).summary().p50_us > 0);
    let degraded_stages = &latency.degraded_get_stages;
    assert_eq!(degraded_stages.stage(pbrs_obs::Stage::Erasure).count(), 1);
    assert!(
        degraded_stages
            .stage(pbrs_obs::Stage::Erasure)
            .summary()
            .max_us
            > 0
    );

    let text = c.prometheus().unwrap();
    assert!(
        text.contains("# TYPE pbrs_gateway_op_duration_seconds histogram"),
        "{text}"
    );
    assert!(
        text.contains("pbrs_gateway_op_duration_seconds_count{op=\"get_degraded\"} 1"),
        "{text}"
    );
    assert!(
        text.contains(
            "pbrs_gateway_get_stage_duration_seconds_count{path=\"healthy\",stage=\"chunk_io\"} 1"
        ),
        "{text}"
    );
    assert!(text.contains("pbrs_gateway_objects_put_total 2"), "{text}");
    assert!(
        text.contains("# TYPE pbrs_store_stripe_read_duration_seconds histogram"),
        "{text}"
    );
    assert!(text.contains("pbrs_store_"), "{text}");
}
