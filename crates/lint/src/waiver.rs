//! Inline waivers: `// pbrs-lint: allow(<rule>) -- <reason>`.
//!
//! A waiver suppresses findings of `<rule>` on its own line and on the
//! line directly below (so it can trail the offending expression or sit
//! on its own line above it). The reason after `--` is mandatory — a
//! waiver without one is itself a finding, because an unexplained
//! exemption is exactly the review-discipline failure this tool exists
//! to replace.

use crate::config::Severity;
use crate::diag::Diagnostic;
use crate::lexer::Lexed;

/// The marker that introduces a waiver inside a comment.
pub const MARKER: &str = "pbrs-lint:";

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
}

/// All waivers of one file.
#[derive(Debug, Default)]
pub struct WaiverSet {
    waivers: Vec<Waiver>,
}

impl WaiverSet {
    /// Collects waivers from a file's comments. Malformed waivers
    /// (missing `allow(…)`, empty rule, or missing `-- reason`) are
    /// reported as `waiver-syntax` diagnostics in `out`.
    pub fn collect(rel: &str, lex: &Lexed, out: &mut Vec<Diagnostic>) -> WaiverSet {
        let mut set = WaiverSet::default();
        for comment in &lex.comments {
            for chunk in comment.text.split(MARKER).skip(1) {
                // Prose that merely mentions the marker (docs, this file)
                // is not a waiver attempt; only `allow(` starts one.
                if !chunk.trim_start().starts_with("allow(") {
                    continue;
                }
                match parse_waiver(chunk) {
                    Ok(rule) => set.waivers.push(Waiver {
                        rule,
                        line: comment.line,
                    }),
                    Err(message) => out.push(Diagnostic {
                        rule: "waiver-syntax",
                        severity: Severity::Error,
                        file: rel.to_string(),
                        line: comment.line,
                        message,
                    }),
                }
            }
        }
        set
    }

    /// True if a waiver for `rule` covers 1-based `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }

    /// Number of collected waivers (for reporting).
    pub fn len(&self) -> usize {
        self.waivers.len()
    }

    /// True if no waivers were collected.
    pub fn is_empty(&self) -> bool {
        self.waivers.is_empty()
    }
}

/// Parses the text following the `pbrs-lint:` marker.
fn parse_waiver(chunk: &str) -> Result<String, String> {
    let chunk = chunk.trim_start();
    let Some(rest) = chunk.strip_prefix("allow(") else {
        return Err("waiver must be `pbrs-lint: allow(<rule>) -- <reason>`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("waiver is missing the closing `)` after the rule name".into());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err("waiver names no rule inside allow(…)".into());
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "waiver for `{rule}` has no reason; append `-- <why this is sound>`"
        ));
    }
    Ok(rule.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn collect(src: &str) -> (WaiverSet, Vec<Diagnostic>) {
        let lx = lex(src);
        let mut diags = Vec::new();
        let set = WaiverSet::collect("f.rs", &lx, &mut diags);
        (set, diags)
    }

    #[test]
    fn trailing_and_preceding_waivers_cover() {
        let src = "\
let a = x.lock().unwrap(); // pbrs-lint: allow(panic-hygiene) -- poisoning is fatal by design
// pbrs-lint: allow(atomics-audit) -- counter is monotonic
let b = c.load(Ordering::Relaxed);
";
        let (set, diags) = collect(src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(set.len(), 2);
        assert!(set.covers("panic-hygiene", 1));
        assert!(set.covers("atomics-audit", 2));
        assert!(set.covers("atomics-audit", 3)); // line below
        assert!(!set.covers("atomics-audit", 4));
        assert!(!set.covers("panic-hygiene", 3));
    }

    #[test]
    fn reasonless_waiver_is_a_finding() {
        let (set, diags) = collect("// pbrs-lint: allow(panic-hygiene)\nlet x = y.unwrap();");
        assert!(set.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "waiver-syntax");
        assert!(diags[0].message.contains("no reason"));
    }

    #[test]
    fn malformed_waivers_are_findings() {
        let (_, d2) = collect("// pbrs-lint: allow( ) -- nope");
        assert_eq!(d2.len(), 1);
        let (_, d3) = collect("// pbrs-lint: allow(x -- missing close");
        assert_eq!(d3.len(), 1);
    }

    #[test]
    fn prose_mentioning_the_marker_is_not_a_waiver() {
        let (set, diags) = collect("/// Parses text after the `pbrs-lint:` marker.");
        assert!(set.is_empty());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
