//! `pbrs-lint` — the workspace invariant checker.
//!
//! A dependency-free static analyzer for this repository: a hand-rolled,
//! comment/string/char-literal-aware Rust [`lexer`], a test-scope pass
//! ([`scope`]), a `lint.toml` config ([`config`]), and five token-pattern
//! [`rules`] that machine-check the invariants the codebase previously
//! enforced by review discipline:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-confinement` | `unsafe` only in allowlisted modules, always documented; every other crate root `#![forbid(unsafe_code)]` |
//! | `panic-hygiene` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | `atomics-audit` | every `Ordering::Relaxed`/`SeqCst` site justified by a comment within 2 lines |
//! | `wire-protocol` | no lossy `as` casts in the protocol files; every opcode constant matched by a decoder arm |
//! | `wall-clock` | `Instant::now`/`SystemTime::now` confined to guard/health/obs/daemon seams |
//!
//! Findings can be waived inline with
//! `// pbrs-lint: allow(<rule>) -- <reason>` ([`waiver`]); a reasonless
//! waiver is itself an error. There is deliberately no `--fix`: every
//! exemption is written, reviewed, and reasoned about by a person.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p pbrs-lint
//! ```
//!
//! The rule catalogue, waiver syntax, and `lint.toml` schema are
//! documented in `CONTRIBUTING.md`.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod waiver;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use config::{Config, Severity};
use diag::{Diagnostic, Report};
use rules::{FileCtx, ALL_RULES};
use walk::{classify, is_crate_root, FileKind};

/// Lints one in-memory source file as if it lived at `rel` — the engine
/// behind both the workspace walk and the fixture self-tests.
///
/// `only` restricts to a subset of rule names; `None` runs all.
pub fn check_source(
    rel: &str,
    src: &str,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Diagnostic> {
    check_source_as(rel, classify(rel), is_crate_root(rel), src, cfg, only)
}

/// [`check_source`] with the file kind and crate-root flag pinned by the
/// caller (the walker has the real answers; fixtures may fake them).
pub fn check_source_as(
    rel: &str,
    kind: FileKind,
    crate_root: bool,
    src: &str,
    cfg: &Config,
    only: Option<&[String]>,
) -> Vec<Diagnostic> {
    let lex = lexer::lex(src);
    let scopes = scope::analyze(&lex);
    let mut out = Vec::new();
    let waivers = waiver::WaiverSet::collect(rel, &lex, &mut out);
    let ctx = FileCtx {
        rel,
        kind,
        is_crate_root: crate_root,
        lex: &lex,
        scopes: &scopes,
        waivers: &waivers,
    };
    for (name, rule) in ALL_RULES {
        if let Some(filter) = only {
            if !filter.iter().any(|f| f == name) {
                continue;
            }
        }
        let sev = cfg.severity(name);
        if sev == Severity::Off {
            continue;
        }
        rule(&ctx, cfg, sev, &mut out);
    }
    out
}

/// Walks the workspace at `root` and runs every enabled rule over every
/// discovered file.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn run_workspace(root: &Path, cfg: &Config, only: Option<&[String]>) -> io::Result<Report> {
    let files = walk::discover(root, cfg)?;
    let mut report = Report {
        files_checked: files.len(),
        ..Report::default()
    };
    for file in &files {
        let src = fs::read_to_string(&file.abs)?;
        report.diagnostics.extend(check_source_as(
            &file.rel,
            file.kind,
            file.is_crate_root,
            &src,
            cfg,
            only,
        ));
    }
    report.finish();
    Ok(report)
}

/// Loads `lint.toml` from `root`.
///
/// # Errors
///
/// I/O errors reading the file, or `InvalidData` for config syntax
/// errors (with the line number in the message).
pub fn load_config(root: &Path) -> io::Result<Config> {
    let path = root.join("lint.toml");
    let text = fs::read_to_string(&path)?;
    Config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Searches `start` and its ancestors for a directory holding
/// `lint.toml`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    start
        .ancestors()
        .find(|dir| dir.join("lint.toml").is_file())
        .map(Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(text: &str) -> Config {
        Config::parse(text).expect("test config parses")
    }

    #[test]
    fn check_source_routes_by_path() {
        let c = cfg("[rule.panic-hygiene]\nseverity = \"error\"");
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        // Library code: flagged.
        let d = check_source("crates/x/src/f.rs", src, &c, None);
        assert!(d.iter().any(|d| d.rule == "panic-hygiene"), "{d:?}");
        // Bench bin: exempt.
        let d = check_source("crates/bench/src/bin/f.rs", src, &c, None);
        assert!(d.iter().all(|d| d.rule != "panic-hygiene"), "{d:?}");
    }

    #[test]
    fn rule_filter_limits_output() {
        let c = cfg("");
        let src = "pub fn f() { std::process::exit(0) }";
        // Crate-root check would fire for unsafe-confinement on lib.rs…
        let all = check_source("crates/x/src/lib.rs", src, &c, None);
        assert!(all.iter().any(|d| d.rule == "unsafe-confinement"));
        // …but a filter to panic-hygiene silences it.
        let only = vec!["panic-hygiene".to_string()];
        let filtered = check_source("crates/x/src/lib.rs", src, &c, Some(&only));
        assert!(filtered.is_empty(), "{filtered:?}");
    }

    #[test]
    fn severity_off_disables_a_rule() {
        let c = cfg("[rule.panic-hygiene]\nseverity = \"off\"");
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let d = check_source("crates/x/src/f.rs", src, &c, None);
        assert!(d.is_empty(), "{d:?}");
    }
}
