//! Diagnostics: what a rule reports, and how a run renders.

use std::fmt;

use crate::config::Severity;

/// One finding, pinned to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (e.g. `panic-hygiene`).
    pub rule: &'static str,
    /// Severity the rule ran at.
    pub severity: Severity,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were checked.
    pub files_checked: usize,
}

impl Report {
    /// Sorts diagnostics into the canonical (file, line, rule) order.
    pub fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Findings at `error` severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True if the run should exit nonzero.
    pub fn failed(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The full text rendering: one line per finding plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.errors().count();
        let warnings = self.diagnostics.len() - errors;
        out.push_str(&format!(
            "pbrs-lint: {} files checked, {errors} errors, {warnings} warnings\n",
            self.files_checked
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_orders_and_summarises() {
        let mut r = Report {
            diagnostics: vec![
                Diagnostic {
                    rule: "b-rule",
                    severity: Severity::Error,
                    file: "b.rs".into(),
                    line: 2,
                    message: "second".into(),
                },
                Diagnostic {
                    rule: "a-rule",
                    severity: Severity::Warn,
                    file: "a.rs".into(),
                    line: 9,
                    message: "first".into(),
                },
            ],
            files_checked: 2,
        };
        r.finish();
        assert_eq!(r.diagnostics[0].file, "a.rs");
        assert!(r.failed());
        let text = r.render();
        assert!(text.contains("error[b-rule]: b.rs:2: second"));
        assert!(text.contains("warn[a-rule]: a.rs:9: first"));
        assert!(text.ends_with("2 files checked, 1 errors, 1 warnings\n"));
    }
}
