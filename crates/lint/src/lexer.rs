//! A comment/string/char-literal-aware Rust lexer — just enough of the
//! language to drive token-pattern lints, with zero dependencies.
//!
//! The output is two parallel streams per file:
//!
//! * [`Token`]s — identifiers, punctuation, and literals, each tagged with
//!   its 1-based line. Comments and whitespace never appear here, which is
//!   what makes naive pattern matches (`unsafe` followed by `{`,
//!   `Ordering` `::` `Relaxed`, …) sound: an occurrence inside a string,
//!   char literal, or comment can never fool a rule.
//! * [`Comment`]s — every line and block comment with its text and line
//!   span, kept separately so rules can *require* commentary (SAFETY
//!   notes, atomic-ordering justifications, waivers) near a token.
//!
//! Handled faithfully: nested block comments, raw strings with arbitrary
//! `#` runs, byte and raw-byte strings, char-literal vs lifetime
//! ambiguity (`'a'` vs `'a`), raw identifiers (`r#type`), and numeric
//! literals with suffixes. Not handled (not needed): macro fragment
//! semantics, shebangs beyond the first line, frontmatter.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Ordering`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
    /// A string/char/byte/numeric literal (text is the raw source slice).
    Literal,
    /// A lifetime or loop label (`'a`), kept distinct from char literals.
    Lifetime,
}

/// One significant token: never a comment, never whitespace.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment, with its full text (markers stripped) and line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line of the comment.
    pub line: u32,
    /// 1-based last line (equal to `line` for line comments).
    pub end_line: u32,
    /// Comment text without the `//`, `///`, `/*`, `*/` markers.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Iterator over comments that touch 1-based line `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }

    /// True if any comment with non-empty text touches any line in
    /// `lo..=hi`.
    pub fn has_comment_in(&self, lo: u32, hi: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= hi && !c.text.trim().is_empty())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are consumed to end of file, which is the forgiving thing
/// for a linter (rustc will report the real error).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' => self.slash(),
                b'"' => self.string(),
                b'b' | b'r' => self.b_or_r(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(c) => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, self.i, self.i + 1);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, from: usize, to: usize) {
        let text = String::from_utf8_lossy(&self.b[from..to]).into_owned();
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    /// `/`: line comment, block comment, or plain punct.
    fn slash(&mut self) {
        match self.peek(1) {
            b'/' => {
                let start = self.i;
                while self.i < self.b.len() && self.b[self.i] != b'\n' {
                    self.i += 1;
                }
                let raw = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                let doc = raw.starts_with("///") || raw.starts_with("//!");
                let text = raw
                    .trim_start_matches('/')
                    .trim_start_matches('!')
                    .to_string();
                self.out.comments.push(Comment {
                    line: self.line,
                    end_line: self.line,
                    text,
                    doc,
                });
            }
            b'*' => {
                let start_line = self.line;
                let start = self.i;
                self.i += 2;
                let mut depth = 1u32;
                while self.i < self.b.len() && depth > 0 {
                    match (self.b[self.i], self.peek(1)) {
                        (b'/', b'*') => {
                            depth += 1;
                            self.i += 2;
                        }
                        (b'*', b'/') => {
                            depth -= 1;
                            self.i += 2;
                        }
                        (b'\n', _) => {
                            self.line += 1;
                            self.i += 1;
                        }
                        _ => self.i += 1,
                    }
                }
                let raw = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                let doc = raw.starts_with("/**") || raw.starts_with("/*!");
                let text = raw
                    .trim_start_matches("/*")
                    .trim_end_matches("*/")
                    .to_string();
                self.out.comments.push(Comment {
                    line: start_line,
                    end_line: self.line,
                    text,
                    doc,
                });
            }
            _ => {
                self.push(TokenKind::Punct, self.i, self.i + 1);
                self.i += 1;
            }
        }
    }

    /// A `"…"` string with escapes; newlines inside are tracked.
    fn string(&mut self) {
        let start = self.i;
        let start_line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                // A `\<newline>` line continuation still ends a line.
                b'\\' => {
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i.min(self.b.len())]).into_owned();
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }

    /// `r`/`b` prefixes: raw strings, byte strings, raw identifiers — or
    /// just an identifier starting with that letter.
    fn b_or_r(&mut self) {
        let c = self.b[self.i];
        let (p1, p2) = (self.peek(1), self.peek(2));
        match (c, p1, p2) {
            // b"…"
            (b'b', b'"', _) => {
                self.i += 1;
                self.string();
            }
            // b'x'
            (b'b', b'\'', _) => {
                self.i += 1;
                self.quote();
            }
            // br"…" / br#"…"#
            (b'b', b'r', b'"') | (b'b', b'r', b'#') => {
                self.i += 2;
                self.raw_string();
            }
            // r"…" / r#"…"#
            (b'r', b'"', _) => {
                self.i += 1;
                self.raw_string();
            }
            (b'r', b'#', _) => {
                if is_ident_start(p2) && p2 != b'"' {
                    // r#type — raw identifier.
                    self.i += 2;
                    let start = self.i;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    self.push(TokenKind::Ident, start, self.i);
                } else {
                    self.i += 1;
                    self.raw_string();
                }
            }
            _ => self.ident(),
        }
    }

    /// At `#…"` or `"`: consume a raw string body through its matching
    /// `"#…` terminator.
    fn raw_string(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.i += 1;
        }
        if self.peek(0) == b'"' {
            self.i += 1;
            'body: while self.i < self.b.len() {
                match self.b[self.i] {
                    b'\n' => {
                        self.line += 1;
                        self.i += 1;
                    }
                    b'"' => {
                        self.i += 1;
                        let mut seen = 0usize;
                        while seen < hashes && self.peek(0) == b'#' {
                            seen += 1;
                            self.i += 1;
                        }
                        if seen == hashes {
                            break 'body;
                        }
                    }
                    _ => self.i += 1,
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i.min(self.b.len())]).into_owned();
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text,
            line: start_line,
        });
    }

    /// `'`: a char literal (`'a'`, `'\n'`) or a lifetime/label (`'a`).
    fn quote(&mut self) {
        let start = self.i;
        if self.peek(1) == b'\\' {
            // Escaped char literal: skip quote, backslash and the escaped
            // character (which may itself be `'`), then find the close.
            self.i += 3;
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            self.i = (self.i + 1).min(self.b.len());
            self.push(TokenKind::Literal, start, self.i);
        } else if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            // Lifetime or label: 'ident with no closing quote.
            self.i += 1;
            let from = self.i;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            let _ = from;
            self.push(TokenKind::Lifetime, start, self.i);
        } else if self.peek(2) == b'\'' {
            // Plain one-char literal, e.g. 'x' or '.'.
            self.i += 3;
            self.push(TokenKind::Literal, start, self.i);
        } else {
            // Stray quote; treat as punctuation and move on.
            self.push(TokenKind::Punct, self.i, self.i + 1);
            self.i += 1;
        }
    }

    /// A numeric literal, including hex/underscores/suffixes and simple
    /// floats (`1.5e3`), but stopping before `..` range punctuation.
    fn number(&mut self) {
        let start = self.i;
        self.i += 1;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            let in_number = c.is_ascii_alphanumeric()
                || c == b'_'
                || (c == b'.' && self.peek(1) != b'.' && self.peek(1).is_ascii_digit())
                || ((c == b'+' || c == b'-')
                    && matches!(self.b[self.i - 1], b'e' | b'E')
                    && self.peek(1).is_ascii_digit());
            if !in_number {
                break;
            }
            self.i += 1;
        }
        self.push(TokenKind::Literal, start, self.i);
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push(TokenKind::Ident, start, self.i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // unsafe in a comment
            /* unsafe /* nested */ still comment */
            let s = "unsafe { }";
            let r = r#"unsafe"#;
            let c = 'u';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { unsafe { x } }";
        let ids = idents(src);
        assert!(ids.contains(&"unsafe".to_string()));
        let lifetimes: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
    }

    #[test]
    fn char_literals_are_literals() {
        let toks = lex("let c = 'x'; let n = '\\n'; let q = '\\'';");
        let lits: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\n'", "'\\''"]);
    }

    #[test]
    fn comment_text_and_lines_are_tracked() {
        let src = "let a = 1; // SAFETY: fine\n/* block\nspans */\nlet b = 2;";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("SAFETY: fine"));
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[1].line, 2);
        assert_eq!(lx.comments[1].end_line, 3);
        assert!(lx.has_comment_in(1, 1));
        assert!(lx.has_comment_in(3, 4));
        assert!(!lx.has_comment_in(4, 4));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ids = idents("let r#type = 1; let x = r\"not ident\";");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn numbers_do_not_merge_with_ranges() {
        let toks = lex("for i in 0..16u8 { x[i] = 1.5e-3; }");
        let texts: Vec<_> = toks.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"16u8"));
        assert!(texts.contains(&"1.5e-3"));
    }

    #[test]
    fn lines_are_one_based_and_advance() {
        let lx = lex("a\nb\n  c");
        assert_eq!(
            lx.tokens.iter().map(|t| t.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    /// Regression: a `\<newline>` continuation inside a string literal
    /// used to be skipped without counting the line, shifting every
    /// diagnostic below it up by one.
    #[test]
    fn string_line_continuation_counts_the_newline() {
        let lx = lex("let s = \"one \\\n two\";\nafter");
        let after = lx.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }
}
