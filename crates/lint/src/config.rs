//! `lint.toml` parsing — a hand-rolled subset of TOML, since the build
//! environment is vendored-only and the config needs exactly: tables,
//! string keys, string / bool / string-array values, and `#` comments.
//! The full schema is documented in `CONTRIBUTING.md`.
//!
//! Also home to the tiny glob matcher rules use for path allowlists:
//! `*` matches within one path segment, `**` matches across segments.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// Rule severity, settable per rule in `lint.toml`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rule disabled entirely.
    Off,
    /// Findings are printed but do not fail the run.
    Warn,
    /// Findings fail the run (nonzero exit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Off => "off",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Parsed `lint.toml`: `sections["rule.panic-hygiene"]["severity"]`.
#[derive(Debug, Default)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

/// A `lint.toml` syntax error with its 1-based line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending text.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its line number.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, mut value_text)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value` or `[section]`, got `{line}`"),
                });
            };
            let key = key.trim().to_string();
            let mut value_buf = value_text.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets close.
            while value_buf.starts_with('[') && !brackets_close(&value_buf) {
                match lines.next() {
                    Some((_, next)) => {
                        value_buf.push(' ');
                        value_buf.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unterminated array for key `{key}`"),
                        })
                    }
                }
            }
            value_text = &value_buf;
            let value = parse_value(value_text).map_err(|message| ConfigError {
                line: lineno,
                message: format!("key `{key}`: {message}"),
            })?;
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(cfg)
    }

    /// The string value at `section.key`, if present.
    pub fn str(&self, section: &str, key: &str) -> Option<&str> {
        match self.sections.get(section)?.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The string-list value at `section.key`; empty if absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v,
            _ => &[],
        }
    }

    /// The severity of `rule.<name>`, defaulting to `error` when the rule
    /// has no `severity` key (invariants are opt-out, not opt-in).
    pub fn severity(&self, rule: &str) -> Severity {
        match self.str(&format!("rule.{rule}"), "severity") {
            Some("off") => Severity::Off,
            Some("warn") => Severity::Warn,
            _ => Severity::Error,
        }
    }

    /// All configured `[rule.…]` section names.
    pub fn rule_sections(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().filter_map(|s| s.strip_prefix("rule."))
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True once every `[` in the text has a matching `]` outside strings.
fn brackets_close(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = parse_str(text) {
        return Ok(Value::Str(s));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_str(part) {
                Some(s) => items.push(s),
                None => return Err(format!("array element `{part}` is not a quoted string")),
            }
        }
        return Ok(Value::List(items));
    }
    Err(format!("unsupported value `{text}`"))
}

fn parse_str(text: &str) -> Option<String> {
    text.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(|s| s.to_string())
}

fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Glob match over `/`-separated relative paths: `*` within a segment,
/// `**` across segments. Used by every path allowlist in `lint.toml`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    fn m(p: &[u8], s: &[u8]) -> bool {
        if p.is_empty() {
            return s.is_empty();
        }
        if p.starts_with(b"**") {
            let rest = if p.len() > 2 && p[2] == b'/' {
                &p[3..]
            } else {
                &p[2..]
            };
            // `**` may swallow any prefix of the remaining path.
            (0..=s.len()).any(|k| m(rest, &s[k..]))
        } else if p[0] == b'*' {
            // Any run (possibly empty) of non-separator characters.
            (0..=s.len())
                .take_while(|&k| k == 0 || s[k - 1] != b'/')
                .any(|k| m(&p[1..], &s[k..]))
        } else {
            !s.is_empty() && p[0] == s[0] && m(&p[1..], &s[1..])
        }
    }
    m(pattern.as_bytes(), path.as_bytes())
}

/// True if `path` matches any of the glob `patterns` (or equals one).
pub fn matches_any(patterns: &[String], path: &str) -> bool {
    patterns.iter().any(|p| p == path || glob_match(p, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_values_and_comments() {
        let text = r#"
# top comment
[workspace]
exclude = ["vendor/**", "target/**"] # trailing

[rule.panic-hygiene]
severity = "warn"
enabled = true

[rule.multi]
files = [
    "a/b.rs",
    "c/d.rs",
]
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.list("workspace", "exclude"), ["vendor/**", "target/**"]);
        assert_eq!(cfg.severity("panic-hygiene"), Severity::Warn);
        assert_eq!(cfg.severity("unknown-rule-defaults-error"), Severity::Error);
        assert_eq!(cfg.list("rule.multi", "files"), ["a/b.rs", "c/d.rs"]);
        assert_eq!(
            cfg.rule_sections().collect::<Vec<_>>(),
            vec!["multi", "panic-hygiene"]
        );
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = Config::parse("[rule.x]\nnot a kv line").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::parse("key = {unsupported}").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[s]\nk = \"a#b\"").unwrap();
        assert_eq!(cfg.str("s", "k"), Some("a#b"));
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("vendor/**", "vendor/rand/src/lib.rs"));
        assert!(glob_match("crates/*/src/lib.rs", "crates/gf/src/lib.rs"));
        assert!(!glob_match("crates/*/src/lib.rs", "crates/gf/src/x/lib.rs"));
        assert!(glob_match(
            "crates/**/fixtures/**",
            "crates/lint/tests/fixtures/a.rs"
        ));
        assert!(glob_match("examples/*.rs", "examples/chaos_repair.rs"));
        assert!(!glob_match("examples/*.rs", "examples/sub/chaos.rs"));
        assert!(glob_match("**/*.rs", "a/b/c.rs"));
        assert!(glob_match(
            "crates/bench/**",
            "crates/bench/src/bin/load_gateway.rs"
        ));
    }
}
