//! The rule catalogue. Each rule is a pure function over one file's
//! lexed/scoped form plus the workspace config; `CONTRIBUTING.md` holds
//! the prose catalogue.

use crate::config::{Config, Severity};
use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::scope::Scopes;
use crate::waiver::WaiverSet;
use crate::walk::FileKind;

pub mod atomics_audit;
pub mod panic_hygiene;
pub mod unsafe_confinement;
pub mod wall_clock;
pub mod wire_protocol;

/// Everything a rule can see about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel: &'a str,
    /// Compilation-unit classification.
    pub kind: FileKind,
    /// Whether rustc compiles this file directly as a crate root.
    pub is_crate_root: bool,
    /// Tokens and comments.
    pub lex: &'a Lexed,
    /// Test-scope flags and inner attributes.
    pub scopes: &'a Scopes,
    /// Inline waivers.
    pub waivers: &'a WaiverSet,
}

impl<'a> FileCtx<'a> {
    /// Pushes a finding at `line` unless an inline waiver covers it.
    pub fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        severity: Severity,
        line: u32,
        message: String,
    ) {
        if self.waivers.covers(rule, line) {
            return;
        }
        out.push(Diagnostic {
            rule,
            severity,
            file: self.rel.to_string(),
            line,
            message,
        });
    }
}

/// A rule's entry point: one file's context + config in, findings out.
pub type RuleFn = fn(&FileCtx<'_>, &Config, Severity, &mut Vec<Diagnostic>);

/// Name and entry point of every rule, in catalogue order.
pub const ALL_RULES: &[(&str, RuleFn)] = &[
    ("unsafe-confinement", unsafe_confinement::check),
    ("panic-hygiene", panic_hygiene::check),
    ("atomics-audit", atomics_audit::check),
    ("wire-protocol", wire_protocol::check),
    ("wall-clock", wall_clock::check),
];
