//! Rule `atomics-audit`: every `Ordering::Relaxed` / `Ordering::SeqCst`
//! site carries a justification comment within 2 lines.
//!
//! `Relaxed` is almost always right in this workspace (statistical
//! counters and histograms) and `SeqCst` is almost always a smell (it
//! hides a reasoning gap behind the strongest fence) — both deserve a
//! sentence at the site saying *why* the chosen ordering is enough.
//! `Acquire`/`Release`/`AcqRel` pairs pass silently: choosing them is
//! itself evidence of thought.
//!
//! The rule matches the qualified form `Ordering::Relaxed`. Importing the
//! variants directly (`use …::Ordering::Relaxed`) is flagged, because a
//! bare `Relaxed` at a call site is invisible to both this audit and a
//! human reviewer.

use crate::config::{Config, Severity};
use crate::diag::Diagnostic;
use crate::rules::FileCtx;
use crate::walk::FileKind;

const RULE: &str = "atomics-audit";

const AUDITED: &[&str] = &["Relaxed", "SeqCst"];

pub(crate) fn check(ctx: &FileCtx<'_>, _cfg: &Config, sev: Severity, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let toks = &ctx.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.scopes.in_test[i] {
            continue;
        }
        // `use … Ordering :: {…}` importing audited variants directly.
        if t.is_ident("use") {
            let mut j = i + 1;
            let mut saw_ordering = false;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].is_ident("Ordering") {
                    saw_ordering = true;
                } else if saw_ordering
                    && toks[j].kind == crate::lexer::TokenKind::Ident
                    && AUDITED.contains(&toks[j].text.as_str())
                {
                    ctx.emit(
                        out,
                        RULE,
                        sev,
                        toks[j].line,
                        format!(
                            "importing `Ordering::{}` hides the ordering at call \
                             sites; use the qualified form",
                            toks[j].text
                        ),
                    );
                }
                j += 1;
            }
            continue;
        }
        // `Ordering :: Relaxed` / `Ordering :: SeqCst`.
        if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let Some(variant) = toks.get(i + 3) else {
                continue;
            };
            if !AUDITED.contains(&variant.text.as_str()) {
                continue;
            }
            let line = variant.line;
            if !ctx.lex.has_comment_in(line.saturating_sub(2), line) {
                ctx.emit(
                    out,
                    RULE,
                    sev,
                    line,
                    format!(
                        "`Ordering::{}` without a justification comment within \
                         2 lines",
                        variant.text
                    ),
                );
            }
        }
    }
}
