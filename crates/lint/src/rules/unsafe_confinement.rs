//! Rule `unsafe-confinement`: `unsafe` lives only in the allowlisted
//! modules, every use is documented, and every other crate root forbids
//! it at the compiler level.
//!
//! Three checks:
//!
//! 1. Any `unsafe` token in a file off `allow_files` is an error —
//!    including in test code: tests have no business with `unsafe`
//!    either.
//! 2. In an allowlisted file, every `unsafe` occurrence must be
//!    documented: a `// SAFETY:` comment on the same line or within the
//!    3 lines above, or (for `unsafe fn`/`unsafe trait` declarations) a
//!    doc comment block containing a `# Safety` section.
//! 3. Every non-test crate root must carry `#![forbid(unsafe_code)]`,
//!    except the roots listed in `unsafe_crate_roots` (the crates that
//!    *contain* the allowlisted modules, which cannot forbid), which must
//!    instead carry `#![deny(unsafe_op_in_unsafe_fn)]` so each unsafe
//!    operation needs its own explicit block.

use crate::config::{matches_any, Config, Severity};
use crate::diag::Diagnostic;
use crate::rules::FileCtx;
use crate::walk::FileKind;

const RULE: &str = "unsafe-confinement";
const SECTION: &str = "rule.unsafe-confinement";

pub(crate) fn check(ctx: &FileCtx<'_>, cfg: &Config, sev: Severity, out: &mut Vec<Diagnostic>) {
    let allow_files = cfg.list(SECTION, "allow_files");
    let unsafe_roots = cfg.list(SECTION, "unsafe_crate_roots");
    let allowed = matches_any(allow_files, ctx.rel);

    check_crate_root_attrs(ctx, unsafe_roots, sev, out);

    let toks = &ctx.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            ctx.emit(
                out,
                RULE,
                sev,
                t.line,
                format!(
                    "`unsafe` outside the allowlisted modules ({})",
                    allow_files.join(", ")
                ),
            );
            continue;
        }
        // Allowlisted file: the use must be documented.
        if has_safety_comment(ctx, t.line) {
            continue;
        }
        let is_decl = toks
            .get(i + 1)
            .is_some_and(|n| n.is_ident("fn") || n.is_ident("trait"));
        if is_decl && doc_block_has_safety_section(ctx, t.line) {
            continue;
        }
        let what = toks
            .get(i + 1)
            .map(|n| n.text.clone())
            .unwrap_or_else(|| "{".into());
        ctx.emit(
            out,
            RULE,
            sev,
            t.line,
            format!(
                "`unsafe {what}` without a `// SAFETY:` comment (same line or \
                 up to 3 lines above{})",
                if is_decl {
                    ", or a `# Safety` doc section"
                } else {
                    ""
                }
            ),
        );
    }
}

/// A `SAFETY:` comment on the token's line or within the 3 lines above.
fn has_safety_comment(ctx: &FileCtx<'_>, line: u32) -> bool {
    let lo = line.saturating_sub(3);
    ctx.lex
        .comments
        .iter()
        .any(|c| c.end_line >= lo && c.line <= line && c.text.contains("SAFETY:"))
}

/// Walks the contiguous doc-comment block directly above `line` looking
/// for a `# Safety` heading (attributes may sit between docs and item).
fn doc_block_has_safety_section(ctx: &FileCtx<'_>, line: u32) -> bool {
    // Find doc comments in the ~16 lines above, contiguous enough: any
    // doc comment whose end is within 16 lines above the declaration and
    // that mentions a Safety heading.
    let lo = line.saturating_sub(16);
    ctx.lex
        .comments
        .iter()
        .any(|c| c.doc && c.end_line >= lo && c.end_line < line && c.text.contains("# Safety"))
}

fn check_crate_root_attrs(
    ctx: &FileCtx<'_>,
    unsafe_roots: &[String],
    sev: Severity,
    out: &mut Vec<Diagnostic>,
) {
    if !ctx.is_crate_root || ctx.kind == FileKind::Test {
        return;
    }
    let attrs = &ctx.scopes.inner_attrs;
    let has = |lint: &str, levels: &[&str]| {
        attrs
            .iter()
            .any(|a| a.contains(lint) && levels.iter().any(|l| a.starts_with(l)))
    };
    if matches_any(unsafe_roots, ctx.rel) {
        if !has("unsafe_op_in_unsafe_fn", &["deny", "forbid"]) {
            ctx.emit(
                out,
                RULE,
                sev,
                1,
                "crate root hosts an allowlisted unsafe module but lacks \
                 `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .into(),
            );
        }
    } else if !has("unsafe_code", &["forbid"]) {
        ctx.emit(
            out,
            RULE,
            sev,
            1,
            "crate root lacks `#![forbid(unsafe_code)]`".into(),
        );
    }
}
