//! Rule `panic-hygiene`: no `unwrap()` / `expect()` / `panic!` / `todo!`
//! / `unimplemented!` in non-test library code.
//!
//! A panic in a serving path takes down a worker (PR 4 taught the pools
//! to fail fast rather than deadlock, but a shed worker is still a
//! failure); library code reports typed errors instead. Applies only to
//! `FileKind::Lib` outside test scope — bins, examples, benches and
//! integration tests may assert freely. Load-bearing exceptions carry an
//! inline waiver naming the invariant, e.g. lock poisoning.

use crate::config::{Config, Severity};
use crate::diag::Diagnostic;
use crate::rules::FileCtx;
use crate::walk::FileKind;

const RULE: &str = "panic-hygiene";

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub(crate) fn check(ctx: &FileCtx<'_>, _cfg: &Config, sev: Severity, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let toks = &ctx.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.scopes.in_test[i] {
            continue;
        }
        // `.unwrap()` / `.expect(` — method-call position only, so
        // `unwrap_or_else` or a local named `unwrap` cannot match.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == crate::lexer::TokenKind::Ident && PANIC_METHODS.contains(&n.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let name = &toks[i + 1];
            ctx.emit(
                out,
                RULE,
                sev,
                name.line,
                format!(
                    "`.{}()` in library code; return a typed error or add a \
                     waiver naming the invariant",
                    name.text
                ),
            );
        }
        // `panic!` / `todo!` / `unimplemented!` macro invocations.
        if t.kind == crate::lexer::TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            // `core::panic!` et al. still match on the final ident; a
            // preceding `.` would be a method call, not a macro.
            if i > 0 && toks[i - 1].is_punct('.') {
                continue;
            }
            ctx.emit(
                out,
                RULE,
                sev,
                t.line,
                format!("`{}!` in library code", t.text),
            );
        }
    }
}
