//! Rule `wall-clock`: `Instant::now` / `SystemTime::now` stay out of
//! protocol and codec logic.
//!
//! Deadline and timing behaviour is testable only when the clock enters
//! as a *value* (a budget, a duration, an injected timestamp), not when
//! logic reads the wall clock itself — a codec that calls `now()` can
//! only be tested with sleeps. The allowlist in
//! `[rule.wall-clock] allow_files` names the seams that legitimately
//! read time: guards, health trackers, the observability layer's
//! timestamping, daemons' pacing, benches, and examples. Everything
//! else in library code must take time as an argument.

use crate::config::{matches_any, Config, Severity};
use crate::diag::Diagnostic;
use crate::rules::FileCtx;
use crate::walk::FileKind;

const RULE: &str = "wall-clock";
const SECTION: &str = "rule.wall-clock";

pub(crate) fn check(ctx: &FileCtx<'_>, cfg: &Config, sev: Severity, out: &mut Vec<Diagnostic>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    if matches_any(cfg.list(SECTION, "allow_files"), ctx.rel) {
        return;
    }
    let toks = &ctx.lex.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.scopes.in_test[i] {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            ctx.emit(
                out,
                RULE,
                sev,
                t.line,
                format!(
                    "`{}::now()` outside the allowlisted clock seams; take \
                     time as a value instead",
                    t.text
                ),
            );
        }
    }
}
