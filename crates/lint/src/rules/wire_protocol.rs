//! Rule `wire-protocol`: hygiene for the wire codec files.
//!
//! Applies only to the files named in `[rule.wire-protocol] files`. Two
//! checks:
//!
//! 1. **Lossy casts** — `as u8/u16/u32/i8/i16/i32/i64/isize/char` in
//!    non-test code is flagged: an `as` cast silently truncates, and a
//!    truncated length or offset on the wire is a data-corruption bug.
//!    Convert to `try_from` (decode paths have a `Result` to land in) or
//!    waive with the invariant that bounds the value. Casts to
//!    `usize`/`u64`/`u128` are widening on every target this workspace
//!    supports (64-bit, compile-time asserted in the protocol files) and
//!    pass silently.
//!
//! 2. **Opcode exhaustiveness** — every `const` whose name starts with a
//!    configured prefix (`OP_`, `ST_`, `STATUS_`) must appear as a match
//!    arm somewhere in the same file (`NAME =>` or `NAME | …`), i.e. the
//!    decoder must handle every constant the encoder can emit. A constant
//!    that is only ever *written* is a decoder gap.

use crate::config::{matches_any, Config, Severity};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileCtx;

const RULE: &str = "wire-protocol";
const SECTION: &str = "rule.wire-protocol";

/// Cast targets that can lose value bits (or, for `char`, panic-free but
/// semantics-bending) and so require justification in codec logic.
const LOSSY_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize", "char",
];

pub(crate) fn check(ctx: &FileCtx<'_>, cfg: &Config, sev: Severity, out: &mut Vec<Diagnostic>) {
    let files = cfg.list(SECTION, "files");
    if !matches_any(files, ctx.rel) {
        return;
    }
    let toks = &ctx.lex.tokens;

    // 1. Lossy casts.
    for (i, t) in toks.iter().enumerate() {
        if ctx.scopes.in_test[i] || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident && LOSSY_TARGETS.contains(&target.text.as_str()) {
            ctx.emit(
                out,
                RULE,
                sev,
                target.line,
                format!(
                    "lossy `as {}` cast in wire-protocol code; use `try_from` \
                     or waive with the bounding invariant",
                    target.text
                ),
            );
        }
    }

    // 2. Opcode exhaustiveness.
    let prefixes = cfg.list(SECTION, "opcode_prefixes");
    if prefixes.is_empty() {
        return;
    }
    // Collect `const NAME: u8 = …;` declarations with a matching prefix.
    let mut consts: Vec<(String, u32)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("const")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && prefixes.iter().any(|p| n.text.starts_with(p))
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            let name = &toks[i + 1];
            consts.push((name.text.clone(), name.line));
        }
    }
    for (name, line) in consts {
        let mut matched = false;
        for (i, t) in toks.iter().enumerate() {
            if !(t.kind == TokenKind::Ident && t.text == name) {
                continue;
            }
            // Skip the declaration itself.
            if i > 0 && toks[i - 1].is_ident("const") {
                continue;
            }
            // Arm position: `NAME =>`, `NAME | …`, or `… | NAME`.
            let next_arrow = toks.get(i + 1).is_some_and(|a| a.is_punct('='))
                && toks.get(i + 2).is_some_and(|b| b.is_punct('>'));
            let or_pattern = toks.get(i + 1).is_some_and(|a| a.is_punct('|'))
                || (i > 0 && toks[i - 1].is_punct('|'));
            if next_arrow || or_pattern {
                matched = true;
                break;
            }
        }
        if !matched {
            ctx.emit(
                out,
                RULE,
                sev,
                line,
                format!(
                    "opcode constant `{name}` is never matched by a decoder arm \
                     in this file — encoder and decoder have diverged"
                ),
            );
        }
    }
}
