//! Test-scope and attribute analysis over the token stream.
//!
//! Rules like panic hygiene apply to *library* code: a `unwrap()` inside a
//! `#[cfg(test)]` module or a `#[test]` fn is fine. This pass walks the
//! tokens once, tracking brace depth, and computes for every token whether
//! it sits inside a test-scoped item. It also collects the crate's inner
//! attributes (`#![…]`), which the unsafe-confinement rule inspects for
//! `forbid(unsafe_code)` / `deny(unsafe_op_in_unsafe_fn)`.
//!
//! An attribute starts a test scope when it is `#[test]`, `#[bench]`, or a
//! `#[cfg(…)]` whose argument mentions `test` (covering `cfg(test)` and
//! `cfg(any(test, …))`). The scope attaches to the next `{ … }` that opens
//! after the attribute; an intervening `;` at the same depth cancels it
//! (e.g. `#[cfg(test)] use foo;`).

use crate::lexer::{Lexed, Token};

/// Result of the scope pass.
#[derive(Debug, Default)]
pub struct Scopes {
    /// For each token index: is it inside a test-scoped item?
    pub in_test: Vec<bool>,
    /// Normalised contents of every inner attribute (`#![…]`), tokens
    /// joined with single spaces, e.g. `"forbid ( unsafe_code )"`.
    pub inner_attrs: Vec<String>,
}

/// True if the attribute content tokens mark a test-only item.
fn is_test_attr(content: &[&Token]) -> bool {
    match content.first() {
        Some(first) if first.is_ident("test") || first.is_ident("bench") => true,
        Some(first) if first.is_ident("cfg") => content.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Runs the scope pass over a lexed file.
pub fn analyze(lex: &Lexed) -> Scopes {
    let toks = &lex.tokens;
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut inner_attrs = Vec::new();

    let mut depth: i32 = 0;
    // Depths at which an active test scope opened its brace.
    let mut test_stack: Vec<i32> = Vec::new();
    // Set when a test attribute was seen and its item's `{` is pending;
    // holds the depth the attribute appeared at.
    let mut pending_test: Option<i32> = None;

    let mut i = 0;
    while i < n {
        let in_test_now = !test_stack.is_empty();
        let t = &toks[i];

        if t.is_punct('#') {
            // `#[…]` outer attribute or `#![…]` inner attribute.
            let (bang, open_at) = if i + 1 < n && toks[i + 1].is_punct('!') {
                (true, i + 2)
            } else {
                (false, i + 1)
            };
            if open_at < n && toks[open_at].is_punct('[') {
                // Find the matching `]`.
                let mut bd = 0i32;
                let mut j = open_at;
                while j < n {
                    if toks[j].is_punct('[') {
                        bd += 1;
                    } else if toks[j].is_punct(']') {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let content: Vec<&Token> = toks[open_at + 1..j.min(n)].iter().collect();
                if bang {
                    inner_attrs.push(
                        content
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect::<Vec<_>>()
                            .join(" "),
                    );
                } else if is_test_attr(&content) {
                    pending_test = Some(depth);
                }
                for flag in &mut in_test[i..=j.min(n - 1)] {
                    *flag = in_test_now;
                }
                i = j + 1;
                continue;
            }
        }

        in_test[i] = in_test_now;
        if t.is_punct('{') {
            if pending_test.take().is_some() {
                test_stack.push(depth);
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if test_stack.last() == Some(&depth) {
                test_stack.pop();
                // The closing brace itself still belongs to the test item.
                in_test[i] = true;
            }
        } else if t.is_punct(';') {
            // A brace-less item (use/const/extern-fn) consumed the
            // attribute without opening a scope.
            if pending_test == Some(depth) {
                pending_test = None;
            }
        }
        i += 1;
    }

    Scopes {
        in_test,
        inner_attrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_flags(src: &str) -> Vec<(String, bool)> {
        let lx = lex(src);
        let sc = analyze(&lx);
        lx.tokens
            .iter()
            .zip(sc.in_test.iter())
            .map(|(t, &f)| (t.text.clone(), f))
            .collect()
    }

    fn flag_of(src: &str, ident: &str) -> bool {
        test_flags(src)
            .into_iter()
            .find(|(t, _)| t == ident)
            .map(|(_, f)| f)
            .unwrap_or_else(|| panic!("ident {ident} not found"))
    }

    #[test]
    fn cfg_test_mod_is_test_scope() {
        let src = r#"
            fn lib_code() { helper(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { target(); }
            }
            fn more_lib() { after(); }
        "#;
        assert!(!flag_of(src, "helper"));
        assert!(flag_of(src, "target"));
        assert!(!flag_of(src, "after"));
    }

    #[test]
    fn test_fn_without_mod_is_test_scope() {
        let src = "#[test]\nfn t() { inner(); }\nfn lib() { outer(); }";
        assert!(flag_of(src, "inner"));
        assert!(!flag_of(src, "outer"));
    }

    #[test]
    fn cfg_any_with_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod m { inner(); }";
        assert!(flag_of(src, "inner"));
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { body(); }";
        assert!(!flag_of(src, "body"));
    }

    #[test]
    fn non_test_cfg_is_not_test_scope() {
        let src = "#[cfg(target_arch = \"x86_64\")]\nmod m { inner(); }";
        assert!(!flag_of(src, "inner"));
    }

    #[test]
    fn inner_attrs_are_collected() {
        let src = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}";
        let sc = analyze(&lex(src));
        assert_eq!(sc.inner_attrs.len(), 2);
        assert!(sc.inner_attrs[0].contains("forbid ( unsafe_code )"));
        assert!(sc.inner_attrs[1].contains("unsafe_op_in_unsafe_fn"));
    }

    #[test]
    fn nested_braces_inside_test_mod_stay_test() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() { if true { deep(); } }
            }
            fn lib() { shallow(); }
        "#;
        assert!(flag_of(src, "deep"));
        assert!(!flag_of(src, "shallow"));
    }
}
