//! The `pbrs-lint` binary: walk the workspace, enforce the invariants,
//! exit nonzero on any error-severity finding.
//!
//! ```text
//! pbrs-lint [--root DIR] [--rule NAME]... [--report FILE] [--list-rules]
//! ```
//!
//! With no `--root`, the workspace root is found by searching upward from
//! the current directory for `lint.toml`.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use pbrs_lint::rules::ALL_RULES;
use pbrs_lint::{find_root, load_config, run_workspace};

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("pbrs-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(next(&mut args, "--root")?)),
            "--report" => report_path = Some(PathBuf::from(next(&mut args, "--report")?)),
            "--rule" => only.push(next(&mut args, "--rule")?),
            "--list-rules" => {
                for (name, _) in ALL_RULES {
                    println!("{name}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!(
                    "pbrs-lint — workspace invariant checker\n\n\
                     USAGE: pbrs-lint [--root DIR] [--rule NAME]... \
                     [--report FILE] [--list-rules]\n\n\
                     Rules and the lint.toml schema are documented in \
                     CONTRIBUTING.md."
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_root(&cwd).ok_or("no lint.toml found here or in any parent directory")?
        }
    };
    for rule in &only {
        if !ALL_RULES.iter().any(|(name, _)| name == rule) {
            return Err(format!("unknown rule `{rule}` (see --list-rules)"));
        }
    }

    let cfg = load_config(&root).map_err(|e| format!("loading lint.toml: {e}"))?;
    let filter = if only.is_empty() {
        None
    } else {
        Some(only.as_slice())
    };
    let report = run_workspace(&root, &cfg, filter)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;

    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = report_path {
        fs::write(&path, &rendered)
            .map_err(|e| format!("writing report {}: {e}", path.display()))?;
    }
    Ok(if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn next(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}
