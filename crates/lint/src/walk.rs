//! Workspace file discovery and classification.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::{matches_any, Config};

/// What kind of compilation unit a file belongs to — rules scope by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/*/src/**`, `src/**` excluding `src/bin`).
    Lib,
    /// A binary root or its modules (`src/bin/**`, `crates/*/src/bin/**`).
    Bin,
    /// An example (`examples/*.rs`).
    Example,
    /// An integration test or bench (`tests/**`, `benches/**`).
    Test,
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Classification.
    pub kind: FileKind,
    /// Whether this file is a crate root rustc compiles directly
    /// (`lib.rs`, `main.rs`, `src/bin/*.rs`, `examples/*.rs`).
    pub is_crate_root: bool,
}

/// Classifies a workspace-relative path. Pure, so fixtures can pretend to
/// be any path.
pub fn classify(rel: &str) -> FileKind {
    let in_tests = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
    if in_tests {
        FileKind::Test
    } else if rel.split('/').any(|seg| seg == "examples") {
        FileKind::Example
    } else if rel.split('/').any(|seg| seg == "bin") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// True for paths rustc compiles as crate roots.
pub fn is_crate_root(rel: &str) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    match segs.as_slice() {
        [.., "src", "lib.rs"] | [.., "src", "main.rs"] => true,
        [.., "src", "bin", f] | [.., "examples", f] => f.ends_with(".rs"),
        // Top-level integration test / bench files are roots too, but the
        // unsafe-confinement root checks deliberately skip Test kind.
        [.., "tests", f] | [.., "benches", f] => f.ends_with(".rs"),
        _ => false,
    }
}

/// Recursively collects every `.rs` file under `root` that is not
/// excluded by `[workspace] exclude`, sorted by path for determinism.
///
/// # Errors
///
/// Propagates filesystem errors other than transient not-found races.
pub fn discover(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let exclude = cfg.list("workspace", "exclude");
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let rel = match path.strip_prefix(root) {
                Ok(rel) => rel.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            // Hidden dirs (.git, .github) hold no Rust sources we lint.
            if rel
                .split('/')
                .next_back()
                .is_some_and(|s| s.starts_with('.'))
            {
                continue;
            }
            if matches_any(exclude, &rel) {
                continue;
            }
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(path);
            } else if rel.ends_with(".rs") {
                out.push(SourceFile {
                    kind: classify(&rel),
                    is_crate_root: is_crate_root(&rel),
                    rel,
                    abs: path,
                });
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/gf/src/simd.rs"), FileKind::Lib);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
        assert_eq!(
            classify("crates/bench/src/bin/load_gateway.rs"),
            FileKind::Bin
        );
        assert_eq!(classify("examples/chaos_repair.rs"), FileKind::Example);
        assert_eq!(classify("crates/gf/tests/properties.rs"), FileKind::Test);
        assert_eq!(classify("crates/erasure/benches/codec.rs"), FileKind::Test);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("crates/gf/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/load_gateway.rs"));
        assert!(is_crate_root("examples/chaos_repair.rs"));
        assert!(is_crate_root("crates/gf/tests/properties.rs"));
        assert!(!is_crate_root("crates/gf/src/simd.rs"));
        assert!(!is_crate_root("crates/store/src/store.rs"));
    }
}
