//! Meta-test: the real workspace passes its own lint.
//!
//! This is the same check CI runs as a blocking job (`cargo run -p
//! pbrs-lint`), wired into `cargo test` so a violation fails the suite
//! even where CI is not in the loop.

use std::path::Path;

use pbrs_lint::{find_root, load_config, run_workspace};

#[test]
fn workspace_passes_its_own_lint() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("lint.toml above crates/lint");
    let cfg = load_config(&root).expect("lint.toml parses");
    let report = run_workspace(&root, &cfg, None).expect("walk the workspace");
    assert!(
        !report.failed(),
        "pbrs-lint found violations in the workspace:\n{}",
        report.render()
    );
    assert!(
        report.files_checked > 100,
        "suspiciously few files walked ({}) — exclude globs may be eating \
         the workspace",
        report.files_checked
    );
}
