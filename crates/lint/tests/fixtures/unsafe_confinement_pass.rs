//! Fixture: `unsafe` inside an allowlisted module, documented — clean.
//! Checked as an `allow_files` path by the driver test.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one byte, so index 0
    // is in bounds.
    unsafe { *bytes.get_unchecked(0) }
}
