//! Fixture: a load-bearing `expect` carrying an inline waiver.

pub fn parse(s: &str) -> u32 {
    s.trim()
        .parse()
        .expect("digits") // pbrs-lint: allow(panic-hygiene) -- fixture: caller validated the input
}
