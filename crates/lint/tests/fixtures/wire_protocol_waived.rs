//! Fixture: a lossy cast waived with the bounding invariant.

pub const OP_PUT: u8 = 1;

pub fn frame_len(body: &[u8]) -> u32 {
    // pbrs-lint: allow(wire-protocol) -- fixture: callers reject bodies over MAX_FRAME
    body.len() as u32
}

pub fn decode(op: u8) -> Result<&'static str, u8> {
    match op {
        OP_PUT => Ok("put"),
        other => Err(other),
    }
}
