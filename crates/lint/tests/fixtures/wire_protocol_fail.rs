//! Fixture: two violations — a lossy `as u32` cast on a length, and an
//! opcode constant the decoder never matches.

pub const OP_PUT: u8 = 1;
pub const OP_GET: u8 = 2;

pub fn frame_len(body: &[u8]) -> u32 {
    body.len() as u32
}

pub fn decode(op: u8) -> Result<&'static str, u8> {
    match op {
        OP_PUT => Ok("put"),
        other => Err(other),
    }
}
