//! Fixture: a wall-clock read silenced by an inline waiver.

use std::time::Instant;

pub fn stamp() -> Instant {
    // pbrs-lint: allow(wall-clock) -- fixture: boundary seam that timestamps arrivals
    Instant::now()
}
