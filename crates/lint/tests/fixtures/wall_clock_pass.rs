//! Fixture: time enters as a value; the only `now()` lives in tests.

use std::time::{Duration, Instant};

pub fn expired(deadline: Instant, now: Instant) -> bool {
    now >= deadline
}

pub fn remaining(deadline: Instant, now: Instant) -> Duration {
    deadline.saturating_duration_since(now)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn reads_the_clock_only_here() {
        let t = Instant::now();
        assert!(!super::expired(t + std::time::Duration::from_secs(1), t));
    }
}
