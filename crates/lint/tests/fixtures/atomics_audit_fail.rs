//! Fixture: two violations — an unjustified `Ordering::SeqCst` and a
//! direct import of an audited variant.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    let _ = Relaxed;

    counter.fetch_add(1, Ordering::SeqCst);
}
