//! Fixture: an audited ordering silenced by an inline waiver instead of
//! a justification comment. The waiver line itself counts as a comment,
//! so this exercises the waiver path explicitly via the rule name.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn stop(flag: &AtomicU64) {
    flag.store(1, Ordering::SeqCst); // pbrs-lint: allow(atomics-audit) -- fixture: once-per-shutdown flag
}
