//! Fixture: clean codec — widening casts only, every opcode constant
//! handled by a decoder arm.

pub const OP_PUT: u8 = 1;
pub const OP_GET: u8 = 2;

pub fn encode(op: u8, len: u32) -> u64 {
    (u64::from(op) << 32) | len as u64
}

pub fn decode(op: u8) -> Result<&'static str, u8> {
    match op {
        OP_PUT => Ok("put"),
        OP_GET => Ok("get"),
        other => Err(other),
    }
}
