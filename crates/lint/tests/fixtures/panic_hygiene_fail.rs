//! Fixture: three violations — `unwrap`, `expect`, and `panic!` in
//! non-test library code.

pub fn parse(s: &str) -> u32 {
    let n: u32 = s.trim().parse().unwrap();
    let m: u32 = s.trim().parse().expect("digits");
    if n != m {
        panic!("impossible");
    }
    n
}
