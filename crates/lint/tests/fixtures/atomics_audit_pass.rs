//! Fixture: audited orderings justified within 2 lines;
//! Acquire/Release pass without comment.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // Relaxed: independent statistics tally, publishes no other memory.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(flag: &AtomicU64) {
    flag.store(1, Ordering::Release);
}

pub fn consume(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
