//! Fixture: typed errors in library code; asserts confined to tests.

pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.trim().parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse("7").unwrap(), 7);
    }
}
