//! Fixture: two violations — `unsafe` outside the allowlist, and the
//! same block missing a SAFETY comment.

pub fn read_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.get_unchecked(0) }
}
