//! Fixture: `unsafe` outside the allowlist, silenced by an inline
//! waiver with a reason.

pub fn read_first(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // pbrs-lint: allow(unsafe-confinement) -- fixture: documents the waiver syntax
    unsafe { *bytes.get_unchecked(0) }
}
