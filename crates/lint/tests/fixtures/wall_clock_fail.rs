//! Fixture: two violations — `Instant::now` and `SystemTime::now` in
//! library logic outside the allowlisted clock seams.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
