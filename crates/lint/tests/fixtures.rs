//! Fixture corpus self-tests: every rule × {pass, fail, waived}.
//!
//! Each fixture is linted in isolation as non-test library code (the
//! driver fakes its path and kind), and then the whole corpus directory
//! is walked like a workspace to prove the binary-level contract: the
//! `_fail` fixtures — and only those — make a run fail.

use std::fs;
use std::path::{Path, PathBuf};

use pbrs_lint::config::Config;
use pbrs_lint::diag::Diagnostic;
use pbrs_lint::walk::FileKind;
use pbrs_lint::{check_source_as, run_workspace};

const RULES: &[&str] = &[
    "unsafe-confinement",
    "panic-hygiene",
    "atomics-audit",
    "wire-protocol",
    "wall-clock",
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixtures_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The corpus plays the role of a workspace: fixture file names stand in
/// for the paths the real `lint.toml` allowlists.
fn corpus_config() -> Config {
    Config::parse(
        r#"
[rule.unsafe-confinement]
allow_files = ["unsafe_confinement_pass.rs"]

[rule.wire-protocol]
files = ["wire_protocol_*.rs"]
opcode_prefixes = ["OP_"]
"#,
    )
    .expect("corpus config parses")
}

/// Lints one fixture as plain (non-crate-root) library source under a
/// single rule.
fn lint_fixture(name: &str, src: &str, rule: &str) -> Vec<Diagnostic> {
    let only = vec![rule.to_string()];
    check_source_as(
        name,
        FileKind::Lib,
        false,
        src,
        &corpus_config(),
        Some(&only),
    )
}

fn fixture_name(rule: &str, variant: &str) -> String {
    format!("{}_{variant}.rs", rule.replace('-', "_"))
}

#[test]
fn every_fail_fixture_trips_its_rule() {
    for rule in RULES {
        let name = fixture_name(rule, "fail");
        let d = lint_fixture(&name, &fixture(&name), rule);
        assert!(
            d.iter().any(|d| d.rule == *rule),
            "{name} should trip {rule}, got {d:?}"
        );
    }
}

#[test]
fn every_pass_fixture_is_clean() {
    for rule in RULES {
        let name = fixture_name(rule, "pass");
        let d = lint_fixture(&name, &fixture(&name), rule);
        assert!(d.is_empty(), "{name} should be clean, got {d:?}");
    }
}

#[test]
fn every_waived_fixture_is_clean() {
    for rule in RULES {
        let name = fixture_name(rule, "waived");
        let d = lint_fixture(&name, &fixture(&name), rule);
        assert!(
            d.is_empty(),
            "{name} waiver should silence {rule}, got {d:?}"
        );
    }
}

/// Deleting the waiver comment must resurface the finding — proof the
/// waiver (not an accident of the fixture) is what silences it.
#[test]
fn stripping_waivers_resurfaces_findings() {
    for rule in RULES {
        let name = fixture_name(rule, "waived");
        let stripped: String = fixture(&name)
            .lines()
            .map(|l| match l.find("// pbrs-lint:") {
                Some(at) => &l[..at],
                None => l,
            })
            .fold(String::new(), |mut s, l| {
                s.push_str(l);
                s.push('\n');
                s
            });
        let d = lint_fixture(&name, &stripped, rule);
        assert!(
            d.iter().any(|d| d.rule == *rule),
            "{name} without its waiver should trip {rule}, got {d:?}"
        );
    }
}

/// A waiver with no `-- reason` is itself an error: exemptions are
/// written and argued for, never free.
#[test]
fn reasonless_waiver_is_an_error() {
    let src = "pub fn f(x: Option<u8>) -> u8 {\n\
               // pbrs-lint: allow(panic-hygiene)\n\
               x.unwrap()\n\
               }\n";
    let d = check_source_as(
        "reasonless.rs",
        FileKind::Lib,
        false,
        src,
        &corpus_config(),
        None,
    );
    assert!(
        d.iter().any(|d| d.message.contains("reason")),
        "reasonless waiver should be rejected, got {d:?}"
    );
}

/// The binary-level contract, end to end: walking the corpus directory
/// fails, every finding points into a `_fail` fixture, and each rule
/// contributes at least one.
#[test]
fn corpus_walk_fails_only_on_fail_fixtures() {
    let report =
        run_workspace(&fixtures_dir(), &corpus_config(), None).expect("walk the fixture corpus");
    assert!(
        report.failed(),
        "fail fixtures must make the run exit nonzero"
    );
    assert_eq!(
        report.files_checked,
        RULES.len() * 3,
        "one fixture per rule and variant"
    );
    for d in &report.diagnostics {
        assert!(
            d.file.contains("_fail"),
            "finding outside the fail fixtures: {d}"
        );
    }
    for rule in RULES {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == *rule),
            "{rule} found nothing in its fail fixture"
        );
    }
}
