//! Property-based tests for the Piggybacked-RS code: the MDS property, the
//! equivalence of efficient repair and full decode, and the cost model.

use pbrs_core::{PiggybackDesign, PiggybackedRs, SavingsReport};
use pbrs_erasure::{CodeParams, ErasureCode, ReedSolomon, Stripe};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_data(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.random()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MDS: any pattern of up to r erasures is recoverable bit-exactly.
    #[test]
    fn piggybacked_rs_is_mds(
        k in 2usize..12,
        r in 1usize..6,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len * 2);
        let mut stripe = Stripe::from_encoding(&code, &data).unwrap();
        let original = stripe.clone().into_shards().unwrap();
        let erase = rng.random_range(0..=r);
        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(erase) {
            stripe.erase(i);
        }
        stripe.reconstruct(&code).unwrap();
        prop_assert_eq!(stripe.into_shards().unwrap(), original);
    }

    /// More than r erasures must be rejected.
    #[test]
    fn piggybacked_rs_rejects_excess_erasures(
        k in 2usize..10,
        r in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, 8);
        let mut stripe = Stripe::from_encoding(&code, &data).unwrap();
        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(r + 1) {
            stripe.erase(i);
        }
        prop_assert!(stripe.reconstruct(&code).is_err());
    }

    /// Single-shard repair (efficient or fallback) always reproduces the
    /// exact shard and never costs more than the RS baseline.
    #[test]
    fn single_repair_is_exact_and_never_worse_than_rs(
        k in 2usize..12,
        r in 1usize..6,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len * 2);
        let stripe = Stripe::from_encoding(&code, &data).unwrap();
        let all = stripe.clone().into_shards().unwrap();
        let target = rng.random_range(0..k + r);
        let mut degraded = stripe;
        degraded.erase(target);
        let outcome = code.repair(target, degraded.as_slice()).unwrap();
        prop_assert_eq!(&outcome.shard, &all[target]);
        prop_assert!(outcome.metrics.bytes_transferred <= (k * len * 2) as u64);
        // And the plan's accounting matches the executed metrics.
        let plan = code.repair_plan(target, &degraded.availability()).unwrap();
        prop_assert_eq!(outcome.metrics.bytes_transferred, plan.bytes_read(len * 2));
        prop_assert_eq!(outcome.metrics.helpers, plan.helper_count());
    }

    /// The efficient repair path and a full-stripe decode agree on the
    /// rebuilt shard for every piggybacked data shard.
    #[test]
    fn efficient_repair_agrees_with_full_decode(
        k in 2usize..12,
        r in 2usize..6,
        len in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len * 2);
        let stripe = Stripe::from_encoding(&code, &data).unwrap();
        let target = rng.random_range(0..k);
        let mut degraded = stripe.clone();
        degraded.erase(target);
        prop_assume!(code.efficient_repair_available(target, &degraded.availability()));
        let outcome = code.repair(target, degraded.as_slice()).unwrap();

        let mut full = degraded.clone();
        full.reconstruct(&code).unwrap();
        prop_assert_eq!(full.shard(target).unwrap(), &outcome.shard[..]);
    }

    /// Parity shard 0 of the piggybacked code always equals the plain RS
    /// parity over the two substripes (it must stay clean for repairs).
    #[test]
    fn clean_parity_matches_plain_rs(
        k in 2usize..10,
        r in 1usize..5,
        len in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len * 2);
        let pb_parity = code.encode(&data).unwrap();
        let a: Vec<Vec<u8>> = data.iter().map(|d| d[..len].to_vec()).collect();
        let b: Vec<Vec<u8>> = data.iter().map(|d| d[len..].to_vec()).collect();
        let pa = rs.encode(&a).unwrap();
        let pb = rs.encode(&b).unwrap();
        prop_assert_eq!(&pb_parity[0][..len], &pa[0][..]);
        prop_assert_eq!(&pb_parity[0][len..], &pb[0][..]);
        // Every parity's a-half is the plain RS parity (piggybacks only touch
        // the b-half).
        for j in 0..r {
            prop_assert_eq!(&pb_parity[j][..len], &pa[j][..]);
        }
    }

    /// The analytical savings report agrees with the executed repair cost for
    /// every shard of a random (k, r).
    #[test]
    fn savings_report_matches_executed_repairs(
        k in 2usize..10,
        r in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let report = SavingsReport::for_params(k, r).unwrap();
        let len = 16usize;
        let data = random_data(&mut rng, k, len);
        let stripe = Stripe::from_encoding(&code, &data).unwrap();
        for target in 0..k + r {
            let mut degraded = stripe.clone();
            degraded.erase(target);
            let outcome = code.repair(target, degraded.as_slice()).unwrap();
            let expected_bytes = (report.per_shard[target].shards_downloaded * len as f64).round() as u64;
            prop_assert_eq!(outcome.metrics.bytes_transferred, expected_bytes);
        }
        // Savings are monotone in the sense that no shard does worse than RS.
        for c in &report.per_shard {
            prop_assert!(c.saving_vs_rs >= 0.0);
            prop_assert!(c.shards_downloaded <= k as f64 + 1e-12);
        }
    }

    /// Custom designs that cover only part of the data still give an MDS code
    /// whose covered shards repair cheaply and uncovered shards cost k.
    #[test]
    fn partial_designs_are_valid_codes(
        k in 3usize..9,
        r in 2usize..5,
        covered in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = CodeParams::new(k, r).unwrap();
        let covered = covered.min(k);
        // Put `covered` shards in the first group, leave the rest uncovered.
        let mut groups = vec![Vec::new(); r - 1];
        groups[0] = (0..covered).collect();
        let design = PiggybackDesign::from_groups(params, groups).unwrap();
        let code = PiggybackedRs::with_design(design).unwrap();

        let data = random_data(&mut rng, k, 12);
        let mut stripe = Stripe::from_encoding(&code, &data).unwrap();
        let original = stripe.clone().into_shards().unwrap();
        // MDS check on a random r-erasure pattern.
        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(r) {
            stripe.erase(i);
        }
        stripe.reconstruct(&code).unwrap();
        prop_assert_eq!(stripe.into_shards().unwrap(), original);

        // Cost structure.
        for target in 0..k {
            let mut available = vec![true; k + r];
            available[target] = false;
            let plan = code.repair_plan(target, &available).unwrap();
            if target < covered {
                let expect = (k as f64 + covered as f64) / 2.0;
                prop_assert!((plan.total_fraction() - expect).abs() < 1e-12);
            } else {
                prop_assert!((plan.total_fraction() - k as f64).abs() < 1e-12);
            }
        }
    }
}
