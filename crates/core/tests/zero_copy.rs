//! Equivalence of the Piggybacked-RS zero-copy API and the legacy
//! owned-`Vec` API, byte-for-byte, across a `(k, r)` grid and odd
//! (even-aligned) shard lengths — including the substripe-narrowing decode
//! and the download-efficient repair path.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_core::{registry, PiggybackedRs};
use pbrs_erasure::{ErasureCode, ShardBuffer, ShardSetMut};

fn random_data(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.random()).collect())
        .collect()
}

fn full_stripe(code: &PiggybackedRs, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let parity = code.encode(data).unwrap();
    data.iter().cloned().chain(parity).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode_into writes exactly the bytes encode returns, over stale
    /// parity buffers.
    #[test]
    fn encode_into_agrees_with_legacy(
        k in 2usize..12,
        r in 1usize..6,
        half in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, half * 2);
        let legacy = code.encode(&data).unwrap();

        let packed = ShardBuffer::from_shards(&data).unwrap();
        let shard_len = half * 2;
        let mut parity_buf = vec![0xEEu8; r * shard_len];
        let mut parity = ShardSetMut::new(&mut parity_buf, r, shard_len).unwrap();
        code.encode_into(&packed.as_set(), &mut parity).unwrap();
        for (j, expect) in legacy.iter().enumerate() {
            prop_assert_eq!(
                &parity_buf[j * shard_len..(j + 1) * shard_len],
                &expect[..],
                "parity {}",
                j
            );
        }
    }

    /// reconstruct_in_place agrees with reconstruct for any erasure pattern
    /// up to r, with garbage in the missing slots, and never touches
    /// surviving shards.
    #[test]
    fn reconstruct_in_place_agrees_with_legacy(
        k in 2usize..12,
        r in 1usize..6,
        half in 1usize..16,
        erasures in 0usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, half * 2);
        let full = full_stripe(&code, &data);
        let n = k + r;

        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let missing: Vec<usize> = indices.into_iter().take(erasures.min(r)).collect();

        let mut legacy: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &i in &missing {
            legacy[i] = None;
        }
        code.reconstruct(&mut legacy).unwrap();

        let mut packed = ShardBuffer::from_shards(&full).unwrap();
        let mut present = vec![true; n];
        for &i in &missing {
            present[i] = false;
            packed.shard_mut(i).fill(0xDD);
        }
        code.reconstruct_in_place(&mut packed.as_set_mut(), &present).unwrap();
        for (i, expect) in full.iter().enumerate() {
            prop_assert_eq!(packed.shard(i), &expect[..], "shard {}", i);
        }
    }

    /// Over-erased stripes fail in place exactly like the legacy path, and
    /// surviving shards (including piggybacked parities, which the decode
    /// temporarily toggles) are left bit-identical.
    #[test]
    fn in_place_failure_restores_survivors(
        k in 2usize..10,
        r in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, 8);
        let full = full_stripe(&code, &data);
        let n = k + r;

        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let missing: Vec<usize> = indices.into_iter().take(r + 1).collect();
        let mut packed = ShardBuffer::from_shards(&full).unwrap();
        let mut present = vec![true; n];
        for &i in &missing {
            present[i] = false;
        }
        prop_assert!(code
            .reconstruct_in_place(&mut packed.as_set_mut(), &present)
            .is_err());
        for i in 0..n {
            if present[i] {
                prop_assert_eq!(packed.shard(i), &full[i][..], "survivor {}", i);
            }
        }
    }

    /// repair_into agrees with repair for every shard position — covered
    /// data shards (the efficient path), uncovered data shards, and
    /// parities.
    #[test]
    fn repair_into_agrees_with_legacy(
        k in 2usize..12,
        r in 1usize..6,
        half in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = random_data(&mut rng, k, half * 2);
        let full = full_stripe(&code, &data);
        let packed = ShardBuffer::from_shards(&full).unwrap();
        for target in 0..k + r {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[target] = None;
            let legacy = code.repair(target, &shards).unwrap();

            let mut out = vec![0xAAu8; half * 2];
            code.repair_into(target, &packed.as_set(), &mut out).unwrap();
            prop_assert_eq!(&out, &legacy.shard, "target {}", target);
            prop_assert_eq!(&out, &full[target], "target {}", target);
        }
    }
}

/// Registry-built boxed codes expose the zero-copy API through the trait
/// object, end to end.
#[test]
fn boxed_code_runs_zero_copy_round_trip() {
    let code = registry::build_str("piggyback-10-4").unwrap();
    let mut stripe = ShardBuffer::zeroed(14, 32);
    for i in 0..10 {
        for (j, b) in stripe.shard_mut(i).iter_mut().enumerate() {
            *b = ((i * 13 + j * 7 + 3) % 256) as u8;
        }
    }
    {
        let (data, mut parity) = stripe.split_mut(10);
        code.encode_into(&data, &mut parity).unwrap();
    }
    let original = stripe.clone();

    // Single-shard repair through the view API.
    let mut out = vec![0u8; 32];
    code.repair_into(3, &stripe.as_set(), &mut out).unwrap();
    assert_eq!(out, original.shard(3));

    // Full in-place reconstruction of r failures.
    let mut present = vec![true; 14];
    for lost in [0, 5, 11, 13] {
        present[lost] = false;
        stripe.shard_mut(lost).fill(0);
    }
    code.reconstruct_in_place(&mut stripe.as_set_mut(), &present)
        .unwrap();
    assert_eq!(stripe, original);
}

/// The unaligned-length rejection applies to the view API exactly as it
/// does to the legacy API (granularity 2 for the piggybacked code).
#[test]
fn view_api_rejects_unaligned_lengths() {
    let code = PiggybackedRs::new(4, 2).unwrap();
    let data_buf = vec![0u8; 4 * 7];
    let data = pbrs_erasure::ShardSet::new(&data_buf, 4, 7).unwrap();
    let mut parity_buf = vec![0u8; 2 * 7];
    let mut parity = ShardSetMut::new(&mut parity_buf, 2, 7).unwrap();
    assert!(matches!(
        code.encode_into(&data, &mut parity),
        Err(pbrs_erasure::CodeError::UnalignedShard {
            len: 7,
            granularity: 2
        })
    ));
}
