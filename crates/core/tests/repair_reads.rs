//! The `repair_reads` contract: for every code in the registry, with only
//! the target shard missing, `repair_into` depends on *no byte outside the
//! declared ranges* — a caller that materialises only those ranges still
//! gets the exact shard back, and the ranges' byte total matches the
//! repair plan's fraction pricing.
//!
//! The `pbrs-store` crate's degraded reads and repair daemon read exactly
//! these ranges from chunk files *into a scratch stripe reused across
//! stripes*, so this test is the safety net under its partial-read I/O.
//! Crucially, the bytes outside the declared ranges are filled with
//! garbage, not zeros: every `repair_into` is XOR-linear, so an undeclared
//! read of a zeroed range would contribute nothing and escape detection —
//! garbage is what actually sits there when the store's scratch holds a
//! previous stripe.

use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_core::registry;
use pbrs_erasure::{total_read_bytes, ErasureCode, ShardBuffer};

fn encoded_stripe(code: &dyn ErasureCode, shard_len: usize, rng: &mut StdRng) -> ShardBuffer {
    let params = code.params();
    let mut stripe = ShardBuffer::zeroed(params.total_shards(), shard_len);
    for i in 0..params.data_shards() {
        for byte in stripe.shard_mut(i) {
            *byte = rng.random();
        }
    }
    let (data, mut parity) = stripe.split_mut(params.data_shards());
    code.encode_into(&data, &mut parity).unwrap();
    stripe
}

#[test]
fn repair_into_reads_only_the_declared_ranges() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for spec in registry::known_specs() {
        let code = registry::build(&spec).unwrap();
        let n = code.params().total_shards();
        let shard_len = 64 * code.granularity();
        let stripe = encoded_stripe(code.as_ref(), shard_len, &mut rng);

        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let reads = code.repair_reads(target, &available, shard_len).unwrap();

            // The ranges must price exactly like the plan.
            let plan = code.repair_plan(target, &available).unwrap();
            assert_eq!(
                total_read_bytes(&reads),
                plan.bytes_read(shard_len),
                "{spec} target {target}: ranges disagree with the plan's bytes"
            );
            for read in &reads {
                assert_ne!(read.shard, target, "{spec}: a plan never reads the target");
                assert!(read.len > 0 && read.end() <= shard_len, "{spec}: bad range");
            }

            // Materialise *only* the declared ranges; everything else is
            // garbage (including the whole shards the plan does not touch),
            // as in the store's reused scratch stripe. Zeros would be
            // XOR-invisible and could not catch an undeclared read.
            let mut sparse = ShardBuffer::zeroed(n, shard_len);
            for shard in 0..n {
                for byte in sparse.shard_mut(shard) {
                    *byte = rng.random();
                }
            }
            for read in &reads {
                sparse.shard_mut(read.shard)[read.offset..read.end()]
                    .copy_from_slice(&stripe.shard(read.shard)[read.offset..read.end()]);
            }
            let mut out = vec![0u8; shard_len];
            code.repair_into(target, &sparse.as_set(), &mut out)
                .unwrap();
            assert_eq!(
                out,
                stripe.shard(target),
                "{spec} target {target}: repair from sparse ranges diverged"
            );
        }
    }
}

/// The ranked companion contract: whatever helper choice
/// `repair_reads_ranked` makes under an adversarial preference,
/// `repair_from_reads` rebuilds the exact shard from *only* those ranges
/// (everything else garbage), and the preference can only steer choice, not
/// inflate cost.
#[test]
fn ranked_reads_and_repair_from_reads_agree() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for spec in registry::known_specs() {
        let code = registry::build(&spec).unwrap();
        let n = code.params().total_shards();
        let shard_len = 64 * code.granularity();
        let stripe = encoded_stripe(code.as_ref(), shard_len, &mut rng);

        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let canonical = code.repair_reads(target, &available, shard_len).unwrap();
            // Prefer *high* shard indices — the opposite of the canonical
            // first-k choice, so codes with helper freedom must move.
            let rank = |shard: usize| (n - shard) as u64;
            let ranked = code
                .repair_reads_ranked(target, &available, shard_len, &rank)
                .unwrap();
            assert_eq!(
                total_read_bytes(&ranked),
                total_read_bytes(&canonical),
                "{spec} target {target}: preference must not change the cost"
            );

            let mut sparse = ShardBuffer::zeroed(n, shard_len);
            for shard in 0..n {
                for byte in sparse.shard_mut(shard) {
                    *byte = rng.random();
                }
            }
            for read in &ranked {
                sparse.shard_mut(read.shard)[read.offset..read.end()]
                    .copy_from_slice(&stripe.shard(read.shard)[read.offset..read.end()]);
            }
            let mut out = vec![0u8; shard_len];
            code.repair_from_reads(target, &ranked, &sparse.as_set(), &mut out)
                .unwrap();
            assert_eq!(
                out,
                stripe.shard(target),
                "{spec} target {target}: ranked repair from sparse ranges diverged"
            );
        }
    }
}

/// Codes with helper freedom (RS, replication) must actually honour the
/// preference; structurally-fixed plans may ignore it.
#[test]
fn rs_and_replication_honour_helper_preference() {
    let code = registry::build_str("rs-10-4").unwrap();
    let mut available = vec![true; 14];
    available[0] = false;
    // Rank helpers 4..14 cheap, 1..4 expensive: an MDS code can satisfy the
    // whole repair from the 10 cheap helpers.
    let rank = |shard: usize| u64::from(shard < 4);
    let reads = code.repair_reads_ranked(0, &available, 64, &rank).unwrap();
    let shards: Vec<usize> = reads.iter().map(|r| r.shard).collect();
    assert_eq!(shards, (4..14).collect::<Vec<_>>());

    let rep = registry::build_str("rep-3").unwrap();
    let mut available = vec![true; 3];
    available[0] = false;
    let prefer_last = |shard: usize| (3 - shard) as u64;
    let reads = rep
        .repair_reads_ranked(0, &available, 64, &prefer_last)
        .unwrap();
    assert_eq!(reads.len(), 1);
    assert_eq!(
        reads[0].shard, 2,
        "the preferred replica is the copy source"
    );
}

/// A read set naming the target shard itself must be rejected — otherwise
/// the "rebuild" would copy the stale slot being repaired.
#[test]
fn repair_from_reads_rejects_reads_of_the_target() {
    use pbrs_erasure::ShardRead;
    for spec in ["rs-10-4", "rep-3"] {
        let code = registry::build_str(spec).unwrap();
        let n = code.params().total_shards();
        let shard_len = 64 * code.granularity();
        let stripe = ShardBuffer::zeroed(n, shard_len);
        let mut out = vec![0u8; shard_len];
        let poisoned: Vec<ShardRead> = (0..code.params().data_shards())
            .map(|shard| ShardRead::whole(shard, shard_len))
            .collect();
        // Target 0 appears in its own read set.
        assert!(
            code.repair_from_reads(0, &poisoned, &stripe.as_set(), &mut out)
                .is_err(),
            "{spec}: reads naming the target must be rejected"
        );
        // Out-of-range helper shards are errors, not panics.
        let bogus = [ShardRead::whole(n + 3, shard_len)];
        assert!(
            code.repair_from_reads(0, &bogus, &stripe.as_set(), &mut out)
                .is_err(),
            "{spec}: out-of-range reads must be rejected"
        );
    }
}

#[test]
fn repair_reads_rejects_bad_inputs() {
    for spec in registry::known_specs() {
        let code = registry::build(&spec).unwrap();
        let n = code.params().total_shards();
        let mut available = vec![true; n];
        available[0] = false;
        // Unaligned shard length.
        assert!(code.repair_reads(0, &available, 0).is_err(), "{spec}");
        if code.granularity() > 1 {
            assert!(code.repair_reads(0, &available, 63).is_err(), "{spec}");
        }
        // Target not actually missing.
        assert!(code.repair_reads(1, &available, 64).is_err(), "{spec}");
        // Out-of-range target.
        assert!(code.repair_reads(n, &available, 64).is_err(), "{spec}");
        // Degraded masks are rejected: the ranges describe `repair_into`'s
        // fixed read set, which assumes every non-target shard is valid.
        let mut degraded = available.clone();
        degraded[n - 1] = false;
        assert!(
            code.repair_reads(0, &degraded, 64 * code.granularity())
                .is_err(),
            "{spec}: a second missing shard must be rejected"
        );
    }
}

#[test]
fn piggyback_reads_are_half_shards_for_data_targets() {
    let code = registry::build_str("piggyback-10-4").unwrap();
    let shard_len = 128;
    for target in 0..10 {
        let mut available = vec![true; 14];
        available[target] = false;
        let reads = code.repair_reads(target, &available, shard_len).unwrap();
        // Clean parity and carrier contribute second halves only.
        assert!(
            reads
                .iter()
                .filter(|r| r.shard >= 10)
                .all(|r| r.offset == shard_len / 2 && r.len == shard_len / 2),
            "target {target}"
        );
        // Some data helpers are half reads, the group peers whole reads.
        assert!(reads.iter().any(|r| r.len == shard_len / 2));
        assert!(reads.iter().any(|r| r.len == shard_len));
        // Fewer bytes than the RS baseline of k whole shards.
        assert!(total_read_bytes(&reads) < 10 * shard_len as u64);
    }
    // Parity targets fall back to whole-shard reads of the k data shards.
    for target in 10..14 {
        let mut available = vec![true; 14];
        available[target] = false;
        let reads = code.repair_reads(target, &available, shard_len).unwrap();
        assert_eq!(total_read_bytes(&reads), 10 * shard_len as u64);
        assert!(reads.iter().all(|r| r.offset == 0 && r.len == shard_len));
    }
}
