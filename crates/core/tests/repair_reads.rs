//! The `repair_reads` contract: for every code in the registry, with only
//! the target shard missing, `repair_into` depends on *no byte outside the
//! declared ranges* — a caller that materialises only those ranges still
//! gets the exact shard back, and the ranges' byte total matches the
//! repair plan's fraction pricing.
//!
//! The `pbrs-store` crate's degraded reads and repair daemon read exactly
//! these ranges from chunk files *into a scratch stripe reused across
//! stripes*, so this test is the safety net under its partial-read I/O.
//! Crucially, the bytes outside the declared ranges are filled with
//! garbage, not zeros: every `repair_into` is XOR-linear, so an undeclared
//! read of a zeroed range would contribute nothing and escape detection —
//! garbage is what actually sits there when the store's scratch holds a
//! previous stripe.

use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_core::registry;
use pbrs_erasure::{total_read_bytes, ErasureCode, ShardBuffer};

fn encoded_stripe(code: &dyn ErasureCode, shard_len: usize, rng: &mut StdRng) -> ShardBuffer {
    let params = code.params();
    let mut stripe = ShardBuffer::zeroed(params.total_shards(), shard_len);
    for i in 0..params.data_shards() {
        for byte in stripe.shard_mut(i) {
            *byte = rng.random();
        }
    }
    let (data, mut parity) = stripe.split_mut(params.data_shards());
    code.encode_into(&data, &mut parity).unwrap();
    stripe
}

#[test]
fn repair_into_reads_only_the_declared_ranges() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for spec in registry::known_specs() {
        let code = registry::build(&spec).unwrap();
        let n = code.params().total_shards();
        let shard_len = 64 * code.granularity();
        let stripe = encoded_stripe(code.as_ref(), shard_len, &mut rng);

        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let reads = code.repair_reads(target, &available, shard_len).unwrap();

            // The ranges must price exactly like the plan.
            let plan = code.repair_plan(target, &available).unwrap();
            assert_eq!(
                total_read_bytes(&reads),
                plan.bytes_read(shard_len),
                "{spec} target {target}: ranges disagree with the plan's bytes"
            );
            for read in &reads {
                assert_ne!(read.shard, target, "{spec}: a plan never reads the target");
                assert!(read.len > 0 && read.end() <= shard_len, "{spec}: bad range");
            }

            // Materialise *only* the declared ranges; everything else is
            // garbage (including the whole shards the plan does not touch),
            // as in the store's reused scratch stripe. Zeros would be
            // XOR-invisible and could not catch an undeclared read.
            let mut sparse = ShardBuffer::zeroed(n, shard_len);
            for shard in 0..n {
                for byte in sparse.shard_mut(shard) {
                    *byte = rng.random();
                }
            }
            for read in &reads {
                sparse.shard_mut(read.shard)[read.offset..read.end()]
                    .copy_from_slice(&stripe.shard(read.shard)[read.offset..read.end()]);
            }
            let mut out = vec![0u8; shard_len];
            code.repair_into(target, &sparse.as_set(), &mut out)
                .unwrap();
            assert_eq!(
                out,
                stripe.shard(target),
                "{spec} target {target}: repair from sparse ranges diverged"
            );
        }
    }
}

#[test]
fn repair_reads_rejects_bad_inputs() {
    for spec in registry::known_specs() {
        let code = registry::build(&spec).unwrap();
        let n = code.params().total_shards();
        let mut available = vec![true; n];
        available[0] = false;
        // Unaligned shard length.
        assert!(code.repair_reads(0, &available, 0).is_err(), "{spec}");
        if code.granularity() > 1 {
            assert!(code.repair_reads(0, &available, 63).is_err(), "{spec}");
        }
        // Target not actually missing.
        assert!(code.repair_reads(1, &available, 64).is_err(), "{spec}");
        // Out-of-range target.
        assert!(code.repair_reads(n, &available, 64).is_err(), "{spec}");
        // Degraded masks are rejected: the ranges describe `repair_into`'s
        // fixed read set, which assumes every non-target shard is valid.
        let mut degraded = available.clone();
        degraded[n - 1] = false;
        assert!(
            code.repair_reads(0, &degraded, 64 * code.granularity())
                .is_err(),
            "{spec}: a second missing shard must be rejected"
        );
    }
}

#[test]
fn piggyback_reads_are_half_shards_for_data_targets() {
    let code = registry::build_str("piggyback-10-4").unwrap();
    let shard_len = 128;
    for target in 0..10 {
        let mut available = vec![true; 14];
        available[target] = false;
        let reads = code.repair_reads(target, &available, shard_len).unwrap();
        // Clean parity and carrier contribute second halves only.
        assert!(
            reads
                .iter()
                .filter(|r| r.shard >= 10)
                .all(|r| r.offset == shard_len / 2 && r.len == shard_len / 2),
            "target {target}"
        );
        // Some data helpers are half reads, the group peers whole reads.
        assert!(reads.iter().any(|r| r.len == shard_len / 2));
        assert!(reads.iter().any(|r| r.len == shard_len));
        // Fewer bytes than the RS baseline of k whole shards.
        assert!(total_read_bytes(&reads) < 10 * shard_len as u64);
    }
    // Parity targets fall back to whole-shard reads of the k data shards.
    for target in 10..14 {
        let mut available = vec![true; 14];
        available[target] = false;
        let reads = code.repair_reads(target, &available, shard_len).unwrap();
        assert_eq!(total_read_bytes(&reads), 10 * shard_len as u64);
        assert!(reads.iter().all(|r| r.offset == 0 && r.len == shard_len));
    }
}
