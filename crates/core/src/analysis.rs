//! Theoretical repair-cost analysis.
//!
//! Section 3 of the paper claims that the proposed (10, 4) Piggybacked-RS
//! code "saves around 30 % on average in the amount of read and download for
//! recovery of single block failures" while remaining storage optimal. The
//! functions here compute those numbers exactly — per shard, averaged over
//! data shards, and averaged over all shards — for any `(k, r)` and any
//! piggyback design, directly from the repair plans the code actually uses.

use pbrs_erasure::{CodeError, ErasureCode, ReedSolomon};

use crate::code::PiggybackedRs;

/// Repair cost of one shard, in units of the stripe's logical data size
/// (`k` shard-equivalents = 1.0, matching how the paper reports "amount of
/// read and download").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeRepairCost {
    /// The shard index within the stripe.
    pub shard: usize,
    /// `true` for data shards, `false` for parity shards.
    pub is_data: bool,
    /// Number of helper shards contacted.
    pub helpers: usize,
    /// Shard-equivalents downloaded (e.g. 6.5 for a (10,4) piggybacked data
    /// shard in a group of 3; 10.0 under plain RS).
    pub shards_downloaded: f64,
    /// Fraction of the stripe's logical size downloaded
    /// (`shards_downloaded / k`).
    pub fraction_of_stripe: f64,
    /// Relative saving versus the `(k, r)` RS baseline (which always
    /// downloads `k` shards), in `[0, 1)`.
    pub saving_vs_rs: f64,
}

/// Single-failure repair costs of a Piggybacked-RS code, shard by shard,
/// with the averages the paper quotes.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsReport {
    /// Data shards `k`.
    pub k: usize,
    /// Parity shards `r`.
    pub r: usize,
    /// Per-shard repair costs (length `k + r`).
    pub per_shard: Vec<NodeRepairCost>,
    /// Average saving versus RS over the `k` data shards only.
    pub average_data_saving: f64,
    /// Average saving versus RS over all `k + r` shards, weighting every
    /// shard equally (the warehouse cluster places every block of a stripe
    /// on its own machine, so each is equally likely to need recovery).
    pub average_all_saving: f64,
    /// Average shard-equivalents downloaded per single-shard repair,
    /// over all shards.
    pub average_shards_downloaded: f64,
}

impl SavingsReport {
    /// Computes the report for a Piggybacked-RS code by interrogating its
    /// single-failure repair plans.
    ///
    /// # Errors
    ///
    /// Propagates plan-construction failures (which cannot happen for valid
    /// codes with a single failure, but the signature stays honest).
    pub fn for_code(code: &PiggybackedRs) -> Result<Self, CodeError> {
        let params = code.params();
        let k = params.data_shards();
        let n = params.total_shards();
        let mut per_shard = Vec::with_capacity(n);
        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let plan = code.repair_plan(target, &available)?;
            let shards_downloaded = plan.total_fraction();
            per_shard.push(NodeRepairCost {
                shard: target,
                is_data: params.is_data_shard(target),
                helpers: plan.helper_count(),
                shards_downloaded,
                fraction_of_stripe: shards_downloaded / k as f64,
                saving_vs_rs: 1.0 - shards_downloaded / k as f64,
            });
        }
        let data_costs: Vec<&NodeRepairCost> = per_shard.iter().filter(|c| c.is_data).collect();
        let average_data_saving =
            data_costs.iter().map(|c| c.saving_vs_rs).sum::<f64>() / data_costs.len() as f64;
        let average_all_saving =
            per_shard.iter().map(|c| c.saving_vs_rs).sum::<f64>() / per_shard.len() as f64;
        let average_shards_downloaded =
            per_shard.iter().map(|c| c.shards_downloaded).sum::<f64>() / per_shard.len() as f64;
        Ok(SavingsReport {
            k,
            r: params.parity_shards(),
            per_shard,
            average_data_saving,
            average_all_saving,
            average_shards_downloaded,
        })
    }

    /// Computes the report for the default balanced design of a `(k, r)`
    /// code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for unsupported parameters.
    pub fn for_params(k: usize, r: usize) -> Result<Self, CodeError> {
        SavingsReport::for_code(&PiggybackedRs::new(k, r)?)
    }

    /// Average shard-equivalents downloaded for a single *data* shard repair.
    pub fn average_data_shards_downloaded(&self) -> f64 {
        let data: Vec<&NodeRepairCost> = self.per_shard.iter().filter(|c| c.is_data).collect();
        data.iter().map(|c| c.shards_downloaded).sum::<f64>() / data.len() as f64
    }

    /// Renders a small human-readable table (one row per shard) for reports.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("shard  kind    helpers  downloaded(shards)  saving_vs_rs\n");
        for c in &self.per_shard {
            out.push_str(&format!(
                "{:>5}  {:<6}  {:>7}  {:>18.2}  {:>11.1}%\n",
                c.shard,
                if c.is_data { "data" } else { "parity" },
                c.helpers,
                c.shards_downloaded,
                c.saving_vs_rs * 100.0
            ));
        }
        out.push_str(&format!(
            "average saving over data shards : {:.1}%\n",
            self.average_data_saving * 100.0
        ));
        out.push_str(&format!(
            "average saving over all shards  : {:.1}%\n",
            self.average_all_saving * 100.0
        ));
        out
    }
}

/// A side-by-side comparison of storage and repair characteristics of one
/// code against the `(k, r)` RS baseline, used by the paper-style comparison
/// table (experiment E7).
#[derive(Debug, Clone, PartialEq)]
pub struct CodeComparison {
    /// Display name of the code.
    pub name: String,
    /// Storage overhead (total/data).
    pub storage_overhead: f64,
    /// Guaranteed fault tolerance (shards).
    pub fault_tolerance: usize,
    /// Whether the code is MDS (storage optimal).
    pub is_mds: bool,
    /// Average fraction of the stripe's logical size read+downloaded to
    /// repair a single shard (averaged over all shards).
    pub average_repair_fraction: f64,
    /// Average number of whole shards (blocks) downloaded to repair a single
    /// shard — the unit the paper's cross-rack traffic measurements use
    /// (10 blocks for the production RS code, 1 for replication).
    pub average_blocks_per_repair: f64,
}

impl CodeComparison {
    /// Builds the comparison row for any erasure code.
    pub fn of<C: ErasureCode + ?Sized>(code: &C) -> Self {
        let fraction = code.average_repair_fraction();
        CodeComparison {
            name: code.name(),
            storage_overhead: code.storage_overhead(),
            fault_tolerance: code.fault_tolerance(),
            is_mds: code.is_mds(),
            average_repair_fraction: fraction,
            average_blocks_per_repair: fraction * code.params().data_shards() as f64,
        }
    }

    /// Relative repair-traffic saving of this code versus a `(k, r)` RS code
    /// (which always reads the whole logical stripe).
    pub fn saving_vs_rs(&self) -> f64 {
        1.0 - self.average_repair_fraction
    }
}

/// Convenience: the average single-failure repair saving (over data shards)
/// of the balanced `(k, r)` Piggybacked-RS design, as a fraction in `[0, 1)`.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] for unsupported parameters.
pub fn data_shard_saving(k: usize, r: usize) -> Result<f64, CodeError> {
    Ok(SavingsReport::for_params(k, r)?.average_data_saving)
}

/// The RS baseline comparison row for `(k, r)`.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] for unsupported parameters.
pub fn rs_baseline(k: usize, r: usize) -> Result<CodeComparison, CodeError> {
    Ok(CodeComparison::of(&ReedSolomon::new(k, r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_erasure::{Lrc, LrcParams, Replication};

    #[test]
    fn facebook_savings_match_paper_claims() {
        let report = SavingsReport::for_params(10, 4).unwrap();
        assert_eq!(report.k, 10);
        assert_eq!(report.r, 4);
        assert_eq!(report.per_shard.len(), 14);

        // Per-shard numbers: groups of size 4, 3, 3 -> 7.0 or 6.5 shards for
        // data, 10 for parity.
        for c in &report.per_shard {
            if c.is_data {
                assert!(c.shards_downloaded == 7.0 || c.shards_downloaded == 6.5);
                assert_eq!(c.helpers, 11);
            } else {
                assert_eq!(c.shards_downloaded, 10.0);
                assert_eq!(c.helpers, 10);
            }
        }

        // Paper §3.1-3.2: "saves around 30% on average ... for recovery of
        // single block failures". The data-shard average is 33%, the
        // all-shard average ~24%; both bracket the paper's rounded claim.
        assert!(
            (report.average_data_saving - 0.33).abs() < 0.005,
            "{}",
            report.average_data_saving
        );
        assert!(
            (report.average_all_saving - 0.2357).abs() < 0.005,
            "{}",
            report.average_all_saving
        );
        assert!(report.average_data_saving >= 0.30);
        let avg_data_dl = report.average_data_shards_downloaded();
        assert!((avg_data_dl - 6.7).abs() < 1e-9);
    }

    #[test]
    fn toy_example_savings() {
        // The paper's Fig. 4 example: only shard 0 is piggybacked, so only it
        // saves (3 bytes instead of 4 = 25%).
        let report = SavingsReport::for_code(&crate::toy::toy_example()).unwrap();
        assert_eq!(report.per_shard[0].shards_downloaded, 1.5);
        assert!((report.per_shard[0].saving_vs_rs - 0.25).abs() < 1e-12);
        assert_eq!(report.per_shard[1].shards_downloaded, 2.0);
        assert_eq!(report.per_shard[2].shards_downloaded, 2.0);
        assert_eq!(report.per_shard[3].shards_downloaded, 2.0);
    }

    #[test]
    fn savings_grow_with_more_parities() {
        // More parities -> smaller groups -> bigger savings.
        let s2 = data_shard_saving(10, 2).unwrap();
        let s3 = data_shard_saving(10, 3).unwrap();
        let s4 = data_shard_saving(10, 4).unwrap();
        let s5 = data_shard_saving(10, 5).unwrap();
        assert!(s2 < s3 && s3 < s4 && s4 < s5);
        // r = 2 puts every data shard in one group of size k, so the single
        // piggybacked parity buys nothing; larger r stays below the 50%
        // asymptote of two-substripe piggybacking.
        assert_eq!(s2, 0.0);
        for s in [s2, s3, s4, s5] {
            assert!((0.0..0.5).contains(&s));
        }
    }

    #[test]
    fn single_parity_code_has_no_savings() {
        let report = SavingsReport::for_params(6, 1).unwrap();
        assert_eq!(report.average_data_saving, 0.0);
        assert_eq!(report.average_all_saving, 0.0);
        assert_eq!(report.average_shards_downloaded, 6.0);
    }

    #[test]
    fn table_rendering_contains_summary_lines() {
        let report = SavingsReport::for_params(10, 4).unwrap();
        let table = report.to_table();
        assert!(table.contains("average saving over data shards"));
        assert!(table.contains("average saving over all shards"));
        assert_eq!(table.lines().count(), 1 + 14 + 2);
    }

    #[test]
    fn comparison_rows_reflect_the_papers_tradeoffs() {
        let rs = rs_baseline(10, 4).unwrap();
        let pb = CodeComparison::of(&PiggybackedRs::facebook());
        let lrc = CodeComparison::of(&Lrc::new(LrcParams::XORBAS).unwrap());
        let rep = CodeComparison::of(&Replication::triple());

        // Storage optimality: RS and Piggybacked-RS are MDS at 1.4x; LRC needs
        // 1.6x; replication needs 3x.
        assert!(rs.is_mds && pb.is_mds && !lrc.is_mds && rep.is_mds);
        assert!((rs.storage_overhead - 1.4).abs() < 1e-12);
        assert!((pb.storage_overhead - 1.4).abs() < 1e-12);
        assert!((lrc.storage_overhead - 1.6).abs() < 1e-12);
        assert!((rep.storage_overhead - 3.0).abs() < 1e-12);

        // Repair traffic per failed block: RS downloads 10 blocks;
        // Piggybacked-RS ~7.6; LRC fewer still; replication exactly 1.
        assert!((rs.average_repair_fraction - 1.0).abs() < 1e-12);
        assert!((rs.average_blocks_per_repair - 10.0).abs() < 1e-12);
        assert!(pb.average_repair_fraction < rs.average_repair_fraction);
        assert!(pb.saving_vs_rs() > 0.2);
        assert!(pb.average_blocks_per_repair < 8.0 && pb.average_blocks_per_repair > 7.0);
        assert!(lrc.average_blocks_per_repair < pb.average_blocks_per_repair);
        assert!((rep.average_blocks_per_repair - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_propagate() {
        assert!(SavingsReport::for_params(0, 4).is_err());
        assert!(data_shard_saving(300, 300).is_err());
        assert!(rs_baseline(0, 1).is_err());
    }
}
