//! The Piggybacked-RS code: encoding, MDS reconstruction and
//! download-efficient single-shard repair.

use pbrs_gf::slice_ops;

use pbrs_erasure::params::{validate_data_shards, validate_present_shards};
use pbrs_erasure::{
    default_repair_plan, CodeError, CodeParams, ErasureCode, FetchRequest, Fraction, ReedSolomon,
    RepairOutcome, RepairPlan,
};

use crate::design::PiggybackDesign;

/// A `(k, r)` Piggybacked-RS code.
///
/// Each shard holds the symbols of **two** byte-level substripes,
/// concatenated: the first `len/2` bytes belong to substripe `a` and the
/// last `len/2` bytes to substripe `b`. Data shards store `(a_i, b_i)`
/// unchanged (the code is systematic). Parity shard `j` stores
/// `(f_j(a), f_j(b) + g_j(a))` where `f_j` is the underlying Reed–Solomon
/// parity function and `g_j(a)` is the XOR of the first-substripe symbols of
/// the design's group `j − 1` (`g_0 = 0`, i.e. parity 0 stays clean).
///
/// The code keeps both properties the paper insists on:
///
/// * **storage optimality (MDS)** — any `r` shard losses are recoverable and
///   no extra storage is used;
/// * **parameter flexibility** — any `(k, r)` with `k + r ≤ 256` works.
///
/// and reduces the data read and downloaded for single data-shard repair
/// from `k` shard-equivalents to `(k + |group|) / 2`.
///
/// # Example
///
/// ```
/// use pbrs_core::PiggybackedRs;
/// use pbrs_erasure::{ErasureCode, Stripe};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// let code = PiggybackedRs::new(10, 4)?;
/// let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 32]).collect();
/// let mut stripe = Stripe::from_encoding(&code, &data)?;
///
/// // Lose a data shard and repair it with ~30% less download than RS:
/// // shard 5 belongs to a piggyback group of 3, so the repair reads
/// // (10 + 3) / 2 = 6.5 shard-equivalents instead of 10.
/// stripe.erase(5);
/// let outcome = code.repair(5, stripe.as_slice())?;
/// assert_eq!(outcome.shard, data[5]);
/// assert_eq!(outcome.metrics.bytes_transferred, (6.5 * 32.0) as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PiggybackedRs {
    params: CodeParams,
    design: PiggybackDesign,
    rs: ReedSolomon,
}

impl PiggybackedRs {
    /// Creates a `(k, r)` Piggybacked-RS code with the default balanced
    /// piggyback design.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for unsupported `(k, r)`.
    pub fn new(k: usize, r: usize) -> Result<Self, CodeError> {
        let params = CodeParams::new(k, r)?;
        Self::with_design(PiggybackDesign::balanced(params))
    }

    /// Creates the code from an explicit piggyback design.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if the design's parameters are
    /// unsupported.
    pub fn with_design(design: PiggybackDesign) -> Result<Self, CodeError> {
        let params = design.params();
        let rs = ReedSolomon::from_params(params);
        Ok(PiggybackedRs { params, design, rs })
    }

    /// The `(10, 4)` code proposed in the paper as a drop-in replacement for
    /// the warehouse cluster's RS code.
    pub fn facebook() -> Self {
        Self::new(10, 4).expect("(10, 4) is always valid")
    }

    /// The piggyback design in use.
    pub fn design(&self) -> &PiggybackDesign {
        &self.design
    }

    /// The underlying Reed–Solomon code applied to each substripe.
    pub fn inner_rs(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Returns `true` if the download-efficient repair path applies to
    /// `target` under the given availability mask: the target must be a
    /// piggybacked data shard, and all other data shards, the clean parity
    /// and the carrier parity must be available.
    pub fn efficient_repair_available(&self, target: usize, available: &[bool]) -> bool {
        if available.len() != self.params.total_shards() {
            return false;
        }
        if target >= self.params.data_shards() || available[target] {
            return false;
        }
        let Some(carrier) = self.design.carrier_parity(target) else {
            return false;
        };
        let clean_parity = self.params.data_shards();
        let data_ok = (0..self.params.data_shards()).all(|i| i == target || available[i]);
        data_ok && available[clean_parity] && available[carrier]
    }

    /// Splits a shard into its `(a, b)` substripe halves.
    fn halves(shard: &[u8]) -> (&[u8], &[u8]) {
        let half = shard.len() / 2;
        (&shard[..half], &shard[half..])
    }

    /// XOR of the first-substripe (`a`) halves of the given data shards.
    fn piggyback_of_group(group: &[usize], a_shards: &[Vec<u8>], half: usize) -> Vec<u8> {
        let mut out = vec![0u8; half];
        for &i in group {
            slice_ops::xor_slice(&mut out, &a_shards[i]);
        }
        out
    }

    /// Executes the download-efficient repair of a piggybacked data shard.
    fn repair_efficient(
        &self,
        target: usize,
        shards: &[Option<Vec<u8>>],
        plan: &RepairPlan,
        shard_len: usize,
    ) -> Result<RepairOutcome, CodeError> {
        let k = self.params.data_shards();
        let n = self.params.total_shards();
        let clean_parity = k;
        let carrier = self
            .design
            .carrier_parity(target)
            .expect("efficient repair requires a carrier parity");
        let peers = self
            .design
            .group_peers(target)
            .expect("efficient repair requires a piggyback group");

        // Step 1: decode substripe b from the k-1 surviving data shards'
        // b-halves plus the clean parity's b-half (which carries no
        // piggyback).
        let mut b_opt: Vec<Option<Vec<u8>>> = vec![None; n];
        for i in 0..k {
            if i != target {
                let shard = shards[i].as_deref().expect("plan checked availability");
                b_opt[i] = Some(Self::halves(shard).1.to_vec());
            }
        }
        {
            let shard = shards[clean_parity]
                .as_deref()
                .expect("plan checked availability");
            b_opt[clean_parity] = Some(Self::halves(shard).1.to_vec());
        }
        self.rs.reconstruct(&mut b_opt)?;
        let b_target = b_opt[target].clone().expect("reconstruct fills all shards");
        let f_carrier_b = b_opt[carrier]
            .as_deref()
            .expect("reconstruct fills all shards");

        // Step 2: strip the carrier parity's piggyback to obtain the group
        // sum of substripe-a symbols, then subtract the peers' a-halves.
        let carrier_shard = shards[carrier]
            .as_deref()
            .expect("plan checked availability");
        let mut a_target = Self::halves(carrier_shard).1.to_vec();
        slice_ops::xor_slice(&mut a_target, f_carrier_b);
        for &p in &peers {
            let peer_shard = shards[p].as_deref().expect("plan checked availability");
            slice_ops::xor_slice(&mut a_target, Self::halves(peer_shard).0);
        }

        let mut shard = a_target;
        shard.extend_from_slice(&b_target);
        Ok(RepairOutcome {
            target,
            shard,
            metrics: plan.metrics(shard_len),
        })
    }
}

impl ErasureCode for PiggybackedRs {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn name(&self) -> String {
        format!(
            "Piggybacked-RS({}, {})",
            self.params.data_shards(),
            self.params.parity_shards()
        )
    }

    fn granularity(&self) -> usize {
        2
    }

    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let k = self.params.data_shards();
        let shard_len = validate_data_shards(data, k, self.granularity())?;
        let half = shard_len / 2;

        let a_shards: Vec<Vec<u8>> = data.iter().map(|d| Self::halves(d).0.to_vec()).collect();
        let b_shards: Vec<Vec<u8>> = data.iter().map(|d| Self::halves(d).1.to_vec()).collect();
        let pa = self.rs.encode(&a_shards)?;
        let pb = self.rs.encode(&b_shards)?;

        let mut parity = Vec::with_capacity(self.params.parity_shards());
        for j in 0..self.params.parity_shards() {
            let mut shard = pa[j].clone();
            let mut second = pb[j].clone();
            if j >= 1 {
                let group = &self.design.groups()[j - 1];
                let piggyback = Self::piggyback_of_group(group, &a_shards, half);
                slice_ops::xor_slice(&mut second, &piggyback);
            }
            shard.extend_from_slice(&second);
            parity.push(shard);
        }
        Ok(parity)
    }

    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        let n = self.params.total_shards();
        let k = self.params.data_shards();
        let shard_len = validate_present_shards(shards, n, self.granularity())?;
        let half = shard_len / 2;
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }

        // Substripe a is a plain RS codeword: parity first-halves carry no
        // piggyback.
        let mut a_opt: Vec<Option<Vec<u8>>> = shards
            .iter()
            .map(|s| s.as_deref().map(|shard| Self::halves(shard).0.to_vec()))
            .collect();
        self.rs.reconstruct(&mut a_opt)?;
        let a_all: Vec<Vec<u8>> = a_opt
            .into_iter()
            .map(|s| s.expect("reconstruct fills all shards"))
            .collect();

        // Substripe b: strip piggybacks from the surviving parity shards
        // using the now-known substripe-a data symbols.
        let piggybacks: Vec<Vec<u8>> = (0..self.params.parity_shards())
            .map(|j| {
                if j >= 1 {
                    Self::piggyback_of_group(&self.design.groups()[j - 1], &a_all[..k], half)
                } else {
                    vec![0u8; half]
                }
            })
            .collect();
        let mut b_opt: Vec<Option<Vec<u8>>> = Vec::with_capacity(n);
        for (i, s) in shards.iter().enumerate() {
            b_opt.push(s.as_deref().map(|shard| {
                let mut b = Self::halves(shard).1.to_vec();
                if i >= k {
                    slice_ops::xor_slice(&mut b, &piggybacks[i - k]);
                }
                b
            }));
        }
        self.rs.reconstruct(&mut b_opt)?;
        let b_all: Vec<Vec<u8>> = b_opt
            .into_iter()
            .map(|s| s.expect("reconstruct fills all shards"))
            .collect();

        // Reassemble the missing shards (re-applying piggybacks to parities).
        for i in 0..n {
            if shards[i].is_none() {
                let mut shard = a_all[i].clone();
                let mut second = b_all[i].clone();
                if i >= k {
                    slice_ops::xor_slice(&mut second, &piggybacks[i - k]);
                }
                shard.extend_from_slice(&second);
                shards[i] = Some(shard);
            }
        }
        Ok(())
    }

    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        let n = self.params.total_shards();
        if available.len() != n {
            return Err(CodeError::ShardCountMismatch {
                expected: n,
                actual: available.len(),
            });
        }
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        if available[target] {
            return Err(CodeError::TargetNotMissing { index: target });
        }

        if self.efficient_repair_available(target, available) {
            let k = self.params.data_shards();
            let carrier = self.design.carrier_parity(target).expect("checked");
            let peers = self.design.group_peers(target).expect("checked");
            let mut fetches = Vec::with_capacity(k + peers.len() + 1);
            for i in 0..k {
                if i == target {
                    continue;
                }
                let fraction = if peers.contains(&i) {
                    // Both the b-half (substripe decode) and the a-half
                    // (piggyback subtraction) of group peers are needed.
                    Fraction::ONE
                } else {
                    Fraction::HALF
                };
                fetches.push(FetchRequest { shard: i, fraction });
            }
            fetches.push(FetchRequest {
                shard: k,
                fraction: Fraction::HALF,
            });
            fetches.push(FetchRequest {
                shard: carrier,
                fraction: Fraction::HALF,
            });
            return Ok(RepairPlan { target, fetches });
        }

        default_repair_plan(self.params, target, available)
    }

    fn repair(&self, target: usize, shards: &[Option<Vec<u8>>]) -> Result<RepairOutcome, CodeError> {
        let n = self.params.total_shards();
        let shard_len = validate_present_shards(shards, n, self.granularity())?;
        let available: Vec<bool> = shards.iter().map(|s| s.is_some()).collect();
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        if available[target] {
            return Err(CodeError::TargetNotMissing { index: target });
        }
        let plan = self.repair_plan(target, &available)?;
        if self.efficient_repair_available(target, &available) {
            return self.repair_efficient(target, shards, &plan, shard_len);
        }
        // Fallback: full-stripe decode restricted to the shards the plan reads.
        let mut working: Vec<Option<Vec<u8>>> = vec![None; n];
        for fetch in &plan.fetches {
            working[fetch.shard] = shards[fetch.shard].clone();
        }
        self.reconstruct(&mut working)?;
        let shard = working[target]
            .take()
            .ok_or(CodeError::ReconstructionFailed {
                context: "target shard missing after reconstruction",
            })?;
        Ok(RepairOutcome {
            target,
            shard,
            metrics: plan.metrics(shard_len),
        })
    }

    fn is_mds(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_erasure::Stripe;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 41 + j * 13 + 7) % 256) as u8).collect())
            .collect()
    }

    fn full_stripe(code: &PiggybackedRs, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let parity = code.encode(data).unwrap();
        data.iter().chain(parity.iter()).cloned().collect()
    }

    #[test]
    fn facebook_constructor_and_metadata() {
        let code = PiggybackedRs::facebook();
        assert_eq!(code.name(), "Piggybacked-RS(10, 4)");
        assert_eq!(code.params(), CodeParams::FACEBOOK);
        assert_eq!(code.granularity(), 2);
        assert!(code.is_mds());
        assert_eq!(code.fault_tolerance(), 4);
        assert!((code.storage_overhead() - 1.4).abs() < 1e-12);
        assert_eq!(code.design().groups().len(), 3);
        assert_eq!(code.inner_rs().params(), CodeParams::FACEBOOK);
    }

    #[test]
    fn parity_zero_matches_plain_rs_and_others_differ() {
        let code = PiggybackedRs::new(4, 3).unwrap();
        let data = sample_data(4, 16);
        let parity = code.encode(&data).unwrap();

        // Build the plain RS parities over the two substripes for comparison.
        let rs = ReedSolomon::new(4, 3).unwrap();
        let a: Vec<Vec<u8>> = data.iter().map(|d| d[..8].to_vec()).collect();
        let b: Vec<Vec<u8>> = data.iter().map(|d| d[8..].to_vec()).collect();
        let pa = rs.encode(&a).unwrap();
        let pb = rs.encode(&b).unwrap();

        // Parity 0 is exactly the RS parity of both substripes.
        assert_eq!(&parity[0][..8], &pa[0][..]);
        assert_eq!(&parity[0][8..], &pb[0][..]);
        // Piggybacked parities share the a-half but differ in the b-half.
        for j in 1..3 {
            assert_eq!(&parity[j][..8], &pa[j][..]);
            assert_ne!(&parity[j][8..], &pb[j][..]);
        }
        // And the difference is exactly the group XOR.
        let group0 = &code.design().groups()[0]; // rides on parity 1
        let mut expect = pb[1].clone();
        for &i in group0 {
            for (e, s) in expect.iter_mut().zip(a[i].iter()) {
                *e ^= s;
            }
        }
        assert_eq!(&parity[1][8..], &expect[..]);
    }

    #[test]
    fn unaligned_shards_rejected() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 15);
        assert!(matches!(
            code.encode(&data),
            Err(CodeError::UnalignedShard { len: 15, granularity: 2 })
        ));
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 64);
        let mut all = full_stripe(&code, &data);
        assert!(code.verify(&all).unwrap());
        all[11][40] ^= 1;
        assert!(!code.verify(&all).unwrap());
    }

    #[test]
    fn mds_reconstruction_for_all_r_failure_patterns_small_code() {
        // (4, 2): 15 patterns of exactly 2 failures, plus all single failures.
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 12);
        let all = full_stripe(&code, &data);
        let n = 6;
        for i in 0..n {
            for j in i..n {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                code.reconstruct(&mut shards).unwrap();
                for (idx, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[idx], "failures ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn mds_reconstruction_facebook_code_spot_checks() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 32);
        let all = full_stripe(&code, &data);
        let patterns: Vec<Vec<usize>> = vec![
            vec![0],
            vec![13],
            vec![0, 1, 2, 3],
            vec![10, 11, 12, 13],
            vec![0, 5, 11, 13],
            vec![2, 7, 9, 12],
            vec![6, 10],
        ];
        for pattern in patterns {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            code.reconstruct(&mut shards).unwrap();
            for (idx, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &all[idx], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn too_many_failures_rejected() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let all = full_stripe(&code, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards),
            Err(CodeError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn efficient_repair_plan_costs_for_facebook_code() {
        let code = PiggybackedRs::facebook();
        // Group sizes are 4, 3, 3 -> repair fractions (10+4)/2 = 7 and
        // (10+3)/2 = 6.5 shard-equivalents.
        for target in 0..10 {
            let mut available = vec![true; 14];
            available[target] = false;
            let plan = code.repair_plan(target, &available).unwrap();
            let group_len = code.design().groups()[code.design().group_of(target).unwrap()].len();
            let expect = (10.0 + group_len as f64) / 2.0;
            assert!((plan.total_fraction() - expect).abs() < 1e-12, "target {target}");
            // Helpers: k-1 data + clean parity + carrier parity.
            assert_eq!(plan.helper_count(), 11);
        }
        // Parity shards fall back to the RS plan: 10 whole shards.
        for target in 10..14 {
            let mut available = vec![true; 14];
            available[target] = false;
            let plan = code.repair_plan(target, &available).unwrap();
            assert!((plan.total_fraction() - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn efficient_repair_recovers_exact_bytes_every_data_shard() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 64);
        let all = full_stripe(&code, &data);
        for target in 0..14 {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            shards[target] = None;
            let outcome = code.repair(target, &shards).unwrap();
            assert_eq!(outcome.shard, all[target], "target {target}");
            if target < 10 {
                let group_len =
                    code.design().groups()[code.design().group_of(target).unwrap()].len();
                let expect_bytes = ((10 - group_len) as u64 * 32) + (group_len as u64 - 1) * 64
                    + 32
                    + 32;
                assert_eq!(outcome.metrics.bytes_transferred, expect_bytes);
                assert_eq!(outcome.metrics.helpers, 11);
            } else {
                assert_eq!(outcome.metrics.bytes_transferred, 10 * 64);
                assert_eq!(outcome.metrics.helpers, 10);
            }
        }
    }

    #[test]
    fn efficient_repair_detection() {
        let code = PiggybackedRs::facebook();
        let mut available = vec![true; 14];
        available[0] = false;
        assert!(code.efficient_repair_available(0, &available));
        // Clean parity missing -> no efficient repair.
        available[10] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[10] = true;
        // Carrier parity missing -> no efficient repair.
        available[11] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[11] = true;
        // Another data shard missing -> no efficient repair.
        available[5] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[5] = true;
        // Parity shards never take the efficient path.
        available[12] = false;
        assert!(!code.efficient_repair_available(12, &available));
        // Available targets are never "repairable".
        assert!(!code.efficient_repair_available(1, &available));
        // Wrong mask length.
        assert!(!code.efficient_repair_available(0, &[false; 3]));
    }

    #[test]
    fn degraded_repair_falls_back_to_full_decode() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 32);
        let all = full_stripe(&code, &data);
        // Two failures: the target and its carrier parity.
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[11] = None;
        let outcome = code.repair(0, &shards).unwrap();
        assert_eq!(outcome.shard, all[0]);
        // Fallback cost: k whole shards.
        assert_eq!(outcome.metrics.bytes_transferred, 10 * 32);
    }

    #[test]
    fn repair_error_paths() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let all = full_stripe(&code, &data);
        let shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        assert!(matches!(
            code.repair(0, &shards),
            Err(CodeError::TargetNotMissing { index: 0 })
        ));
        assert!(matches!(
            code.repair(99, &shards),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        let mut available = vec![true; 6];
        available[0] = false;
        assert!(matches!(
            code.repair_plan(99, &available),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        assert!(matches!(
            code.repair_plan(0, &[true; 3]),
            Err(CodeError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn average_repair_fraction_improves_on_rs_by_about_a_quarter() {
        let code = PiggybackedRs::facebook();
        let rs = ReedSolomon::facebook();
        let pb = code.average_repair_fraction();
        let rs_frac = rs.average_repair_fraction();
        assert!((rs_frac - 1.0).abs() < 1e-12);
        // (6 * 6.5 + 4 * 7 + 4 * 10) / (14 * 10) ≈ 0.764
        assert!((pb - 0.7642857142857142).abs() < 1e-9, "got {pb}");
    }

    #[test]
    fn works_with_stripe_helper_and_arbitrary_parameters() {
        for (k, r) in [(2usize, 2usize), (5, 3), (6, 4), (12, 4), (10, 2)] {
            let code = PiggybackedRs::new(k, r).unwrap();
            let data = sample_data(k, 20);
            let mut stripe = Stripe::from_encoding(&code, &data).unwrap();
            let original = stripe.clone().into_shards().unwrap();
            // Erase r shards (the last r, mixing data and parity).
            for i in 0..r {
                stripe.erase(k + r - 1 - i);
            }
            stripe.reconstruct(&code).unwrap();
            assert_eq!(stripe.into_shards().unwrap(), original, "({k},{r})");
        }
    }

    #[test]
    fn single_parity_code_degenerates_to_rs_costs() {
        let code = PiggybackedRs::new(6, 1).unwrap();
        let data = sample_data(6, 10);
        let all = full_stripe(&code, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[2] = None;
        let outcome = code.repair(2, &shards).unwrap();
        assert_eq!(outcome.shard, all[2]);
        assert_eq!(outcome.metrics.bytes_transferred, 6 * 10);
        assert!((code.average_repair_fraction() - 1.0).abs() < 1e-12);
    }
}
