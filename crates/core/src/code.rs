//! The Piggybacked-RS code: encoding, MDS reconstruction and
//! download-efficient single-shard repair.

use pbrs_gf::slice_ops;

use pbrs_erasure::decode;
use pbrs_erasure::params::{validate_encode_views, validate_repair_views, validate_stripe_view};
use pbrs_erasure::views::{ShardSet, ShardSetMut};
use pbrs_erasure::{
    default_repair_plan, CodeError, CodeParams, ErasureCode, FetchRequest, Fraction, ReedSolomon,
    RepairPlan, ShardRead,
};

use crate::design::PiggybackDesign;

/// A `(k, r)` Piggybacked-RS code.
///
/// Each shard holds the symbols of **two** byte-level substripes,
/// concatenated: the first `len/2` bytes belong to substripe `a` and the
/// last `len/2` bytes to substripe `b`. Data shards store `(a_i, b_i)`
/// unchanged (the code is systematic). Parity shard `j` stores
/// `(f_j(a), f_j(b) + g_j(a))` where `f_j` is the underlying Reed–Solomon
/// parity function and `g_j(a)` is the XOR of the first-substripe symbols of
/// the design's group `j − 1` (`g_0 = 0`, i.e. parity 0 stays clean).
///
/// The code keeps both properties the paper insists on:
///
/// * **storage optimality (MDS)** — any `r` shard losses are recoverable and
///   no extra storage is used;
/// * **parameter flexibility** — any `(k, r)` with `k + r ≤ 256` works.
///
/// and reduces the data read and downloaded for single data-shard repair
/// from `k` shard-equivalents to `(k + |group|) / 2`.
///
/// # Example
///
/// ```
/// use pbrs_core::PiggybackedRs;
/// use pbrs_erasure::{ErasureCode, Stripe};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// let code = PiggybackedRs::new(10, 4)?;
/// let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 32]).collect();
/// let mut stripe = Stripe::from_encoding(&code, &data)?;
///
/// // Lose a data shard and repair it with ~30% less download than RS:
/// // shard 5 belongs to a piggyback group of 3, so the repair reads
/// // (10 + 3) / 2 = 6.5 shard-equivalents instead of 10.
/// stripe.erase(5);
/// let outcome = code.repair(5, stripe.as_slice())?;
/// assert_eq!(outcome.shard, data[5]);
/// assert_eq!(outcome.metrics.bytes_transferred, (6.5 * 32.0) as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PiggybackedRs {
    params: CodeParams,
    design: PiggybackDesign,
    rs: ReedSolomon,
}

impl PiggybackedRs {
    /// Creates a `(k, r)` Piggybacked-RS code with the default balanced
    /// piggyback design.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for unsupported `(k, r)`.
    pub fn new(k: usize, r: usize) -> Result<Self, CodeError> {
        let params = CodeParams::new(k, r)?;
        Self::with_design(PiggybackDesign::balanced(params))
    }

    /// Creates the code from an explicit piggyback design.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if the design's parameters are
    /// unsupported.
    pub fn with_design(design: PiggybackDesign) -> Result<Self, CodeError> {
        let params = design.params();
        let rs = ReedSolomon::from_params(params);
        Ok(PiggybackedRs { params, design, rs })
    }

    /// The `(10, 4)` code proposed in the paper as a drop-in replacement for
    /// the warehouse cluster's RS code.
    pub fn facebook() -> Self {
        // pbrs-lint: allow(panic-hygiene) -- constant (10, 4) parameters are statically valid
        Self::new(10, 4).expect("(10, 4) is always valid")
    }

    /// The piggyback design in use.
    pub fn design(&self) -> &PiggybackDesign {
        &self.design
    }

    /// The underlying Reed–Solomon code applied to each substripe.
    pub fn inner_rs(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Returns `true` if the download-efficient repair path applies to
    /// `target` under the given availability mask: the target must be a
    /// piggybacked data shard, and all other data shards, the clean parity
    /// and the carrier parity must be available.
    pub fn efficient_repair_available(&self, target: usize, available: &[bool]) -> bool {
        if available.len() != self.params.total_shards() {
            return false;
        }
        if target >= self.params.data_shards() || available[target] {
            return false;
        }
        let Some(carrier) = self.design.carrier_parity(target) else {
            return false;
        };
        let clean_parity = self.params.data_shards();
        let data_ok = (0..self.params.data_shards()).all(|i| i == target || available[i]);
        data_ok && available[clean_parity] && available[carrier]
    }

    /// XORs each piggyback group's substripe-a symbols into (or out of —
    /// the operation is an involution) the b-half of its carrier parity, for
    /// every carrier parity accepted by `include`.
    ///
    /// All data shards' a-halves must hold valid bytes when this runs.
    fn toggle_piggybacks(
        &self,
        shards: &mut ShardSetMut<'_>,
        half: usize,
        mut include: impl FnMut(usize) -> bool,
    ) {
        let k = self.params.data_shards();
        for j in 1..self.params.parity_shards() {
            let carrier = k + j;
            if !include(carrier) {
                continue;
            }
            let (parity_shard, rest) = shards.split_one_mut(carrier);
            let b_out = &mut parity_shard[half..];
            for &m in &self.design.groups()[j - 1] {
                slice_ops::xor_slice(b_out, &rest.shard(m)[..half]);
            }
        }
    }
}

impl ErasureCode for PiggybackedRs {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn name(&self) -> String {
        format!(
            "Piggybacked-RS({}, {})",
            self.params.data_shards(),
            self.params.parity_shards()
        )
    }

    fn granularity(&self) -> usize {
        2
    }

    fn encode_into(
        &self,
        data: &ShardSet<'_>,
        parity: &mut ShardSetMut<'_>,
    ) -> Result<(), CodeError> {
        let shard_len = validate_encode_views(data, parity, self.params, self.granularity())?;
        let half = shard_len / 2;
        let r = self.params.parity_shards();
        let rows: Vec<&[u8]> = (0..r).map(|j| self.rs.parity_row(j)).collect();
        let all = vec![true; r];
        // Each substripe is a plain RS encode of the matching half of every
        // data shard: run both as multi-output passes (each data half is
        // read once for all r parities), then fold the piggybacks in.
        let a_srcs: Vec<&[u8]> = data.iter().map(|s| &s[..half]).collect();
        {
            let mut a_view = parity.narrow_mut(0, half);
            let (mut a_outs, _) = a_view.split_parts_mut(&all);
            slice_ops::matrix_mul_into(&rows, &a_srcs, &mut a_outs);
        }
        {
            let b_srcs: Vec<&[u8]> = data.iter().map(|s| &s[half..]).collect();
            let mut b_view = parity.narrow_mut(half, half);
            let (mut b_outs, _) = b_view.split_parts_mut(&all);
            slice_ops::matrix_mul_into(&rows, &b_srcs, &mut b_outs);
            for (j, b_out) in b_outs.iter_mut().enumerate() {
                if j >= 1 {
                    for &m in &self.design.groups()[j - 1] {
                        slice_ops::xor_slice(b_out, &data.shard(m)[..half]);
                    }
                }
            }
        }
        Ok(())
    }

    fn reconstruct_in_place(
        &self,
        shards: &mut ShardSetMut<'_>,
        present: &[bool],
    ) -> Result<(), CodeError> {
        let shard_len = validate_stripe_view(shards, present, self.params, self.granularity())?;
        if present.iter().all(|&p| p) {
            return Ok(());
        }
        let half = shard_len / 2;
        let generator = self.rs.generator();

        // Substripe a is a plain RS codeword (parity a-halves carry no
        // piggyback): decode it first, in place.
        {
            let mut a_view = shards.narrow_mut(0, half);
            decode::reconstruct_linear_in_place(generator, &mut a_view, present)?;
        }
        // With every a-half now valid, strip the piggybacks off the
        // *surviving* parity shards, turning the b-halves into a plain RS
        // codeword too. The toggle is an involution, so the same pass
        // restores (and installs) the piggybacks afterwards.
        self.toggle_piggybacks(shards, half, |i| present[i]);
        let decoded_b = {
            let mut b_view = shards.narrow_mut(half, half);
            decode::reconstruct_linear_in_place(generator, &mut b_view, present)
        };
        match decoded_b {
            Ok(()) => {
                // Re-apply to every parity: survivors get their original
                // bytes back, rebuilt parities receive their piggyback.
                self.toggle_piggybacks(shards, half, |_| true);
                Ok(())
            }
            Err(e) => {
                // Leave surviving shards exactly as they were handed in.
                self.toggle_piggybacks(shards, half, |i| present[i]);
                Err(e)
            }
        }
    }

    fn repair_into(
        &self,
        target: usize,
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let shard_len =
            validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let half = shard_len / 2;
        let k = self.params.data_shards();
        let generator = self.rs.generator();

        if target >= k {
            // Parity repair: with all data shards at hand, re-encode the one
            // parity directly (the classic plan's cost: k data shards read).
            let j = target - k;
            let row = self.rs.parity_row(j);
            let (a_out, b_out) = out.split_at_mut(half);
            slice_ops::linear_combination_into(
                row,
                (0..k).map(|i| &helpers.shard(i)[..half]),
                a_out,
            );
            slice_ops::linear_combination_into(
                row,
                (0..k).map(|i| &helpers.shard(i)[half..]),
                b_out,
            );
            if j >= 1 {
                for &m in &self.design.groups()[j - 1] {
                    slice_ops::xor_slice(b_out, &helpers.shard(m)[..half]);
                }
            }
            return Ok(());
        }

        // Data-shard repair. Substripe b decodes from the other k-1 data
        // shards plus the clean parity (whose b-half carries no piggyback).
        let selected: Vec<usize> = (0..k).filter(|&i| i != target).chain([k]).collect();
        let coeff_target = decode::combination_coefficients(generator, target, &selected)?;
        let (a_out, b_out) = out.split_at_mut(half);
        slice_ops::linear_combination_into(
            &coeff_target,
            selected.iter().map(|&i| &helpers.shard(i)[half..]),
            b_out,
        );
        match self.design.carrier_parity(target) {
            Some(carrier) => {
                // The download-efficient path: the carrier parity stores
                // f_c(b) + Σ_{i ∈ group} a_i, so
                //   a_target = carrier.b ⊕ f_c(b) ⊕ Σ_{peers} a_p
                // — only half-shards beyond what the b-decode already read.
                let peers = self
                    .design
                    .group_peers(target)
                    // pbrs-lint: allow(panic-hygiene) -- piggyback design invariant: every carrier parity has a group
                    .expect("a carrier parity implies a piggyback group");
                let coeff_carrier =
                    decode::combination_coefficients(generator, carrier, &selected)?;
                a_out.copy_from_slice(&helpers.shard(carrier)[half..]);
                slice_ops::accumulate_combination(
                    &coeff_carrier,
                    selected.iter().map(|&i| &helpers.shard(i)[half..]),
                    a_out,
                );
                for &p in &peers {
                    slice_ops::xor_slice(a_out, &helpers.shard(p)[..half]);
                }
            }
            None => {
                // Uncovered data shard: plain RS decode of substripe a from
                // the same helper set.
                slice_ops::linear_combination_into(
                    &coeff_target,
                    selected.iter().map(|&i| &helpers.shard(i)[..half]),
                    a_out,
                );
            }
        }
        Ok(())
    }

    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        let n = self.params.total_shards();
        if available.len() != n {
            return Err(CodeError::ShardCountMismatch {
                expected: n,
                actual: available.len(),
            });
        }
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        if available[target] {
            return Err(CodeError::TargetNotMissing { index: target });
        }

        if self.efficient_repair_available(target, available) {
            let k = self.params.data_shards();
            // pbrs-lint: allow(panic-hygiene) -- guarded by efficient_repair_available just above
            let carrier = self.design.carrier_parity(target).expect("checked");
            // pbrs-lint: allow(panic-hygiene) -- guarded by efficient_repair_available just above
            let peers = self.design.group_peers(target).expect("checked");
            let mut fetches = Vec::with_capacity(k + peers.len() + 1);
            for i in 0..k {
                if i == target {
                    continue;
                }
                let fraction = if peers.contains(&i) {
                    // Both the b-half (substripe decode) and the a-half
                    // (piggyback subtraction) of group peers are needed.
                    Fraction::ONE
                } else {
                    Fraction::HALF
                };
                fetches.push(FetchRequest { shard: i, fraction });
            }
            fetches.push(FetchRequest {
                shard: k,
                fraction: Fraction::HALF,
            });
            fetches.push(FetchRequest {
                shard: carrier,
                fraction: Fraction::HALF,
            });
            return Ok(RepairPlan { target, fetches });
        }

        default_repair_plan(self.params, target, available)
    }

    fn repair_reads(
        &self,
        target: usize,
        available: &[bool],
        shard_len: usize,
    ) -> Result<Vec<ShardRead>, CodeError> {
        if shard_len == 0 || !shard_len.is_multiple_of(self.granularity()) {
            return Err(CodeError::UnalignedShard {
                len: shard_len,
                granularity: self.granularity(),
            });
        }
        if !self.efficient_repair_available(target, available) {
            // Parity and uncovered-data targets follow whole-shard plans,
            // for which the fraction-prefix default is byte-exact.
            let plan = self.repair_plan(target, available)?;
            pbrs_erasure::validate_single_failure_mask(target, available)?;
            return Ok(plan
                .fetches
                .iter()
                .map(|f| ShardRead::whole(f.shard, shard_len))
                .collect());
        }
        pbrs_erasure::validate_single_failure_mask(target, available)?;
        // The download-efficient path reads the b-half (second half) of the
        // non-peer data shards, the clean parity and the carrier parity, and
        // both halves of the target's group peers — exactly the bytes
        // `repair_into` consumes.
        let half = shard_len / 2;
        let k = self.params.data_shards();
        // pbrs-lint: allow(panic-hygiene) -- caller path only reaches here when a carrier exists for the target
        let carrier = self.design.carrier_parity(target).expect("checked");
        let peers = self
            .design
            .group_peers(target)
            // pbrs-lint: allow(panic-hygiene) -- piggyback design invariant: every carrier parity has a group
            .expect("a carrier parity implies a piggyback group");
        let mut reads = Vec::with_capacity(k + 1);
        for i in (0..k).filter(|&i| i != target) {
            if peers.contains(&i) {
                reads.push(ShardRead::whole(i, shard_len));
            } else {
                reads.push(ShardRead {
                    shard: i,
                    offset: half,
                    len: half,
                });
            }
        }
        for shard in [k, carrier] {
            reads.push(ShardRead {
                shard,
                offset: half,
                len: half,
            });
        }
        Ok(reads)
    }

    fn is_mds(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_erasure::Stripe;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 41 + j * 13 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn full_stripe(code: &PiggybackedRs, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let parity = code.encode(data).unwrap();
        data.iter().chain(parity.iter()).cloned().collect()
    }

    #[test]
    fn facebook_constructor_and_metadata() {
        let code = PiggybackedRs::facebook();
        assert_eq!(code.name(), "Piggybacked-RS(10, 4)");
        assert_eq!(code.params(), CodeParams::FACEBOOK);
        assert_eq!(code.granularity(), 2);
        assert!(code.is_mds());
        assert_eq!(code.fault_tolerance(), 4);
        assert!((code.storage_overhead() - 1.4).abs() < 1e-12);
        assert_eq!(code.design().groups().len(), 3);
        assert_eq!(code.inner_rs().params(), CodeParams::FACEBOOK);
    }

    #[test]
    fn parity_zero_matches_plain_rs_and_others_differ() {
        let code = PiggybackedRs::new(4, 3).unwrap();
        let data = sample_data(4, 16);
        let parity = code.encode(&data).unwrap();

        // Build the plain RS parities over the two substripes for comparison.
        let rs = ReedSolomon::new(4, 3).unwrap();
        let a: Vec<Vec<u8>> = data.iter().map(|d| d[..8].to_vec()).collect();
        let b: Vec<Vec<u8>> = data.iter().map(|d| d[8..].to_vec()).collect();
        let pa = rs.encode(&a).unwrap();
        let pb = rs.encode(&b).unwrap();

        // Parity 0 is exactly the RS parity of both substripes.
        assert_eq!(&parity[0][..8], &pa[0][..]);
        assert_eq!(&parity[0][8..], &pb[0][..]);
        // Piggybacked parities share the a-half but differ in the b-half.
        for j in 1..3 {
            assert_eq!(&parity[j][..8], &pa[j][..]);
            assert_ne!(&parity[j][8..], &pb[j][..]);
        }
        // And the difference is exactly the group XOR.
        let group0 = &code.design().groups()[0]; // rides on parity 1
        let mut expect = pb[1].clone();
        for &i in group0 {
            for (e, s) in expect.iter_mut().zip(a[i].iter()) {
                *e ^= s;
            }
        }
        assert_eq!(&parity[1][8..], &expect[..]);
    }

    #[test]
    fn unaligned_shards_rejected() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 15);
        assert!(matches!(
            code.encode(&data),
            Err(CodeError::UnalignedShard {
                len: 15,
                granularity: 2
            })
        ));
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 64);
        let mut all = full_stripe(&code, &data);
        assert!(code.verify(&all).unwrap());
        all[11][40] ^= 1;
        assert!(!code.verify(&all).unwrap());
    }

    #[test]
    fn mds_reconstruction_for_all_r_failure_patterns_small_code() {
        // (4, 2): 15 patterns of exactly 2 failures, plus all single failures.
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 12);
        let all = full_stripe(&code, &data);
        let n = 6;
        for i in 0..n {
            for j in i..n {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                code.reconstruct(&mut shards).unwrap();
                for (idx, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[idx], "failures ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn mds_reconstruction_facebook_code_spot_checks() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 32);
        let all = full_stripe(&code, &data);
        let patterns: Vec<Vec<usize>> = vec![
            vec![0],
            vec![13],
            vec![0, 1, 2, 3],
            vec![10, 11, 12, 13],
            vec![0, 5, 11, 13],
            vec![2, 7, 9, 12],
            vec![6, 10],
        ];
        for pattern in patterns {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            code.reconstruct(&mut shards).unwrap();
            for (idx, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &all[idx], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn too_many_failures_rejected() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let all = full_stripe(&code, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            code.reconstruct(&mut shards),
            Err(CodeError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn efficient_repair_plan_costs_for_facebook_code() {
        let code = PiggybackedRs::facebook();
        // Group sizes are 4, 3, 3 -> repair fractions (10+4)/2 = 7 and
        // (10+3)/2 = 6.5 shard-equivalents.
        for target in 0..10 {
            let mut available = vec![true; 14];
            available[target] = false;
            let plan = code.repair_plan(target, &available).unwrap();
            let group_len = code.design().groups()[code.design().group_of(target).unwrap()].len();
            let expect = (10.0 + group_len as f64) / 2.0;
            assert!(
                (plan.total_fraction() - expect).abs() < 1e-12,
                "target {target}"
            );
            // Helpers: k-1 data + clean parity + carrier parity.
            assert_eq!(plan.helper_count(), 11);
        }
        // Parity shards fall back to the RS plan: 10 whole shards.
        for target in 10..14 {
            let mut available = vec![true; 14];
            available[target] = false;
            let plan = code.repair_plan(target, &available).unwrap();
            assert!((plan.total_fraction() - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn efficient_repair_recovers_exact_bytes_every_data_shard() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 64);
        let all = full_stripe(&code, &data);
        for target in 0..14 {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            shards[target] = None;
            let outcome = code.repair(target, &shards).unwrap();
            assert_eq!(outcome.shard, all[target], "target {target}");
            if target < 10 {
                let group_len =
                    code.design().groups()[code.design().group_of(target).unwrap()].len();
                let expect_bytes =
                    ((10 - group_len) as u64 * 32) + (group_len as u64 - 1) * 64 + 32 + 32;
                assert_eq!(outcome.metrics.bytes_transferred, expect_bytes);
                assert_eq!(outcome.metrics.helpers, 11);
            } else {
                assert_eq!(outcome.metrics.bytes_transferred, 10 * 64);
                assert_eq!(outcome.metrics.helpers, 10);
            }
        }
    }

    #[test]
    fn efficient_repair_detection() {
        let code = PiggybackedRs::facebook();
        let mut available = vec![true; 14];
        available[0] = false;
        assert!(code.efficient_repair_available(0, &available));
        // Clean parity missing -> no efficient repair.
        available[10] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[10] = true;
        // Carrier parity missing -> no efficient repair.
        available[11] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[11] = true;
        // Another data shard missing -> no efficient repair.
        available[5] = false;
        assert!(!code.efficient_repair_available(0, &available));
        available[5] = true;
        // Parity shards never take the efficient path.
        available[12] = false;
        assert!(!code.efficient_repair_available(12, &available));
        // Available targets are never "repairable".
        assert!(!code.efficient_repair_available(1, &available));
        // Wrong mask length.
        assert!(!code.efficient_repair_available(0, &[false; 3]));
    }

    #[test]
    fn degraded_repair_falls_back_to_full_decode() {
        let code = PiggybackedRs::facebook();
        let data = sample_data(10, 32);
        let all = full_stripe(&code, &data);
        // Two failures: the target and its carrier parity.
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[11] = None;
        let outcome = code.repair(0, &shards).unwrap();
        assert_eq!(outcome.shard, all[0]);
        // Fallback cost: k whole shards.
        assert_eq!(outcome.metrics.bytes_transferred, 10 * 32);
    }

    #[test]
    fn repair_error_paths() {
        let code = PiggybackedRs::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let all = full_stripe(&code, &data);
        let shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        assert!(matches!(
            code.repair(0, &shards),
            Err(CodeError::TargetNotMissing { index: 0 })
        ));
        assert!(matches!(
            code.repair(99, &shards),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        let mut available = vec![true; 6];
        available[0] = false;
        assert!(matches!(
            code.repair_plan(99, &available),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        assert!(matches!(
            code.repair_plan(0, &[true; 3]),
            Err(CodeError::ShardCountMismatch { .. })
        ));
    }

    #[test]
    fn average_repair_fraction_improves_on_rs_by_about_a_quarter() {
        let code = PiggybackedRs::facebook();
        let rs = ReedSolomon::facebook();
        let pb = code.average_repair_fraction();
        let rs_frac = rs.average_repair_fraction();
        assert!((rs_frac - 1.0).abs() < 1e-12);
        // (6 * 6.5 + 4 * 7 + 4 * 10) / (14 * 10) ≈ 0.764
        assert!((pb - 0.7642857142857142).abs() < 1e-9, "got {pb}");
    }

    #[test]
    fn works_with_stripe_helper_and_arbitrary_parameters() {
        for (k, r) in [(2usize, 2usize), (5, 3), (6, 4), (12, 4), (10, 2)] {
            let code = PiggybackedRs::new(k, r).unwrap();
            let data = sample_data(k, 20);
            let mut stripe = Stripe::from_encoding(&code, &data).unwrap();
            let original = stripe.clone().into_shards().unwrap();
            // Erase r shards (the last r, mixing data and parity).
            for i in 0..r {
                stripe.erase(k + r - 1 - i);
            }
            stripe.reconstruct(&code).unwrap();
            assert_eq!(stripe.into_shards().unwrap(), original, "({k},{r})");
        }
    }

    #[test]
    fn single_parity_code_degenerates_to_rs_costs() {
        let code = PiggybackedRs::new(6, 1).unwrap();
        let data = sample_data(6, 10);
        let all = full_stripe(&code, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[2] = None;
        let outcome = code.repair(2, &shards).unwrap();
        assert_eq!(outcome.shard, all[2]);
        assert_eq!(outcome.metrics.bytes_transferred, 6 * 10);
        assert!((code.average_repair_fraction() - 1.0).abs() < 1e-12);
    }
}
