//! The paper's toy example (Fig. 4 / Example 1).
//!
//! Two data units `{a1, a2}` and `{b1, b2}` are encoded with a `(k = 2,
//! r = 2)` RS code, and `a1` is added onto the second parity of the second
//! substripe. Node 1 can then be recovered by downloading `b2`, `(b1 + b2)`
//! and `(b1 + 2·b2 + a1)` — three bytes instead of the four an RS code would
//! need — while the code still tolerates any two node failures and uses no
//! extra storage.

use pbrs_erasure::{CodeError, CodeParams};

use crate::code::PiggybackedRs;
use crate::design::PiggybackDesign;

/// Builds the `(2, 2)` piggybacked code of the paper's Example 1: only the
/// first data shard is piggybacked, onto the second parity.
///
/// # Panics
///
/// Never panics; the construction is statically valid.
pub fn toy_example() -> PiggybackedRs {
    // pbrs-lint: allow(panic-hygiene) -- documented never-panics wrapper; the constants are statically valid
    try_toy_example().expect("the paper's toy example parameters are always valid")
}

/// Fallible variant of [`toy_example`] for callers that prefer a `Result`.
///
/// # Errors
///
/// Never fails in practice; present for API symmetry.
pub fn try_toy_example() -> Result<PiggybackedRs, CodeError> {
    let params = CodeParams::new(2, 2)?;
    let design = PiggybackDesign::from_groups(params, vec![vec![0]])?;
    PiggybackedRs::with_design(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_erasure::{ErasureCode, Fraction};

    /// Encode exactly the stripe drawn in Fig. 4 of the paper, with one byte
    /// per substripe symbol, and check the stored symbols and the 3-byte
    /// recovery of node 1.
    #[test]
    fn figure_4_recovery_downloads_three_bytes_instead_of_four() {
        let code = toy_example();
        // One byte per substripe symbol -> each shard is [a_i, b_i].
        let a = [17u8, 203u8];
        let b = [99u8, 45u8];
        let data = vec![vec![a[0], b[0]], vec![a[1], b[1]]];
        let parity = code.encode(&data).unwrap();
        assert_eq!(parity.len(), 2);

        // The inner RS code is systematic with some parity coefficients
        // f_1, f_2; what matters for the example is the structure:
        // parity 0 = (f_1(a), f_1(b)) untouched, parity 1 = (f_2(a), f_2(b)+a1).
        let rs = code.inner_rs();
        let f = |row: &[u8], x: &[u8; 2]| -> u8 {
            pbrs_gf::tables::mul(row[0], x[0]) ^ pbrs_gf::tables::mul(row[1], x[1])
        };
        let p1 = rs.parity_row(0).to_vec();
        let p2 = rs.parity_row(1).to_vec();
        assert_eq!(parity[0], vec![f(&p1, &a), f(&p1, &b)]);
        assert_eq!(parity[1], vec![f(&p2, &a), f(&p2, &b) ^ a[0]]);

        // Recover node 1 (shard 0): the repair plan downloads 3 bytes —
        // b2 from node 2, the clean parity's b-half, and the piggybacked
        // parity's b-half.
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        let plan = code.repair_plan(0, &[false, true, true, true]).unwrap();
        assert_eq!(plan.helper_count(), 3);
        assert!(plan.fetches.iter().all(|f| f.fraction == Fraction::HALF));
        assert_eq!(plan.bytes_read(2), 3, "3 bytes instead of 4");

        let outcome = code.repair(0, &shards).unwrap();
        assert_eq!(outcome.shard, data[0]);
        assert_eq!(outcome.metrics.bytes_transferred, 3);

        // The second data node is not piggybacked, so its recovery costs the
        // full 4 bytes, exactly as under RS.
        let mut shards2: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards2[1] = None;
        let outcome2 = code.repair(1, &shards2).unwrap();
        assert_eq!(outcome2.shard, data[1]);
        assert_eq!(outcome2.metrics.bytes_transferred, 4);
    }

    /// "One can easily verify that this code can tolerate the failure of any
    /// 2 of the 4 nodes" — verify it exhaustively.
    #[test]
    fn tolerates_any_two_of_four_failures() {
        let code = toy_example();
        let data = vec![vec![1u8, 2], vec![3u8, 4]];
        let parity = code.encode(&data).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        for i in 0..4 {
            for j in 0..4 {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                code.reconstruct(&mut shards).unwrap();
                for (idx, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[idx], "failures ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn no_additional_storage_is_used() {
        let code = toy_example();
        let rs = pbrs_erasure::ReedSolomon::new(2, 2).unwrap();
        assert_eq!(code.storage_overhead(), rs.storage_overhead());
        let data = vec![vec![5u8, 6], vec![7u8, 8]];
        let pb_parity = code.encode(&data).unwrap();
        // Same number of parity shards, same shard sizes.
        assert_eq!(pb_parity.len(), 2);
        assert!(pb_parity.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn fallible_constructor_matches() {
        let a = toy_example();
        let b = try_toy_example().unwrap();
        assert_eq!(a.design(), b.design());
        assert_eq!(a.params(), b.params());
    }
}
