//! The unified code registry: one constructor for every code.
//!
//! `pbrs-erasure` defines [`CodeSpec`], the textual naming scheme for codes
//! (`"rs-10-4"`, `"piggyback-10-4"`, `"lrc-10-2-4"`, `"rep-3"`). This module
//! turns a spec into a live, boxed [`ErasureCode`] — it lives here rather
//! than in `pbrs-erasure` because the Piggybacked-RS implementation sits
//! above that crate.
//!
//! Everything that selects a code — the cluster simulator's `CodeChoice`,
//! the benchmark binaries, the examples — goes through [`build`], so adding
//! a code to the workspace means implementing the trait and adding one
//! registry arm, not touching every entry point.
//!
//! # Example
//!
//! ```
//! use pbrs_core::registry;
//!
//! let code = registry::build_str("piggyback-10-4").unwrap();
//! assert_eq!(code.name(), "Piggybacked-RS(10, 4)");
//! assert!(code.is_mds());
//! ```

use pbrs_erasure::{CodeError, CodeSpec, ErasureCode, Lrc, LrcParams, ReedSolomon, Replication};

use crate::code::PiggybackedRs;

/// A boxed code as built by the registry: every implementation is plain data,
/// so the trait objects are `Send + Sync` and shareable across the threads of
/// a store or simulator.
pub type DynCode = Box<dyn ErasureCode + Send + Sync>;

/// The canonical spec of each code family in the registry, at the paper's
/// parameters: `rs-10-4`, `piggyback-10-4`, `lrc-10-2-4`, `rep-3`.
///
/// Tests that must hold "for every code in the registry" iterate this list.
pub fn known_specs() -> Vec<CodeSpec> {
    vec![
        CodeSpec::FACEBOOK_RS,
        CodeSpec::FACEBOOK_PIGGYBACK,
        CodeSpec::Lrc {
            k: 10,
            local_groups: 2,
            global_parities: 4,
        },
        CodeSpec::Replication { copies: 3 },
    ]
}

/// Builds the erasure code a spec describes.
///
/// # Errors
///
/// Propagates parameter-validation errors from the code constructors.
pub fn build(spec: &CodeSpec) -> Result<DynCode, CodeError> {
    Ok(match *spec {
        CodeSpec::ReedSolomon { k, r } => Box::new(ReedSolomon::new(k, r)?),
        CodeSpec::PiggybackedRs { k, r } => Box::new(PiggybackedRs::new(k, r)?),
        CodeSpec::Lrc {
            k,
            local_groups,
            global_parities,
        } => Box::new(Lrc::new(LrcParams {
            k,
            local_groups,
            global_parities,
        })?),
        CodeSpec::Replication { copies } => Box::new(Replication::new(copies)?),
    })
}

/// Parses a spec string and builds the code it describes.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] for an unparsable spec, plus the
/// same failure modes as [`build`].
pub fn build_str(spec: &str) -> Result<DynCode, CodeError> {
    build(&spec.parse()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_erasure::Stripe;

    #[test]
    fn builds_every_family() {
        let cases = [
            ("rs-10-4", "RS(10, 4)", 14),
            ("piggyback-10-4", "Piggybacked-RS(10, 4)", 14),
            ("lrc-10-2-4", "LRC(10, 2, 4)", 16),
            ("rep-3", "3-replication", 3),
        ];
        for (spec, name, width) in cases {
            let code = build_str(spec).unwrap();
            assert_eq!(code.name(), name, "{spec}");
            assert_eq!(code.params().total_shards(), width, "{spec}");
        }
    }

    #[test]
    fn built_codes_round_trip_data() {
        for spec in ["rs-4-2", "piggyback-4-2", "lrc-4-2-2", "rep-3"] {
            let code = build_str(spec).unwrap();
            let k = code.params().data_shards();
            let data: Vec<Vec<u8>> = (0..k)
                .map(|i| (0..16).map(|j| ((i * 7 + j * 3 + 1) % 256) as u8).collect())
                .collect();
            let mut stripe = Stripe::from_encoding(code.as_ref(), &data).unwrap();
            let original = stripe.clone().into_shards().unwrap();
            stripe.erase(0);
            stripe.reconstruct(code.as_ref()).unwrap();
            assert_eq!(stripe.into_shards().unwrap(), original, "{spec}");
        }
    }

    #[test]
    fn invalid_specs_and_parameters_are_rejected() {
        assert!(build_str("rs-0-4").is_err());
        assert!(build_str("nonsense").is_err());
        // Parses, but the LRC constructor rejects zero local groups.
        assert!(build(&CodeSpec::Lrc {
            k: 4,
            local_groups: 0,
            global_parities: 2
        })
        .is_err());
    }
}
