//! Piggybacked-RS erasure codes.
//!
//! This crate implements the storage code proposed in *"A Solution to the
//! Network Challenges of Data Recovery in Erasure-coded Distributed Storage
//! Systems: A Study on the Facebook Warehouse Cluster"* (Rashmi, Shah, Gu,
//! Kuang, Borthakur, Ramchandran — USENIX HotStorage 2013), built on the
//! Piggybacking framework of Rashmi, Shah & Ramchandran (ISIT 2013).
//!
//! # The idea
//!
//! A `(k, r)` Reed–Solomon code is storage optimal (MDS) and works for any
//! parameters, but recovering a single lost shard requires downloading `k`
//! whole shards — the entire logical size of the stripe. On the Facebook
//! warehouse cluster this recovery traffic exceeds 180 TB of cross-rack
//! transfer per day (paper §2.2).
//!
//! A Piggybacked-RS code takes **two byte-level substripes** of an existing
//! RS code and adds carefully chosen functions ("piggybacks") of the first
//! substripe onto the parities of the second substripe:
//!
//! ```text
//!              substripe a      substripe b
//! data i:        a_i               b_i
//! parity 1:      f_1(a)            f_1(b)                 (kept clean)
//! parity j>1:    f_j(a)            f_j(b) + Σ_{i∈S_{j−1}} a_i
//! ```
//!
//! where `S_1..S_{r−1}` partition the data shards into groups. The code is
//! still MDS (decode substripe `a` first, strip the piggybacks, then decode
//! substripe `b`), still works for any `(k, r)`, and repairing a lost data
//! shard now downloads roughly `(k + group size)/2` shard-equivalents
//! instead of `k` — about a 30 % reduction for the production `(10, 4)`
//! parameters.
//!
//! # Example
//!
//! ```
//! use pbrs_core::PiggybackedRs;
//! use pbrs_erasure::ErasureCode;
//!
//! # fn main() -> Result<(), pbrs_erasure::CodeError> {
//! // The code proposed in the paper as a drop-in replacement for the
//! // warehouse cluster's (10, 4) RS code.
//! let code = PiggybackedRs::new(10, 4)?;
//! assert!(code.is_mds());
//! assert!((code.storage_overhead() - 1.4).abs() < 1e-9);
//!
//! // Repairing data shard 0 downloads 7 shard-equivalents instead of 10.
//! let mut available = vec![true; 14];
//! available[0] = false;
//! let plan = code.repair_plan(0, &available)?;
//! assert_eq!(plan.total_fraction(), 7.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod code;
pub mod design;
pub mod registry;
pub mod toy;

pub use analysis::{CodeComparison, NodeRepairCost, SavingsReport};
pub use code::PiggybackedRs;
pub use design::PiggybackDesign;
pub use toy::toy_example;
