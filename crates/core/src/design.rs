//! Piggyback designs: which data shards are piggybacked onto which parity.
//!
//! A design for a `(k, r)` code assigns to each of the parities `2..r`
//! (0-based: parity indices `1..r`) a *group* of data shards; the sum of the
//! group's first-substripe symbols is added to that parity's second-substripe
//! symbol. Parity 0 is always kept clean so that the second substripe can be
//! decoded during an efficient repair.
//!
//! The default design partitions **all** data shards into `r − 1` contiguous,
//! nearly equal groups, which minimises the average repair download within
//! this family (every data shard gets a cheap repair, and smaller groups are
//! cheaper). The paper's toy example (Fig. 4) uses a custom design that
//! piggybacks only the first data shard.

use pbrs_erasure::{CodeError, CodeParams};

/// Assignment of data shards to piggybacked parities for a `(k, r)` code.
///
/// Group `j` (for `j` in `0..r−1`) is added onto parity `j + 1`'s second
/// substripe. Groups must be disjoint; they need not cover every data shard.
///
/// # Example
///
/// ```
/// use pbrs_core::PiggybackDesign;
/// use pbrs_erasure::CodeParams;
///
/// let params = CodeParams::new(10, 4)?;
/// let design = PiggybackDesign::balanced(params);
/// assert_eq!(design.groups().len(), 3);
/// assert_eq!(design.groups()[0], vec![0, 1, 2, 3]);
/// // Shard 5 rides on the second piggybacked parity (stripe index 12).
/// assert_eq!(design.carrier_parity(5), Some(12));
/// # Ok::<(), pbrs_erasure::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiggybackDesign {
    params: CodeParams,
    /// `groups[j]` lists the data shards whose first-substripe symbols are
    /// added to parity `j + 1`.
    groups: Vec<Vec<usize>>,
    /// For each data shard, the index of the group it belongs to (if any).
    group_of: Vec<Option<usize>>,
}

impl PiggybackDesign {
    /// The default design: all `k` data shards partitioned into `r − 1`
    /// contiguous, nearly equal groups (the first `k mod (r−1)` groups get
    /// one extra member). With `r == 1` there are no piggybacked parities and
    /// the code degenerates to plain RS over two substripes.
    pub fn balanced(params: CodeParams) -> Self {
        let k = params.data_shards();
        let r = params.parity_shards();
        let group_count = r.saturating_sub(1);
        let mut groups = Vec::with_capacity(group_count);
        if let (Some(base), Some(extra)) = (k.checked_div(group_count), k.checked_rem(group_count))
        {
            let mut next = 0usize;
            for gi in 0..group_count {
                let size = base + usize::from(gi < extra);
                groups.push((next..next + size).collect());
                next += size;
            }
        }
        // pbrs-lint: allow(panic-hygiene) -- balanced grouping satisfies from_groups' own checks by construction
        Self::from_groups(params, groups).expect("balanced groups are always valid")
    }

    /// Builds a design from explicit groups. `groups[j]` is added to parity
    /// `j + 1`; there must be exactly `r − 1` groups (they may be empty).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if the group count is not
    /// `r − 1`, a group references an out-of-range shard, or two groups
    /// overlap.
    pub fn from_groups(params: CodeParams, groups: Vec<Vec<usize>>) -> Result<Self, CodeError> {
        let k = params.data_shards();
        let r = params.parity_shards();
        if groups.len() != r.saturating_sub(1) {
            return Err(CodeError::InvalidParams {
                reason: format!(
                    "expected {} piggyback groups for r = {}, got {}",
                    r.saturating_sub(1),
                    r,
                    groups.len()
                ),
            });
        }
        let mut group_of: Vec<Option<usize>> = vec![None; k];
        for (gi, group) in groups.iter().enumerate() {
            for &shard in group {
                if shard >= k {
                    return Err(CodeError::InvalidParams {
                        reason: format!(
                            "piggyback group references data shard {shard} but k = {k}"
                        ),
                    });
                }
                if group_of[shard].is_some() {
                    return Err(CodeError::InvalidParams {
                        reason: format!("data shard {shard} appears in more than one group"),
                    });
                }
                group_of[shard] = Some(gi);
            }
        }
        Ok(PiggybackDesign {
            params,
            groups,
            group_of,
        })
    }

    /// The `(k, r)` parameters this design applies to.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The piggyback groups; `groups()[j]` rides on parity `j + 1`.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group index that `data_shard` belongs to, if it is piggybacked.
    ///
    /// # Panics
    ///
    /// Panics if `data_shard >= k`.
    pub fn group_of(&self, data_shard: usize) -> Option<usize> {
        self.group_of[data_shard]
    }

    /// The parity shard (absolute stripe index, `k..k+r`) that carries
    /// `data_shard`'s piggyback, if any.
    ///
    /// # Panics
    ///
    /// Panics if `data_shard >= k`.
    pub fn carrier_parity(&self, data_shard: usize) -> Option<usize> {
        self.group_of(data_shard)
            .map(|g| self.params.data_shards() + g + 1)
    }

    /// The other members of `data_shard`'s group (excluding itself), if it is
    /// piggybacked.
    ///
    /// # Panics
    ///
    /// Panics if `data_shard >= k`.
    pub fn group_peers(&self, data_shard: usize) -> Option<Vec<usize>> {
        self.group_of(data_shard).map(|g| {
            self.groups[g]
                .iter()
                .copied()
                .filter(|&i| i != data_shard)
                .collect()
        })
    }

    /// Number of data shards covered by some piggyback group.
    pub fn covered_shards(&self) -> usize {
        self.group_of.iter().filter(|g| g.is_some()).count()
    }

    /// `true` if every data shard is piggybacked.
    pub fn covers_all_data(&self) -> bool {
        self.covered_shards() == self.params.data_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(k: usize, r: usize) -> CodeParams {
        CodeParams::new(k, r).unwrap()
    }

    #[test]
    fn balanced_design_facebook() {
        let d = PiggybackDesign::balanced(params(10, 4));
        assert_eq!(d.groups().len(), 3);
        assert_eq!(d.groups()[0], vec![0, 1, 2, 3]);
        assert_eq!(d.groups()[1], vec![4, 5, 6]);
        assert_eq!(d.groups()[2], vec![7, 8, 9]);
        assert!(d.covers_all_data());
        assert_eq!(d.covered_shards(), 10);
        assert_eq!(d.group_of(0), Some(0));
        assert_eq!(d.group_of(9), Some(2));
        assert_eq!(d.carrier_parity(0), Some(11));
        assert_eq!(d.carrier_parity(4), Some(12));
        assert_eq!(d.carrier_parity(9), Some(13));
        assert_eq!(d.group_peers(0), Some(vec![1, 2, 3]));
        assert_eq!(d.group_peers(5), Some(vec![4, 6]));
    }

    #[test]
    fn balanced_design_even_split() {
        let d = PiggybackDesign::balanced(params(12, 4));
        assert_eq!(d.groups()[0].len(), 4);
        assert_eq!(d.groups()[1].len(), 4);
        assert_eq!(d.groups()[2].len(), 4);
    }

    #[test]
    fn single_parity_has_no_groups() {
        let d = PiggybackDesign::balanced(params(6, 1));
        assert!(d.groups().is_empty());
        assert!(!d.covers_all_data());
        assert_eq!(d.covered_shards(), 0);
        assert_eq!(d.group_of(3), None);
        assert_eq!(d.carrier_parity(3), None);
        assert_eq!(d.group_peers(3), None);
    }

    #[test]
    fn two_parities_single_group() {
        let d = PiggybackDesign::balanced(params(2, 2));
        assert_eq!(d.groups(), &[vec![0, 1]]);
        assert_eq!(d.carrier_parity(0), Some(3));
        assert_eq!(d.carrier_parity(1), Some(3));
    }

    #[test]
    fn custom_design_toy_example() {
        // The paper's Fig. 4: only a1 (shard 0) is piggybacked.
        let d = PiggybackDesign::from_groups(params(2, 2), vec![vec![0]]).unwrap();
        assert_eq!(d.covered_shards(), 1);
        assert!(!d.covers_all_data());
        assert_eq!(d.carrier_parity(0), Some(3));
        assert_eq!(d.carrier_parity(1), None);
        assert_eq!(d.group_peers(0), Some(vec![]));
    }

    #[test]
    fn custom_design_validation() {
        // Wrong group count.
        assert!(PiggybackDesign::from_groups(params(4, 3), vec![vec![0]]).is_err());
        // Out-of-range member.
        assert!(PiggybackDesign::from_groups(params(4, 2), vec![vec![7]]).is_err());
        // Overlapping groups.
        assert!(PiggybackDesign::from_groups(params(4, 3), vec![vec![0, 1], vec![1, 2]]).is_err());
        // Empty groups are allowed.
        let d = PiggybackDesign::from_groups(params(4, 3), vec![vec![], vec![0, 1, 2, 3]]).unwrap();
        assert_eq!(d.covered_shards(), 4);
        assert_eq!(d.carrier_parity(0), Some(6));
    }
}
