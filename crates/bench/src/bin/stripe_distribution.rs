//! Experiment E3 — §2.2 item 2: among degraded stripes, how many blocks are
//! missing at once? The paper reports 98.08 % / 1.87 % / 0.05 % for
//! 1 / 2 / ≥3 missing blocks over six months. Reproduced two ways: the
//! simulator's stripe census over a six-month horizon, and the analytic
//! binomial model at the concurrent-unavailability level the simulation
//! produces.

#![forbid(unsafe_code)]

use pbrs_bench::{pct, print_comparison, row, run_simulation, section};
use pbrs_cluster::SimConfig;
use pbrs_trace::stripe_failures::{
    binomial_degradation_estimate, implied_concurrent_unavailability,
};

fn main() {
    let paper = pbrs_bench::paper();

    // Six months of census at production scale would be slow with the full
    // recovery pipeline; the census only needs the unavailability process,
    // so run a production-size cluster with a lighter recovery setup.
    let mut config = SimConfig::facebook();
    config.days = 180;
    config.sampled_stripes = 30_000;
    config.census_interval_hours = 12.0;
    // Recovery volume does not affect the census; keep the run fast.
    config.mean_rs_blocks_per_machine = 500.0;
    config.blocks_per_recovery_task = 100;
    let report = run_simulation("6-month degradation census", config);
    let d = report.degradation;

    section("§2.2 — missing blocks per degraded stripe (simulated, 6 months)");
    println!(
        "degraded stripe observations: {} (over {} censuses of 30,000 sampled stripes)",
        d.total(),
        report.censuses
    );
    print_comparison(&[
        row(
            "stripes with exactly 1 block missing",
            pct(paper.stripes_with_one_missing_pct),
            pct(d.one_missing_pct()),
        ),
        row(
            "stripes with exactly 2 blocks missing",
            pct(paper.stripes_with_two_missing_pct),
            pct(d.two_missing_pct()),
        ),
        row(
            "stripes with 3 or more blocks missing",
            pct(paper.stripes_with_three_plus_missing_pct),
            pct(d.three_plus_missing_pct()),
        ),
    ]);

    section("Analytic cross-check (binomial model)");
    let p =
        implied_concurrent_unavailability(paper.stripe_width(), paper.stripes_with_two_missing_pct);
    let (one, two, three) = binomial_degradation_estimate(paper.stripe_width(), p);
    println!(
        "concurrent per-machine unavailability implied by the paper's 1.87%: {:.3}%",
        p * 100.0
    );
    print_comparison(&[
        row(
            "1 missing (binomial at implied p)",
            pct(paper.stripes_with_one_missing_pct),
            pct(one),
        ),
        row(
            "2 missing (binomial at implied p)",
            pct(paper.stripes_with_two_missing_pct),
            pct(two),
        ),
        row(
            "3+ missing (binomial at implied p)",
            pct(paper.stripes_with_three_plus_missing_pct),
            pct(three),
        ),
    ]);
    println!();
    println!(
        "conclusion: single-block recovery dominates ({}% in the paper, {:.2}% here), \
         which is why the Piggybacked-RS single-failure optimisation captures nearly all \
         recovery traffic.",
        paper.stripes_with_one_missing_pct,
        d.one_missing_pct()
    );
}
