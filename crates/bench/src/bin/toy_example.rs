//! Experiment E4 — Fig. 4 / Example 1: the (2, 2) piggybacking toy example.
//! Recovery of node 1 downloads 3 bytes instead of the 4 an RS code needs,
//! while the code still tolerates any 2 of 4 node failures with no extra
//! storage.

#![forbid(unsafe_code)]

use pbrs_bench::{print_comparison, row, section};
use pbrs_core::toy_example;
use pbrs_erasure::{ErasureCode, ReedSolomon};

fn main() {
    let code = toy_example();
    let rs = ReedSolomon::new(2, 2).unwrap();

    // One byte per substripe symbol, as drawn in the paper's figure.
    let (a1, a2, b1, b2) = (0x11u8, 0x22u8, 0x33u8, 0x44u8);
    let data = vec![vec![a1, b1], vec![a2, b2]];
    let parity = code.encode(&data).unwrap();

    section("Fig. 4 — the piggybacked (2, 2) stripe");
    println!("node 1 stores (a1, b1)                 = ({a1:#04x}, {b1:#04x})");
    println!("node 2 stores (a2, b2)                 = ({a2:#04x}, {b2:#04x})");
    println!(
        "node 3 stores (f1(a), f1(b))           = ({:#04x}, {:#04x})",
        parity[0][0], parity[0][1]
    );
    println!(
        "node 4 stores (f2(a), f2(b) + a1)      = ({:#04x}, {:#04x})   <- piggyback",
        parity[1][0], parity[1][1]
    );

    // Repair node 1 under both codes.
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .chain(parity.iter())
        .cloned()
        .map(Some)
        .collect();
    shards[0] = None;
    let pb_outcome = code.repair(0, &shards).unwrap();

    let rs_data = vec![vec![a1, b1], vec![a2, b2]];
    let rs_parity = rs.encode(&rs_data).unwrap();
    let mut rs_shards: Vec<Option<Vec<u8>>> = rs_data
        .iter()
        .chain(rs_parity.iter())
        .cloned()
        .map(Some)
        .collect();
    rs_shards[0] = None;
    let rs_outcome = rs.repair(0, &rs_shards).unwrap();

    section("Recovering node 1");
    println!(
        "piggybacked code downloads: b2, f1(b), f2(b)+a1  ->  {} bytes from {} nodes",
        pb_outcome.metrics.bytes_transferred, pb_outcome.metrics.helpers
    );
    println!(
        "plain RS code downloads   : both symbols of any 2 nodes -> {} bytes from {} nodes",
        rs_outcome.metrics.bytes_transferred, rs_outcome.metrics.helpers
    );
    assert_eq!(pb_outcome.shard, data[0]);
    assert_eq!(rs_outcome.shard, data[0]);

    section("Paper vs. measured");
    print_comparison(&[
        row(
            "bytes downloaded to recover node 1 (piggybacked)",
            3,
            pb_outcome.metrics.bytes_transferred,
        ),
        row(
            "bytes downloaded to recover node 1 (RS)",
            4,
            rs_outcome.metrics.bytes_transferred,
        ),
        row(
            "fault tolerance (any failures of 4 nodes)",
            2,
            code.fault_tolerance(),
        ),
        row(
            "extra storage used by the piggyback",
            "none",
            "none (same 4 x 2 bytes)",
        ),
    ]);
}
