//! Experiment E5 — §3.1/§3.2: the (10, 4) Piggybacked-RS code saves about
//! 30 % of the data read and downloaded for single-block recovery, while
//! remaining MDS and supporting arbitrary parameters. Also sweeps other
//! (k, r) choices to show the flexibility claim.

#![forbid(unsafe_code)]

use pbrs_bench::{f2, pct, print_comparison, row, section};
use pbrs_core::{registry, SavingsReport};
use pbrs_erasure::CodeSpec;
use pbrs_trace::report::to_markdown_table;

fn main() {
    let paper = pbrs_bench::paper();
    let report = SavingsReport::for_params(10, 4).unwrap();
    let facebook = registry::build(&CodeSpec::FACEBOOK_PIGGYBACK).unwrap();

    section("Per-block repair cost of Piggybacked-RS(10, 4)");
    print!("{}", report.to_table());

    section("Paper vs. measured");
    print_comparison(&[
        row(
            "single-failure read/download saving (average)",
            format!("~{}%", (paper.piggyback_recovery_saving * 100.0) as u64),
            format!(
                "{} over data blocks, {} over all 14 blocks",
                pct(report.average_data_saving * 100.0),
                pct(report.average_all_saving * 100.0)
            ),
        ),
        row(
            "storage overhead",
            format!("{}x (storage optimal)", paper.rs_storage_overhead),
            format!("{}x (MDS preserved)", f2(facebook.storage_overhead())),
        ),
        row(
            "failures tolerated per stripe",
            4,
            facebook.fault_tolerance(),
        ),
        row(
            "blocks of helper data per data-block repair",
            "~7 of 10",
            f2(report.average_data_shards_downloaded()),
        ),
    ]);

    section("Parameter sweep — the construction works for any (k, r)");
    let mut rows = Vec::new();
    for (k, r) in [
        (6usize, 3usize),
        (10, 4),
        (12, 4),
        (14, 10),
        (10, 2),
        (20, 5),
    ] {
        let sweep = SavingsReport::for_params(k, r).unwrap();
        let code = registry::build(&CodeSpec::PiggybackedRs { k, r }).unwrap();
        rows.push(vec![
            format!("({k}, {r})"),
            f2(code.storage_overhead()),
            f2(sweep.average_data_shards_downloaded()),
            pct(sweep.average_data_saving * 100.0),
            pct(sweep.average_all_saving * 100.0),
        ]);
    }
    print!(
        "{}",
        to_markdown_table(
            &[
                "(k, r)",
                "storage overhead",
                "blocks downloaded per data-block repair",
                "saving vs RS (data blocks)",
                "saving vs RS (all blocks)"
            ],
            &rows
        )
    );
    println!();
    println!(
        "note: the paper's ~30% figure refers to single *block* recoveries, which are \
         98% of all recoveries (§2.2); data-block repairs save 30-35% each, parity-block \
         repairs are unchanged under this design."
    );
}
