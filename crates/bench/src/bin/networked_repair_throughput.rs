//! Store experiment — repair throughput when every disk is a chunkd TCP
//! server on loopback: ingest an object through the sockets, wipe one
//! server's disk, and time the repair daemon rebuilding it over the wire,
//! reporting rebuilt MB/s and the helper bytes that crossed the sockets
//! for each code. The networked twin of `store_repair_throughput`: same
//! workload, but every helper byte pays for a real socket round trip.
//!
//! Usage: `networked_repair_throughput [object-MiB] [chunk-KiB] [workers]`
//! (defaults: 32 MiB objects, 256 KiB chunks, 4 workers).

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::sync::Arc;
use std::time::Instant;

use pbrs_bench::{f1, section};
use pbrs_chunkd::{ChunkServer, RemoteDisk, ServerConfig};
use pbrs_core::registry;
use pbrs_store::testing::TempDir;
use pbrs_store::{
    BlockStore, ChunkBackend, DaemonConfig, PlacementPolicy, RackMap, RepairDaemon, StoreConfig,
};
use pbrs_trace::report::to_markdown_table;

const SPECS: [&str; 2] = ["rs-10-4", "piggyback-10-4"];
const LOST_DISK: usize = 0;

struct Measurement {
    code: String,
    ingest_mb_s: f64,
    repair_mb_s: f64,
    helper_socket_mib: f64,
    rebuilt_mib: f64,
}

fn arg(n: usize, default: usize) -> usize {
    env::args()
        .nth(n)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn measure(spec: &str, object_len: usize, chunk_len: usize, workers: usize) -> Measurement {
    let dir = TempDir::new(&format!("bench-netstore-{spec}"));
    let code_spec = spec.parse().expect("valid spec");
    let n = registry::build(&code_spec)
        .expect("buildable spec")
        .params()
        .total_shards();
    let servers: Vec<ChunkServer> = (0..n)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 2,
                    ..ServerConfig::default()
                },
            )
            .expect("bind chunk server")
        })
        .collect();
    let remotes: Vec<Arc<RemoteDisk>> = servers
        .iter()
        .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())))
        .collect();
    let disks: Vec<Arc<dyn ChunkBackend>> = remotes
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ChunkBackend>)
        .collect();
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), code_spec).chunk_len(chunk_len),
            disks,
            RackMap::per_disk(n),
            PlacementPolicy::Identity,
        )
        .expect("open store"),
    );

    let data: Vec<u8> = (0..object_len)
        .map(|i| ((i * 131 + 17) % 255) as u8)
        .collect();
    let started = Instant::now();
    let info = store.put("bench-object", &data[..]).expect("put");
    let ingest_secs = started.elapsed().as_secs_f64();

    fs::remove_dir_all(servers[LOST_DISK].root()).expect("wipe disk");
    let helpers_before: u64 = remotes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != LOST_DISK)
        .map(|(_, r)| r.counters().bytes_received)
        .sum();

    let daemon = RepairDaemon::start(
        Arc::clone(&store),
        DaemonConfig {
            workers,
            scan_interval: None,
        },
    );
    let started = Instant::now();
    daemon.scan_now().expect("scan");
    daemon.wait_idle();
    let repair_secs = started.elapsed().as_secs_f64();
    let stats = daemon.shutdown();
    // Measure the repair's socket traffic before the verification scrub
    // below adds its own (small) verify responses.
    let helper_socket: u64 = remotes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != LOST_DISK)
        .map(|(_, r)| r.counters().bytes_received)
        .sum::<u64>()
        - helpers_before;
    assert_eq!(stats.failures, 0, "{spec}: repairs must succeed");
    assert_eq!(stats.chunks_repaired, info.stripes, "{spec}");
    assert!(store.scrub().expect("scrub").is_clean(), "{spec}");

    Measurement {
        code: store.code().name(),
        ingest_mb_s: mib(info.len) / ingest_secs,
        repair_mb_s: mib(stats.bytes_written) / repair_secs,
        helper_socket_mib: mib(helper_socket),
        rebuilt_mib: mib(stats.bytes_written),
    }
}

fn main() {
    let object_mib = arg(1, 32);
    let chunk_kib = arg(2, 256);
    let workers = arg(3, 4);
    let object_len = object_mib * 1024 * 1024;
    let chunk_len = chunk_kib * 1024;

    section(&format!(
        "Networked repair throughput over loopback chunkd ({object_mib} MiB object, \
         {chunk_kib} KiB chunks, {workers} workers, disk {LOST_DISK} wiped) \
         [gf backend: {}]",
        pbrs_gf::backend::active()
    ));

    let measurements: Vec<Measurement> = SPECS
        .iter()
        .map(|spec| {
            eprintln!("[pbrs-bench] networked store workload: {spec}");
            measure(spec, object_len, chunk_len, workers)
        })
        .collect();

    let header = [
        "code",
        "ingest MB/s",
        "repair MB/s",
        "helper MiB (socket rx)",
        "rebuilt MiB",
    ];
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.code.clone(),
                f1(m.ingest_mb_s),
                f1(m.repair_mb_s),
                f1(m.helper_socket_mib),
                f1(m.rebuilt_mib),
            ]
        })
        .collect();
    print!("{}", to_markdown_table(&header, &rows));

    let saving = 1.0 - measurements[1].helper_socket_mib / measurements[0].helper_socket_mib;
    println!(
        "\nPiggybacked-RS helper traffic on the sockets: {:.1}% below RS on the \
         identical workload.",
        saving * 100.0
    );
}
