//! Experiment E6 — §3.2 "Amount of download": replacing the production
//! RS(10, 4) code with the Piggybacked-RS(10, 4) code would remove more than
//! 50 TB of cross-rack recovery traffic per day. Reproduced by running the
//! warehouse-cluster simulation twice on the identical failure trace (same
//! seed), once per code, and differencing the daily cross-rack traffic.

#![forbid(unsafe_code)]

use pbrs_bench::{f1, print_comparison, row, section};
use pbrs_cluster::sim::paired_rs_vs_piggybacked;
use pbrs_cluster::SimConfig;
use pbrs_trace::report::to_markdown_table;
use pbrs_trace::stats::Summary;

fn main() {
    let paper = pbrs_bench::paper();
    let config = SimConfig::facebook();
    eprintln!(
        "[pbrs-bench] running the paired RS vs Piggybacked-RS simulation (same failure trace)..."
    );
    let (rs, pb) = paired_rs_vs_piggybacked(config);

    section("Per-day cross-rack recovery traffic: RS(10,4) vs Piggybacked-RS(10,4)");
    let mut savings = Vec::new();
    let mut rows = Vec::new();
    for (a, b) in rs.days.iter().zip(pb.days.iter()) {
        let delta = a.cross_rack_tb() - b.cross_rack_tb();
        savings.push(delta);
        rows.push(vec![
            a.day.to_string(),
            f1(a.cross_rack_tb()),
            f1(b.cross_rack_tb()),
            f1(delta),
        ]);
    }
    print!(
        "{}",
        to_markdown_table(
            &[
                "day",
                "RS cross-rack TB",
                "Piggybacked cross-rack TB",
                "saved TB"
            ],
            &rows
        )
    );

    let rs_tb = rs.cross_rack_tb_summary();
    let pb_tb = pb.cross_rack_tb_summary();
    let saved = Summary::of(&savings);
    let relative = if rs_tb.mean > 0.0 {
        (1.0 - pb_tb.mean / rs_tb.mean) * 100.0
    } else {
        0.0
    };

    section("Paper vs. measured");
    print_comparison(&[
        row(
            "cross-rack recovery traffic removed per day",
            format!(
                "> {} TB (estimate)",
                paper.estimated_traffic_reduction_tb_per_day
            ),
            format!("{} TB median, {} TB mean", f1(saved.median), f1(saved.mean)),
        ),
        row(
            "relative reduction in recovery traffic",
            "~30% (single-block recoveries)",
            format!("{:.1}% (all recoveries, incl. parity blocks)", relative),
        ),
        row(
            "median RS cross-rack TB / day",
            format!("> {}", paper.median_cross_rack_recovery_tb_per_day),
            f1(rs_tb.median),
        ),
        row(
            "median Piggybacked cross-rack TB / day",
            "-",
            f1(pb_tb.median),
        ),
    ]);

    println!();
    println!(
        "note: the paper's >50 TB/day estimate applies the 30% data-block saving to the \
         whole 180 TB/day; in the simulation parity-block recoveries (4 of every 14) see \
         no saving under this design, so the measured reduction is slightly smaller but \
         of the same order. Blocks reconstructed: RS {} vs Piggybacked {} (the piggybacked \
         run finishes more blocks per outage because each one is cheaper).",
        rs.total_blocks_reconstructed(),
        pb.total_blocks_reconstructed()
    );
}
