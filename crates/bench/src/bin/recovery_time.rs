//! Experiment E8 — §3.2 "Time taken for recovery": at multi-megabyte block
//! sizes recovery time is governed by the total bytes read and transferred,
//! not by the number of helper nodes contacted, so Piggybacked-RS (more
//! helpers, fewer bytes) recovers a block *faster* than RS.

#![forbid(unsafe_code)]

use pbrs_bench::{f2, section};
use pbrs_cluster::network::TransferModel;
use pbrs_core::SavingsReport;
use pbrs_trace::calibration::MB;
use pbrs_trace::report::to_markdown_table;

fn main() {
    let model = TransferModel::cluster_default(40.0 * MB as f64);
    let report = SavingsReport::for_params(10, 4).unwrap();
    // A data block in a group of 3: 6.5 blocks of helper data from 11 nodes.
    let pb_blocks = report.per_shard[5].shards_downloaded;
    let pb_helpers = report.per_shard[5].helpers;

    section("Recovery time vs. block size (RS(10,4) vs Piggybacked-RS(10,4))");
    let mut rows = Vec::new();
    for block_mb in [1u64, 4, 16, 64, 128, 256] {
        let block = block_mb * MB;
        let rs_secs = model.recovery_seconds(10 * block, 10);
        let pb_secs = model.recovery_seconds((pb_blocks * block as f64) as u64, pb_helpers);
        rows.push(vec![
            format!("{block_mb} MB"),
            f2(rs_secs),
            f2(pb_secs),
            f2(rs_secs / pb_secs),
            format!(
                "{:.2}%",
                100.0 * pb_helpers as f64 * model.per_helper_setup_secs / pb_secs
            ),
        ]);
    }
    print!(
        "{}",
        to_markdown_table(
            &[
                "block size",
                "RS recovery (s)",
                "Piggybacked recovery (s)",
                "speedup",
                "helper-setup share of Piggybacked time"
            ],
            &rows
        )
    );

    println!();
    println!(
        "At the 256 MB production block size the per-helper connection cost is well under \
         1% of the recovery time, so contacting 11 helpers instead of 10 is irrelevant — \
         exactly the paper's observation that \"the system is limited by the network and \
         disk bandwidths, making the recovery time dependent only on the total amount of \
         data read and transferred\". The ~35% fewer bytes therefore translate directly \
         into ~1.5x faster single-block recovery and a higher MTTDL."
    );
}
