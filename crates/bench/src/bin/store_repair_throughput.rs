//! Store experiment — repair throughput of the file-backed block store:
//! ingest an object, destroy one disk, and time the repair daemon
//! rebuilding it, reporting rebuilt MB/s and cross-disk helper traffic for
//! each code. This is the paper's repair-bandwidth argument measured on
//! real chunk files rather than the simulator.
//!
//! Usage: `store_repair_throughput [object-MiB] [chunk-KiB] [workers]`
//! (defaults: 64 MiB objects, 256 KiB chunks, 4 workers).

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::sync::Arc;
use std::time::Instant;

use pbrs_bench::{f1, section};
use pbrs_store::testing::TempDir;
use pbrs_store::{BlockStore, DaemonConfig, RepairDaemon, StoreConfig};
use pbrs_trace::report::to_markdown_table;

const SPECS: [&str; 2] = ["rs-10-4", "piggyback-10-4"];
const LOST_DISK: usize = 0;

struct Measurement {
    code: String,
    ingest_mb_s: f64,
    repair_mb_s: f64,
    rebuilt_mib: f64,
    helper_mib: f64,
}

fn arg(n: usize, default: usize) -> usize {
    env::args()
        .nth(n)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn measure(spec: &str, object_len: usize, chunk_len: usize, workers: usize) -> Measurement {
    let dir = TempDir::new(&format!("bench-store-{spec}"));
    let store = Arc::new(
        BlockStore::open(
            StoreConfig::new(dir.path().join("store"), spec.parse().expect("valid spec"))
                .chunk_len(chunk_len),
        )
        .expect("open store"),
    );

    let data: Vec<u8> = (0..object_len)
        .map(|i| ((i * 131 + 17) % 255) as u8)
        .collect();
    let started = Instant::now();
    let info = store.put("bench-object", &data[..]).expect("put");
    let ingest_secs = started.elapsed().as_secs_f64();

    fs::remove_dir_all(store.disk_path(LOST_DISK)).expect("remove disk");

    let daemon = RepairDaemon::start(
        Arc::clone(&store),
        DaemonConfig {
            workers,
            scan_interval: None,
        },
    );
    let started = Instant::now();
    daemon.scan_now().expect("scan");
    daemon.wait_idle();
    let repair_secs = started.elapsed().as_secs_f64();
    let stats = daemon.shutdown();
    assert_eq!(stats.failures, 0, "{spec}: repairs must succeed");
    assert_eq!(stats.chunks_repaired, info.stripes, "{spec}");
    assert!(store.scrub().expect("scrub").is_clean(), "{spec}");

    Measurement {
        code: store.code().name(),
        ingest_mb_s: mib(info.len) / ingest_secs,
        repair_mb_s: mib(stats.bytes_written) / repair_secs,
        rebuilt_mib: mib(stats.bytes_written),
        helper_mib: mib(stats.helper_bytes),
    }
}

fn main() {
    let object_mib = arg(1, 64);
    let chunk_kib = arg(2, 256);
    let workers = arg(3, 4);
    let object_len = object_mib * 1024 * 1024;
    let chunk_len = chunk_kib * 1024;

    section(&format!(
        "Store repair throughput ({object_mib} MiB object, {chunk_kib} KiB chunks, \
         {workers} workers, disk {LOST_DISK} lost) [gf backend: {}]",
        pbrs_gf::backend::active()
    ));

    let measurements: Vec<Measurement> = SPECS
        .iter()
        .map(|spec| {
            eprintln!("[pbrs-bench] store workload: {spec}");
            measure(spec, object_len, chunk_len, workers)
        })
        .collect();

    let header = [
        "code",
        "ingest MB/s",
        "repair MB/s",
        "rebuilt MiB",
        "helper MiB",
    ];
    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.code.clone(),
                f1(m.ingest_mb_s),
                f1(m.repair_mb_s),
                f1(m.rebuilt_mib),
                f1(m.helper_mib),
            ]
        })
        .collect();
    print!("{}", to_markdown_table(&header, &rows));

    let saving = 1.0 - measurements[1].helper_mib / measurements[0].helper_mib;
    println!(
        "\nPiggybacked-RS helper traffic: {:.1}% below RS on the identical workload.",
        saving * 100.0
    );
}
