//! Experiment E1 — Fig. 3a: machines unavailable for more than 15 minutes
//! per day, over the paper's ~34-day measurement window (and a longer
//! 90-day horizon for stability of the median).

#![forbid(unsafe_code)]

use pbrs_bench::{f1, print_comparison, row, section};
use pbrs_trace::report::ascii_series;
use pbrs_trace::stats::Summary;
use pbrs_trace::unavailability::UnavailabilityModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let paper = pbrs_bench::paper();
    let days = paper.unavailability_window_days;
    let model = UnavailabilityModel::facebook(paper.approx_machines);
    let mut rng = StdRng::seed_from_u64(0x2013_0122);
    let events = model.generate(&mut rng, days);
    let counts = UnavailabilityModel::daily_qualifying_counts(
        &events,
        days,
        paper.detection_timeout_minutes,
    );
    let summary = Summary::of_counts(&counts);

    section("Fig. 3a — machines unavailable for > 15 minutes per day");
    let labels: Vec<String> = (0..days).map(|d| format!("day {d:02}")).collect();
    let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    print!(
        "{}",
        ascii_series(
            "machine-unavailability events per day",
            &labels,
            &values,
            60
        )
    );

    section("Paper vs. measured");
    print_comparison(&[
        row(
            "median machine-unavailability events / day",
            format!("> {}", paper.median_unavailability_events_per_day),
            f1(summary.median),
        ),
        row("busiest day (events)", "~250-350 (spikes)", f1(summary.max)),
        row("quietest day (events)", "~20-40", f1(summary.min)),
        row("measurement window (days)", days, days),
    ]);

    // A longer horizon to show the median is stable, not a lucky window.
    let mut rng = StdRng::seed_from_u64(0x2013_0122);
    let long = model.generate(&mut rng, 90);
    let long_summary = Summary::of_counts(&UnavailabilityModel::daily_qualifying_counts(
        &long,
        90,
        paper.detection_timeout_minutes,
    ));
    println!();
    println!(
        "90-day horizon: median {:.1}, p10 {:.1}, p90 {:.1}, max {:.0}",
        long_summary.median, long_summary.p10, long_summary.p90, long_summary.max
    );
}
