//! Experiment E2 — Fig. 3b: RS-coded HDFS blocks reconstructed per day and
//! cross-rack bytes transferred for recovery per day, over 24 simulated days
//! of the Facebook-calibrated warehouse cluster running the production
//! RS(10, 4) code.

#![forbid(unsafe_code)]

use pbrs_bench::{f1, print_comparison, row, run_simulation, section};
use pbrs_cluster::SimConfig;
use pbrs_trace::report::{human_count, to_markdown_table};

fn main() {
    let paper = pbrs_bench::paper();
    let config = SimConfig::facebook();
    let report = run_simulation("warehouse cluster, RS(10,4)", config);

    section("Fig. 3b — per-day recovery activity (RS(10, 4))");
    let rows: Vec<Vec<String>> = report
        .days
        .iter()
        .map(|d| {
            vec![
                d.day.to_string(),
                d.machines_flagged.to_string(),
                human_count(d.blocks_reconstructed),
                format!("{:.1}", d.cross_rack_tb()),
            ]
        })
        .collect();
    print!(
        "{}",
        to_markdown_table(
            &[
                "day",
                "machines flagged",
                "blocks reconstructed",
                "cross-rack TB"
            ],
            &rows
        )
    );

    let blocks = report.blocks_summary();
    let tb = report.cross_rack_tb_summary();
    let flagged = report.flagged_summary();

    section("Paper vs. measured");
    print_comparison(&[
        row(
            "median RS blocks reconstructed / day",
            human_count(paper.median_blocks_reconstructed_per_day as u64),
            human_count(blocks.median as u64),
        ),
        row(
            "median cross-rack recovery traffic / day",
            format!("> {} TB", paper.median_cross_rack_recovery_tb_per_day),
            format!("{} TB", f1(tb.median)),
        ),
        row(
            "median machines flagged / day",
            format!("> {}", paper.median_unavailability_events_per_day),
            f1(flagged.median),
        ),
        row(
            "range of daily blocks (p10 - p90)",
            "~60K - 120K",
            format!(
                "{} - {}",
                human_count(blocks.p10 as u64),
                human_count(blocks.p90 as u64)
            ),
        ),
        row(
            "range of daily cross-rack TB (p10 - p90)",
            "~50 - 250 TB",
            format!("{} - {} TB", f1(tb.p10), f1(tb.p90)),
        ),
        row(
            "helper blocks downloaded per repaired block",
            "10 (whole logical stripe)",
            f1(report.average_blocks_per_repair),
        ),
    ]);

    println!();
    println!(
        "totals over {} days: {} blocks reconstructed, {:.1} TB cross-rack",
        report.days.len(),
        human_count(report.total_blocks_reconstructed()),
        report.cross_rack_tb_summary().mean * report.days.len() as f64,
    );
}
