//! Gateway experiment — tail latency of streamed GETs under concurrent
//! load, healthy vs degraded.
//!
//! Spins up a gateway over a local store, ingests a population of
//! objects through the gateway itself, wounds a configurable fraction of
//! them (one shard's chunks removed, so every read of those objects pays
//! the reconstruction the paper's §2 is about), then hammers the gateway
//! from many concurrent connections drawing objects from a zipfian
//! popularity distribution. Reports p50/p95/p99 × throughput, split into
//! healthy and degraded reads, plus the gateway's own counters (shed
//! requests must be zero below the admission threshold), and writes
//! `BENCH_gateway.json`.
//!
//! Two load modes:
//!
//! * **closed** (default): each connection issues its next GET the moment
//!   the previous one completes — classic closed-loop, measures capacity.
//! * **open:RATE**: arrivals are scheduled at RATE requests/s spread over
//!   the connections, and latency is measured from the *scheduled*
//!   arrival, so queueing delay counts — the honest tail-latency view.
//!
//! Usage: `load_gateway [seconds] [connections] [objects] [object-KiB]
//! [degraded-%] [mode] [max-inflight]` (defaults: 10 s, 256 connections,
//! 64 objects, 256 KiB, 25 %, closed, 4096). Lower `max-inflight` below
//! the connection count to watch the gateway shed with explicit BUSY
//! instead of queueing.

use std::env;
use std::fs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use pbrs_bench::{f1, section};
use pbrs_gateway::client::GatewayClient;
use pbrs_gateway::server::{Gateway, GatewayConfig};
use pbrs_gateway::GatewayError;
use pbrs_store::store::{BlockStore, StoreConfig};
use pbrs_store::testing::TempDir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPEC: &str = "piggyback-4-2";
const CHUNK_LEN: usize = 16 * 1024; // 64 KiB stripes
const WOUNDED_DISK: usize = 1;
const ZIPF_S: f64 = 1.0;

fn arg(n: usize, default: usize) -> usize {
    env::args()
        .nth(n)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Zipfian sampler over `n` ranks: precomputed CDF, binary-searched.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Closed,
    /// Total arrival rate in requests/s across all connections.
    Open(f64),
}

struct Sample {
    latency_us: u64,
    degraded: bool,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0; // keeps the JSON valid when a class saw no reads
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

struct LatencyStats {
    count: usize,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

fn stats(samples: &mut [u64]) -> LatencyStats {
    samples.sort_unstable();
    let mean_us = if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    };
    LatencyStats {
        count: samples.len(),
        p50_ms: percentile(samples, 0.50),
        p95_ms: percentile(samples, 0.95),
        p99_ms: percentile(samples, 0.99),
        mean_ms: mean_us / 1000.0,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let seconds = arg(1, 10);
    let connections = arg(2, 256);
    let objects = arg(3, 64).max(1);
    let object_len = arg(4, 256).max(1) * 1024;
    let degraded_pct = arg(5, 25).min(100);
    let mode = match env::args().nth(6).unwrap_or_else(|| "closed".into()) {
        m if m.starts_with("open:") => Mode::Open(
            m.trim_start_matches("open:")
                .parse()
                .expect("open:RATE with a numeric total requests/s"),
        ),
        _ => Mode::Closed,
    };
    let max_inflight = arg(7, 4096).max(1);

    section("gateway load: streamed GETs, zipfian popularity, degraded share");
    println!(
        "{connections} connections x {seconds} s, {objects} objects of {} KiB \
         ({SPEC}, {} KiB chunks), {degraded_pct}% wounded, mode {}",
        object_len / 1024,
        CHUNK_LEN / 1024,
        match mode {
            Mode::Closed => "closed-loop".to_string(),
            Mode::Open(rate) => format!("open-loop at {rate} req/s"),
        }
    );

    let dir = TempDir::new("bench-gateway");
    let store = Arc::new(
        BlockStore::open(
            StoreConfig::new(dir.path().join("store"), SPEC.parse().expect("spec"))
                .chunk_len(CHUNK_LEN)
                .pipeline_workers(1),
        )
        .expect("open store"),
    );
    let gateway = Gateway::serve(
        Arc::clone(&store),
        "127.0.0.1:0",
        GatewayConfig {
            workers: thread::available_parallelism().map_or(4, |p| p.get()),
            max_connections: connections + 16,
            in_flight_stripes: 4,
            max_inflight_requests: max_inflight,
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();

    // Population, ingested through the gateway itself.
    let mut seeder = GatewayClient::connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x9a7e_aa7e);
    let payload: Vec<u8> = (0..object_len).map(|_| rng.random()).collect();
    for i in 0..objects {
        seeder
            .put(&format!("obj-{i:04}"), &payload)
            .expect("ingest");
    }
    // Wound the configured fraction: drop one shard's chunks so every
    // read of those objects reconstructs from survivors.
    let wounded = objects * degraded_pct / 100;
    for i in 0..wounded {
        let dir = store.disk_path(WOUNDED_DISK).join(format!("obj-{i:04}"));
        fs::remove_dir_all(&dir).expect("wound object");
    }
    println!(
        "ingested {objects} objects ({} MiB logical), wounded {wounded}",
        objects * object_len / (1024 * 1024)
    );

    let zipf = Arc::new(Zipf::new(objects, ZIPF_S));
    let stop = Arc::new(AtomicBool::new(false));
    let busy_count = Arc::new(AtomicU64::new(0));
    let error_count = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds as u64);
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let zipf = Arc::clone(&zipf);
            let stop = Arc::clone(&stop);
            let busy_count = Arc::clone(&busy_count);
            let error_count = Arc::clone(&error_count);
            thread::spawn(move || -> Vec<Sample> {
                let mut client = GatewayClient::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let mut rng = StdRng::seed_from_u64(0xc0ffee ^ c as u64);
                let mut samples = Vec::new();
                // Open-loop schedule: this connection's share of the rate,
                // staggered so arrivals spread within the first interval.
                let interval = match mode {
                    Mode::Closed => Duration::ZERO,
                    Mode::Open(rate) => Duration::from_secs_f64(connections as f64 / rate),
                };
                let mut next_arrival = start
                    + match mode {
                        Mode::Closed => Duration::ZERO,
                        Mode::Open(_) => interval.mul_f64(c as f64 / connections as f64),
                    };
                loop {
                    let now = Instant::now();
                    if now >= deadline || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let measured_from = match mode {
                        Mode::Closed => now,
                        Mode::Open(_) => {
                            if now < next_arrival {
                                thread::sleep(next_arrival - now);
                            }
                            let scheduled = next_arrival;
                            next_arrival += interval;
                            scheduled
                        }
                    };
                    let name = format!("obj-{:04}", zipf.sample(&mut rng));
                    let mut sink = 0usize;
                    match client.get_streamed(&name, |stripe| sink += stripe.len()) {
                        Ok(degraded_stripes) => {
                            assert!(sink > 0, "empty stream for {name}");
                            samples.push(Sample {
                                latency_us: measured_from.elapsed().as_micros() as u64,
                                degraded: degraded_stripes > 0,
                            });
                        }
                        Err(GatewayError::Busy) => {
                            busy_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            error_count.fetch_add(1, Ordering::Relaxed);
                            eprintln!("GET {name}: {e}");
                        }
                    }
                }
                samples
            })
        })
        .collect();

    let all: Vec<Sample> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("load thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut healthy: Vec<u64> = all
        .iter()
        .filter(|s| !s.degraded)
        .map(|s| s.latency_us)
        .collect();
    let mut degraded: Vec<u64> = all
        .iter()
        .filter(|s| s.degraded)
        .map(|s| s.latency_us)
        .collect();
    let mut overall: Vec<u64> = all.iter().map(|s| s.latency_us).collect();
    let h = stats(&mut healthy);
    let d = stats(&mut degraded);
    let o = stats(&mut overall);

    let snapshot = gateway.metrics().snapshot();
    let busy = busy_count.load(Ordering::Relaxed);
    let errors = error_count.load(Ordering::Relaxed);
    let req_s = all.len() as f64 / elapsed;
    let mb_s = (all.len() * object_len) as f64 / elapsed / (1024.0 * 1024.0);
    let degraded_share = if all.is_empty() {
        0.0
    } else {
        d.count as f64 / all.len() as f64
    };

    println!();
    println!(
        "{:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "class", "reads", "p50 ms", "p95 ms", "p99 ms", "mean ms"
    );
    for (label, s) in [("healthy", &h), ("degraded", &d), ("overall", &o)] {
        println!(
            "{label:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
            s.count,
            f1(s.p50_ms),
            f1(s.p95_ms),
            f1(s.p99_ms),
            f1(s.mean_ms)
        );
    }
    println!();
    println!(
        "throughput: {} req/s, {} MiB/s streamed; degraded share {}%",
        f1(req_s),
        f1(mb_s),
        f1(degraded_share * 100.0)
    );
    println!(
        "gateway: {} stripes served ({} degraded), {} shed, {} refused conns, {} client errors",
        snapshot.stripes_served,
        snapshot.degraded_stripes_served,
        snapshot.requests_shed,
        snapshot.connections_refused,
        errors,
    );
    assert_eq!(
        busy, snapshot.requests_shed,
        "client BUSY count and gateway shed count disagree"
    );
    if errors > 0 {
        eprintln!("WARNING: {errors} failed reads");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gateway_load\",\n",
            "  \"spec\": \"{spec}\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seconds\": {seconds},\n",
            "  \"connections\": {connections},\n",
            "  \"objects\": {objects},\n",
            "  \"object_bytes\": {object_bytes},\n",
            "  \"degraded_pct_configured\": {degraded_pct},\n",
            "  \"requests\": {requests},\n",
            "  \"req_per_s\": {req_s},\n",
            "  \"mib_per_s\": {mb_s},\n",
            "  \"degraded_share\": {degraded_share},\n",
            "  \"busy_shed\": {busy},\n",
            "  \"client_errors\": {errors},\n",
            "  \"healthy\": {{\"reads\": {hc}, \"p50_ms\": {hp50}, \"p95_ms\": {hp95}, \"p99_ms\": {hp99}, \"mean_ms\": {hmean}}},\n",
            "  \"degraded\": {{\"reads\": {dc}, \"p50_ms\": {dp50}, \"p95_ms\": {dp95}, \"p99_ms\": {dp99}, \"mean_ms\": {dmean}}},\n",
            "  \"overall\": {{\"reads\": {oc}, \"p50_ms\": {op50}, \"p95_ms\": {op95}, \"p99_ms\": {op99}, \"mean_ms\": {omean}}},\n",
            "  \"gateway_metrics\": {gw}\n",
            "}}\n"
        ),
        spec = SPEC,
        mode = match mode {
            Mode::Closed => "closed".to_string(),
            Mode::Open(rate) => format!("open:{rate}"),
        },
        seconds = seconds,
        connections = connections,
        objects = objects,
        object_bytes = object_len,
        degraded_pct = degraded_pct,
        requests = all.len(),
        req_s = f1(req_s),
        mb_s = f1(mb_s),
        degraded_share = f1(degraded_share),
        busy = busy,
        errors = errors,
        hc = h.count,
        hp50 = f1(h.p50_ms),
        hp95 = f1(h.p95_ms),
        hp99 = f1(h.p99_ms),
        hmean = f1(h.mean_ms),
        dc = d.count,
        dp50 = f1(d.p50_ms),
        dp95 = f1(d.p95_ms),
        dp99 = f1(d.p99_ms),
        dmean = f1(d.mean_ms),
        oc = o.count,
        op50 = f1(o.p50_ms),
        op95 = f1(o.p95_ms),
        op99 = f1(o.p99_ms),
        omean = f1(o.mean_ms),
        gw = snapshot.to_json(),
    );
    fs::write("BENCH_gateway.json", &json).expect("write BENCH_gateway.json");
    println!("Wrote BENCH_gateway.json ({} samples).", all.len());

    gateway.shutdown();
}
