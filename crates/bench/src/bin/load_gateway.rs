//! Gateway experiment — tail latency of streamed GETs under concurrent
//! load, healthy vs degraded.
//!
//! Spins up a gateway over a local store, ingests a population of
//! objects through the gateway itself, wounds a configurable fraction of
//! them (one shard's chunks removed, so every read of those objects pays
//! the reconstruction the paper's §2 is about), then hammers the gateway
//! from many concurrent connections drawing objects from a zipfian
//! popularity distribution. Reports p50/p95/p99 × throughput, split into
//! healthy and degraded reads, plus the gateway's own counters (shed
//! requests must be zero below the admission threshold), and writes
//! `BENCH_gateway.json`.
//!
//! Latency is recorded into the same `pbrs-obs` log-linear histograms
//! the gateway uses server-side, so the harness can cross-check its
//! client-observed percentiles against the gateway's `METRICS` ops
//! summaries — in closed-loop mode both measure the same interval
//! (request start → last byte of the response stream) and must agree to
//! within 10% or one histogram bucket. The server's per-stage
//! (queue/erasure/chunk-io/flush) breakdown and the full Prometheus
//! exposition are captured alongside (`BENCH_gateway.prom`).
//!
//! Two load modes:
//!
//! * **closed** (default): each connection issues its next GET the moment
//!   the previous one completes — classic closed-loop, measures capacity.
//! * **open:RATE**: arrivals are scheduled at RATE requests/s spread over
//!   the connections, and latency is measured from the *scheduled*
//!   arrival, so queueing delay counts — the honest tail-latency view.
//!   (The server cross-check is skipped here: the gateway cannot see
//!   time spent queueing before the request reaches it.)
//!
//! Usage: `load_gateway [seconds] [connections] [objects] [object-KiB]
//! [degraded-%] [mode] [max-inflight]` (defaults: 10 s, 256 connections,
//! 64 objects, 256 KiB, 25 %, closed, 4096). Lower `max-inflight` below
//! the connection count to watch the gateway shed with explicit BUSY
//! instead of queueing.
//!
//! **Tracing**: the gateway's flight recorder runs at default sampling
//! (every degraded/slow/errored root retained, 1-in-N healthy) unless
//! `--no-trace` disables it — the knob exists so the same run can be
//! timed with tracing compiled in but off, quantifying overhead. With
//! tracing on, the 10 slowest retained traces are written to
//! `BENCH_gateway_traces.json` in Chrome trace_event format
//! (Perfetto-loadable), and the run asserts the flight-recorder
//! contract: every degraded GET promoted a retained trace, and every
//! retained degraded GET carries `chunk_io` spans — on remote disks
//! (`--remote-disks`, which rebuilds the pool as loopback chunkd
//! servers) those spans must name `chunkd://` backends with nonzero
//! durations.
//!
//! **Chaos mode**: `--fault-plan NAME-OR-DSL [--fault-seed N]` (seed
//! defaults to 42) rebuilds the store on fault-injected disks (a named
//! plan like `stall-one-disk`, or the DSL documented in
//! `pbrs_store::fault`) and hardens it with an op deadline, hedged
//! rebuilds, and the health tracker. The run then *asserts* the
//! failure-domain contract: zero client errors, degraded p99 bounded by
//! the deadline, and — for stall plans — the stalled disk demoted out of
//! `healthy`. The injected state rides into `BENCH_gateway.json` under
//! `"fault"`.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use pbrs_bench::{f1, section};
use pbrs_chunkd::{ChunkServer, RemoteDisk, ServerConfig};
use pbrs_gateway::client::GatewayClient;
use pbrs_gateway::server::{Gateway, GatewayConfig};
use pbrs_gateway::GatewayError;
use pbrs_obs::hist::{bucket_bounds, bucket_index};
use pbrs_obs::trace::{retained_to_chrome, TracerConfig};
use pbrs_obs::{HistogramSnapshot, LatencyHistogram, Summary};
use pbrs_store::store::{BlockStore, StoreConfig};
use pbrs_store::testing::TempDir;
use pbrs_store::{
    ChunkBackend, DiskState, FaultPlan, FaultyBackend, HealthPolicy, LocalDisk, PlacementPolicy,
    RackMap,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SPEC: &str = "piggyback-4-2";
const CHUNK_LEN: usize = 16 * 1024; // 64 KiB stripes
const DISKS: usize = 6;
const WOUNDED_DISK: usize = 1;
const ZIPF_S: f64 = 1.0;
/// Per-disk-op deadline in chaos mode; a stalled chunk read is abandoned
/// (and served degraded) after this long.
const OP_DEADLINE: Duration = Duration::from_millis(500);
/// Smallest per-class sample count for which the client-vs-server
/// percentile agreement is asserted rather than just reported.
const AGREEMENT_MIN_SAMPLES: u64 = 50;
/// Absolute floor on the agreement tolerance, microseconds — loopback
/// scheduling noise makes tighter bars flaky for sub-millisecond reads.
const AGREEMENT_FLOOR_US: f64 = 200.0;

/// Parsed flags: positional args, fault plan text, fault seed, tracing
/// switch, remote-disk switch.
struct Flags {
    argv: Vec<String>,
    fault_text: Option<String>,
    fault_seed: u64,
    trace: bool,
    remote_disks: bool,
}

/// Splits `--fault-plan NAME [--fault-seed N] [--no-trace]
/// [--remote-disks]` out of the command line, leaving the positional
/// args in place.
fn parse_args() -> Flags {
    let mut argv: Vec<String> = env::args().collect();
    let mut fault_text = None;
    let mut fault_seed = 42u64;
    let mut trace = true;
    let mut remote_disks = false;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fault-plan" => {
                argv.remove(i);
                fault_text = Some(if i < argv.len() {
                    argv.remove(i)
                } else {
                    panic!("--fault-plan needs a plan name or DSL string")
                });
            }
            "--fault-seed" => {
                argv.remove(i);
                fault_seed = if i < argv.len() {
                    argv.remove(i).parse().expect("numeric --fault-seed")
                } else {
                    panic!("--fault-seed needs a value")
                };
            }
            "--no-trace" => {
                argv.remove(i);
                trace = false;
            }
            "--remote-disks" => {
                argv.remove(i);
                remote_disks = true;
            }
            _ => i += 1,
        }
    }
    Flags {
        argv,
        fault_text,
        fault_seed,
        trace,
        remote_disks,
    }
}

/// Zipfian sampler over `n` ranks: precomputed CDF, binary-searched.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Closed,
    /// Total arrival rate in requests/s across all connections.
    Open(f64),
}

/// Renders a microseconds [`Summary`] with the millisecond field names
/// `BENCH_gateway.json` has always carried.
fn summary_json_ms(s: &Summary) -> String {
    format!(
        concat!(
            "{{\"reads\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, ",
            "\"p999_ms\": {}, \"mean_ms\": {}, \"max_ms\": {}}}"
        ),
        s.count,
        f1(s.p50_us as f64 / 1000.0),
        f1(s.p95_us as f64 / 1000.0),
        f1(s.p99_us as f64 / 1000.0),
        f1(s.p999_us as f64 / 1000.0),
        f1(s.mean_us / 1000.0),
        f1(s.max_us as f64 / 1000.0),
    )
}

/// Finds `"key":{...}` in compact JSON and returns the braced object,
/// brace-matched. The workspace emits its own compact JSON (no string
/// escapes near these keys), so this stays a 20-line scanner instead of
/// a parser dependency.
fn json_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":{{");
    let start = json.find(&pat)? + pat.len() - 1;
    let mut depth = 0usize;
    for (i, b) in json.as_bytes()[start..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads the integer value of `"key":N` from a compact JSON object.
fn json_u64(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One client-vs-server percentile comparison.
struct Agreement {
    quantile: &'static str,
    client_us: u64,
    server_us: u64,
    tolerance_us: f64,
    ok: bool,
}

/// Compares one percentile pair: agreement means within 10% of the
/// larger value, or within one log-linear bucket width at that value
/// (both sides quantise into the same layout), with a small absolute
/// floor for sub-millisecond values.
fn compare(quantile: &'static str, client_us: u64, server_us: u64) -> Agreement {
    let big = client_us.max(server_us);
    let (lo, hi) = bucket_bounds(bucket_index(big));
    let tolerance_us = (0.10 * big as f64)
        .max((hi - lo) as f64)
        .max(AGREEMENT_FLOOR_US);
    let delta = client_us.abs_diff(server_us) as f64;
    Agreement {
        quantile,
        client_us,
        server_us,
        tolerance_us,
        ok: delta <= tolerance_us,
    }
}

/// Cross-checks a client summary against the matching server-side ops
/// summary scanned out of the METRICS JSON.
fn check_class(label: &str, client: &Summary, server_obj: &str) -> Vec<Agreement> {
    let server_count = json_u64(server_obj, "count").unwrap_or(0);
    assert_eq!(
        client.count, server_count,
        "{label}: client recorded {} reads but the gateway's ops histogram has {server_count}",
        client.count,
    );
    [
        ("p50", client.p50_us, "p50_us"),
        ("p95", client.p95_us, "p95_us"),
        ("p99", client.p99_us, "p99_us"),
    ]
    .into_iter()
    .map(|(q, client_us, server_key)| {
        let server_us = json_u64(server_obj, server_key)
            .unwrap_or_else(|| panic!("{label}: METRICS ops summary lacks {server_key}"));
        compare(q, client_us, server_us)
    })
    .collect()
}

fn agreement_json(rows: &[Agreement]) -> String {
    let fields: Vec<String> = rows
        .iter()
        .map(|a| {
            format!(
                "\"{}\": {{\"client_us\": {}, \"server_us\": {}, \"tolerance_us\": {}, \"ok\": {}}}",
                a.quantile,
                a.client_us,
                a.server_us,
                f1(a.tolerance_us),
                a.ok
            )
        })
        .collect();
    format!("{{{}}}", fields.join(", "))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let Flags {
        argv,
        fault_text,
        fault_seed,
        trace,
        remote_disks,
    } = parse_args();
    assert!(
        !(remote_disks && fault_text.is_some()),
        "--remote-disks and --fault-plan are mutually exclusive: the \
         chaos pool injects faults on local backends"
    );
    let arg = |n: usize, default: usize| -> usize {
        argv.get(n).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let seconds = arg(1, 10);
    let connections = arg(2, 256);
    let objects = arg(3, 64).max(1);
    let object_len = arg(4, 256).max(1) * 1024;
    let degraded_pct = arg(5, 25).min(100);
    let mode = match argv.get(6).cloned().unwrap_or_else(|| "closed".into()) {
        m if m.starts_with("open:") => Mode::Open(
            m.trim_start_matches("open:")
                .parse()
                .expect("open:RATE with a numeric total requests/s"),
        ),
        _ => Mode::Closed,
    };
    let max_inflight = arg(7, 4096).max(1);
    // A named plan first, else the DSL; the same text+seed replays the
    // same injected faults.
    let fault_plan = fault_text.as_deref().map(|text| {
        Arc::new(
            FaultPlan::named(text, fault_seed)
                .or_else(|_| FaultPlan::parse(text, fault_seed))
                .expect("--fault-plan: not a named plan or parsable DSL"),
        )
    });

    section("gateway load: streamed GETs, zipfian popularity, degraded share");
    println!(
        "{connections} connections x {seconds} s, {objects} objects of {} KiB \
         ({SPEC}, {} KiB chunks), {degraded_pct}% wounded, mode {}",
        object_len / 1024,
        CHUNK_LEN / 1024,
        match mode {
            Mode::Closed => "closed-loop".to_string(),
            Mode::Open(rate) => format!("open-loop at {rate} req/s"),
        }
    );

    let dir = TempDir::new("bench-gateway");
    let base_config = || {
        StoreConfig::new(dir.path().join("store"), SPEC.parse().expect("spec"))
            .chunk_len(CHUNK_LEN)
            .pipeline_workers(1)
    };
    // Remote mode: the pool is real chunkd servers on loopback, so
    // chunk_io spans carry `chunkd://` backends and chunkd-local spans
    // ride back into the gateway's flight recorder.
    let chunk_servers: Vec<ChunkServer> = if remote_disks {
        (0..DISKS)
            .map(|i| {
                ChunkServer::bind_with(
                    dir.path().join(format!("pool-{i:02}")),
                    "127.0.0.1:0",
                    ServerConfig {
                        threads: 2,
                        ..ServerConfig::default()
                    },
                )
                .expect("bind chunkd")
            })
            .collect()
    } else {
        Vec::new()
    };
    let store = Arc::new(match &fault_plan {
        // Chaos mode: every disk is a fault-injected local backend, and
        // the store is hardened — per-op deadline, hedged rebuilds, and
        // the health state machine with its circuit breaker.
        Some(plan) => {
            println!(
                "fault plan {:?} (seed {fault_seed}): hardened store, op deadline {OP_DEADLINE:?}",
                fault_text.as_deref().unwrap_or_default(),
            );
            let disks: Vec<Arc<dyn ChunkBackend>> = (0..DISKS)
                .map(|i| {
                    let inner: Arc<dyn ChunkBackend> =
                        Arc::new(LocalDisk::new(dir.path().join(format!("pool-{i:02}"))));
                    Arc::new(FaultyBackend::new(inner, Arc::clone(plan), i))
                        as Arc<dyn ChunkBackend>
                })
                .collect();
            BlockStore::open_with_backends(
                base_config()
                    .op_deadline(OP_DEADLINE)
                    .hedge_delay(Duration::from_millis(100))
                    .health_policy(HealthPolicy {
                        // Demote fast, probe rarely: each probe of a
                        // stalled disk costs one op deadline, so spacing
                        // them keeps the tail honest.
                        suspect_failures: 2,
                        probe_interval: Duration::from_secs(5),
                        ..HealthPolicy::default()
                    }),
                disks,
                RackMap::per_disk(DISKS),
                PlacementPolicy::Identity,
            )
            .expect("open store")
        }
        None if remote_disks => {
            println!("remote pool: {DISKS} chunkd servers on loopback, traced clients");
            let disks: Vec<Arc<dyn ChunkBackend>> = chunk_servers
                .iter()
                .map(|s| {
                    Arc::new(RemoteDisk::new(s.local_addr().to_string()).traced())
                        as Arc<dyn ChunkBackend>
                })
                .collect();
            BlockStore::open_with_backends(
                base_config(),
                disks,
                RackMap::uniform(DISKS / 2, 2),
                PlacementPolicy::Identity,
            )
            .expect("open store")
        }
        None => BlockStore::open(base_config()).expect("open store"),
    });
    let gateway = Gateway::serve(
        Arc::clone(&store),
        "127.0.0.1:0",
        GatewayConfig {
            workers: thread::available_parallelism().map_or(4, |p| p.get()),
            max_connections: connections + 16,
            in_flight_stripes: 4,
            max_inflight_requests: max_inflight,
            // Default sampling (every anomaly + 1-in-N healthy), but a
            // span buffer sized for this harness's fan-out: hundreds of
            // GETs in flight, each spawning tens of stripe/chunk spans,
            // must not evict each other before their roots finish.
            tracing: trace,
            tracer: TracerConfig {
                ring_capacity: 1 << 16,
                retain_capacity: 256,
                ..TracerConfig::default()
            },
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let addr = gateway.local_addr();

    // Population, ingested through the gateway itself.
    let mut seeder = GatewayClient::connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(0x9a7e_aa7e);
    let payload: Vec<u8> = (0..object_len).map(|_| rng.random()).collect();
    for i in 0..objects {
        seeder
            .put(&format!("obj-{i:04}"), &payload)
            .expect("ingest");
    }
    // Wound the configured fraction: drop one shard's chunks so every
    // read of those objects reconstructs from survivors.
    let wounded = objects * degraded_pct / 100;
    for i in 0..wounded {
        // `disk_path` covers only the all-local `open` layout; the chaos
        // and remote pools name their mounts themselves.
        let disk_root = if fault_plan.is_some() || remote_disks {
            dir.path().join(format!("pool-{WOUNDED_DISK:02}"))
        } else {
            store.disk_path(WOUNDED_DISK)
        };
        fs::remove_dir_all(disk_root.join(format!("obj-{i:04}"))).expect("wound object");
    }
    println!(
        "ingested {objects} objects ({} MiB logical), wounded {wounded}",
        objects * object_len / (1024 * 1024)
    );

    let zipf = Arc::new(Zipf::new(objects, ZIPF_S));
    let stop = Arc::new(AtomicBool::new(false));
    let busy_count = Arc::new(AtomicU64::new(0));
    let error_count = Arc::new(AtomicU64::new(0));
    // The same lock-free histograms the gateway uses server-side: every
    // load thread records straight into the shared pair, and snapshots
    // at the end give counts, exact means, and interpolated percentiles.
    let healthy_hist = Arc::new(LatencyHistogram::new());
    let degraded_hist = Arc::new(LatencyHistogram::new());

    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds as u64);
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let zipf = Arc::clone(&zipf);
            let stop = Arc::clone(&stop);
            let busy_count = Arc::clone(&busy_count);
            let error_count = Arc::clone(&error_count);
            let healthy_hist = Arc::clone(&healthy_hist);
            let degraded_hist = Arc::clone(&degraded_hist);
            thread::spawn(move || {
                let mut client = GatewayClient::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let mut rng = StdRng::seed_from_u64(0xc0ffee ^ c as u64);
                // Open-loop schedule: this connection's share of the rate,
                // staggered so arrivals spread within the first interval.
                let interval = match mode {
                    Mode::Closed => Duration::ZERO,
                    Mode::Open(rate) => Duration::from_secs_f64(connections as f64 / rate),
                };
                let mut next_arrival = start
                    + match mode {
                        Mode::Closed => Duration::ZERO,
                        Mode::Open(_) => interval.mul_f64(c as f64 / connections as f64),
                    };
                loop {
                    let now = Instant::now();
                    if now >= deadline || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let measured_from = match mode {
                        Mode::Closed => now,
                        Mode::Open(_) => {
                            if now < next_arrival {
                                thread::sleep(next_arrival - now);
                            }
                            let scheduled = next_arrival;
                            next_arrival += interval;
                            scheduled
                        }
                    };
                    let name = format!("obj-{:04}", zipf.sample(&mut rng));
                    let mut sink = 0usize;
                    match client.get_streamed(&name, |stripe| sink += stripe.len()) {
                        Ok(degraded_stripes) => {
                            assert!(sink > 0, "empty stream for {name}");
                            let hist = if degraded_stripes > 0 {
                                &degraded_hist
                            } else {
                                &healthy_hist
                            };
                            hist.record(measured_from.elapsed().as_micros() as u64);
                        }
                        Err(GatewayError::Busy) => {
                            busy_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            error_count.fetch_add(1, Ordering::Relaxed);
                            eprintln!("GET {name}: {e}");
                        }
                    }
                }
            })
        })
        .collect();

    for handle in handles {
        handle.join().expect("load thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let healthy = healthy_hist.snapshot();
    let degraded = degraded_hist.snapshot();
    let overall = {
        let mut merged: HistogramSnapshot = healthy.clone();
        merged.merge(&degraded);
        merged
    };
    let requests = overall.count();
    let h = healthy.summary();
    let d = degraded.summary();
    let o = overall.summary();

    let snapshot = gateway.metrics().snapshot();
    let busy = busy_count.load(Ordering::Relaxed);
    let errors = error_count.load(Ordering::Relaxed);
    let req_s = requests as f64 / elapsed;
    let mb_s = (requests as usize * object_len) as f64 / elapsed / (1024.0 * 1024.0);
    let degraded_share = if requests == 0 {
        0.0
    } else {
        d.count as f64 / requests as f64
    };

    println!();
    println!(
        "{:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "class", "reads", "p50 ms", "p95 ms", "p99 ms", "mean ms"
    );
    for (label, s) in [("healthy", &h), ("degraded", &d), ("overall", &o)] {
        println!(
            "{label:>10} {:>8} {:>9} {:>9} {:>9} {:>9}",
            s.count,
            f1(s.p50_us as f64 / 1000.0),
            f1(s.p95_us as f64 / 1000.0),
            f1(s.p99_us as f64 / 1000.0),
            f1(s.mean_us / 1000.0),
        );
    }
    println!();
    println!(
        "throughput: {} req/s, {} MiB/s streamed; degraded share {}%",
        f1(req_s),
        f1(mb_s),
        f1(degraded_share * 100.0)
    );
    println!(
        "gateway: {} stripes served ({} degraded), {} shed, {} refused conns, {} client errors",
        snapshot.stripes_served,
        snapshot.degraded_stripes_served,
        snapshot.requests_shed,
        snapshot.connections_refused,
        errors,
    );
    assert_eq!(
        busy, snapshot.requests_shed,
        "client BUSY count and gateway shed count disagree"
    );
    if errors > 0 {
        eprintln!("WARNING: {errors} failed reads");
    }

    // Chaos contract: the injected faults must actually have fired, no
    // client saw an error, the degraded tail stayed bounded by the op
    // deadline, and a stall plan demoted its victim out of `healthy`.
    let fault_json = match &fault_plan {
        Some(plan) => {
            let plan_text = fault_text.as_deref().unwrap_or_default();
            assert_eq!(errors, 0, "chaos run surfaced client errors");
            assert!(plan.fired() > 0, "the fault plan never fired");
            if d.count > 0 {
                let bound_us = 4 * OP_DEADLINE.as_micros() as u64;
                assert!(
                    d.p99_us <= bound_us,
                    "degraded p99 {}us exceeds the {bound_us}us deadline bound",
                    d.p99_us,
                );
            }
            let health = store.health_snapshot();
            let sick: Vec<String> = health
                .iter()
                .filter(|h| h.state != DiskState::Healthy)
                .map(|h| format!("{{\"disk\": {}, \"state\": \"{}\"}}", h.disk, h.state))
                .collect();
            if plan_text.starts_with("stall-one-disk") {
                assert!(
                    !sick.is_empty(),
                    "the stalled disk was never demoted: {health:?}"
                );
            }
            println!(
                "fault plan fired {} times; non-healthy disks: {}",
                plan.fired(),
                if sick.is_empty() {
                    "none".to_string()
                } else {
                    sick.join(", ")
                }
            );
            format!(
                "{{\"plan\": \"{plan_text}\", \"seed\": {fault_seed}, \
                 \"injections\": {}, \"sick_disks\": [{}]}}",
                plan.fired(),
                sick.join(", ")
            )
        }
        None => "null".to_string(),
    };

    // Server-side view: the versioned METRICS JSON (ops + stage
    // breakdown) and the Prometheus exposition, over the wire like any
    // monitoring agent would fetch them.
    let server_metrics = seeder.metrics().expect("METRICS rpc");
    let prometheus = seeder.prometheus().expect("PROMETHEUS rpc");
    assert!(
        server_metrics.contains("\"schema_version\":2"),
        "METRICS response is not schema v2"
    );
    let ops = json_object(&server_metrics, "ops").expect("METRICS v2 lacks \"ops\"");
    let stages = json_object(&server_metrics, "stages").expect("METRICS v2 lacks \"stages\"");

    // Cross-check: client-observed percentiles vs the gateway's own
    // histograms. Both measure request start → last byte written, so in
    // closed-loop mode they must agree; in open-loop mode the client
    // clock starts at the *scheduled* arrival, which the server cannot
    // see, so the check is reported but not enforced.
    let enforce = matches!(mode, Mode::Closed);
    let mut checks: Vec<(String, String)> = Vec::new();
    println!();
    println!("client vs server percentiles (tolerance: 10% or one bucket):");
    for (label, key, client) in [
        ("healthy", "get_healthy", &h),
        ("degraded", "get_degraded", &d),
    ] {
        let server_obj =
            json_object(ops, key).unwrap_or_else(|| panic!("METRICS ops lacks \"{key}\""));
        let rows = check_class(label, client, server_obj);
        for a in &rows {
            println!(
                "{label:>10} {:>5}: client {} ms, server {} ms ({})",
                a.quantile,
                f1(a.client_us as f64 / 1000.0),
                f1(a.server_us as f64 / 1000.0),
                if a.ok { "agree" } else { "DISAGREE" },
            );
            if enforce && client.count >= AGREEMENT_MIN_SAMPLES {
                assert!(
                    a.ok,
                    "{label} {}: client {}us vs server {}us exceeds tolerance {}us",
                    a.quantile, a.client_us, a.server_us, a.tolerance_us
                );
            }
        }
        checks.push((label.to_string(), agreement_json(&rows)));
    }

    // Stage breakdown straight from the gateway: where a GET's time went.
    println!();
    println!("server-side GET stage p50s (ms):");
    for path in ["healthy_get", "degraded_get"] {
        let path_obj = json_object(stages, path).expect("stage path");
        let mut parts = Vec::new();
        for stage in ["queue", "erasure", "chunk_io", "flush"] {
            let stage_obj = json_object(path_obj, stage).expect("stage summary");
            let p50 = json_u64(stage_obj, "p50_us").unwrap_or(0);
            parts.push(format!("{stage} {}", f1(p50 as f64 / 1000.0)));
        }
        println!("{path:>14}: {}", parts.join(", "));
    }

    // Flight recorder: pull the assembled trees over the wire (the
    // TRACES verb grafts chunkd-local spans in before rendering), write
    // the 10 slowest for Perfetto, and assert the tail-sampling
    // contract — every degraded GET promoted a retained trace, and the
    // retained degraded trees carry real chunk-io work.
    let tracing_json = if trace {
        let wire = seeder.traces().expect("TRACES rpc");
        assert!(
            wire.chrome.starts_with("{\"traceEvents\":["),
            "TRACES chrome payload is not trace_event JSON"
        );
        let tracer = gateway.tracer();
        let mut retained = tracer.retained();
        retained.sort_by_key(|t| std::cmp::Reverse(t.root_dur_us()));
        let slowest = &retained[..retained.len().min(10)];
        fs::write("BENCH_gateway_traces.json", retained_to_chrome(slowest))
            .expect("write BENCH_gateway_traces.json");
        let retained_total = tracer.retained_total();
        assert!(
            retained_total >= d.count,
            "only {retained_total} traces were ever retained, but clients saw \
             {} degraded GETs — a degraded root escaped the flight recorder",
            d.count,
        );
        let mut degraded_trees = 0u64;
        for t in retained
            .iter()
            .filter(|t| t.op == "get" && t.reasons.contains(&"degraded"))
        {
            degraded_trees += 1;
            let io: Vec<_> = t.spans.iter().filter(|s| s.name == "chunk_io").collect();
            assert!(
                !io.is_empty(),
                "retained degraded GET trace {} has no chunk_io spans",
                t.trace,
            );
            if remote_disks {
                assert!(
                    io.iter().any(|s| {
                        s.dur_us > 0 && s.tag("backend").is_some_and(|b| b.contains("chunkd://"))
                    }),
                    "retained degraded GET trace {} lacks a nonzero chunk_io \
                     span on a remote disk",
                    t.trace,
                );
            }
        }
        if d.count > 0 {
            assert!(
                degraded_trees > 0,
                "degraded GETs ran but none survive in the retained buffer"
            );
        }
        println!();
        println!(
            "flight recorder: {retained_total} traces retained over the run, \
             {} live ({degraded_trees} degraded GET trees), slowest root {} ms \
             -> BENCH_gateway_traces.json",
            retained.len(),
            f1(slowest.first().map_or(0, |t| t.root_dur_us()) as f64 / 1000.0),
        );
        format!(
            "{{\"enabled\": true, \"retained_total\": {retained_total}, \
             \"retained_now\": {}, \"degraded_trees_retained\": {degraded_trees}, \
             \"slowest_root_us\": {}}}",
            retained.len(),
            slowest.first().map_or(0, |t| t.root_dur_us()),
        )
    } else {
        "{\"enabled\": false}".to_string()
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"gateway_load\",\n",
            "  \"spec\": \"{spec}\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seconds\": {seconds},\n",
            "  \"connections\": {connections},\n",
            "  \"objects\": {objects},\n",
            "  \"object_bytes\": {object_bytes},\n",
            "  \"degraded_pct_configured\": {degraded_pct},\n",
            "  \"requests\": {requests},\n",
            "  \"req_per_s\": {req_s},\n",
            "  \"mib_per_s\": {mb_s},\n",
            "  \"degraded_share\": {degraded_share},\n",
            "  \"busy_shed\": {busy},\n",
            "  \"client_errors\": {errors},\n",
            "  \"remote_disks\": {remote_disks},\n",
            "  \"tracing\": {tracing},\n",
            "  \"fault\": {fault},\n",
            "  \"healthy\": {healthy},\n",
            "  \"degraded\": {degraded},\n",
            "  \"overall\": {overall},\n",
            "  \"server_agreement\": {{\"enforced\": {enforce}, \"healthy\": {ah}, \"degraded\": {ad}}},\n",
            "  \"server_stages\": {stages},\n",
            "  \"gateway_metrics\": {gw}\n",
            "}}\n"
        ),
        spec = SPEC,
        mode = match mode {
            Mode::Closed => "closed".to_string(),
            Mode::Open(rate) => format!("open:{rate}"),
        },
        seconds = seconds,
        connections = connections,
        objects = objects,
        object_bytes = object_len,
        degraded_pct = degraded_pct,
        requests = requests,
        req_s = f1(req_s),
        mb_s = f1(mb_s),
        degraded_share = f1(degraded_share),
        busy = busy,
        errors = errors,
        remote_disks = remote_disks,
        tracing = tracing_json,
        fault = fault_json,
        healthy = summary_json_ms(&h),
        degraded = summary_json_ms(&d),
        overall = summary_json_ms(&o),
        enforce = enforce,
        ah = checks[0].1,
        ad = checks[1].1,
        stages = stages,
        gw = server_metrics.trim_end(),
    );
    fs::write("BENCH_gateway.json", &json).expect("write BENCH_gateway.json");
    fs::write("BENCH_gateway.prom", &prometheus).expect("write BENCH_gateway.prom");
    println!(
        "Wrote BENCH_gateway.json ({requests} samples) and BENCH_gateway.prom ({} lines).",
        prometheus.lines().count()
    );

    if let Some(plan) = &fault_plan {
        plan.release(); // unpark any executor still inside a stall
    }
    gateway.shutdown();
}
