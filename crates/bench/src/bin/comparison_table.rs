//! Experiment E7 — storage/repair/reliability comparison across schemes:
//! 3-way replication (the cluster's default for hot data), the production
//! RS(10, 4) code, the proposed Piggybacked-RS(10, 4), and an LRC baseline
//! (related work). Quantifies §1's 1.4x-vs-3x storage argument, §3.2's
//! repair-traffic and MTTDL claims, and the related-work claim that LRCs
//! trade storage optimality for repair traffic.

#![forbid(unsafe_code)]

use pbrs_bench::{f2, section};
use pbrs_cluster::reliability::model_for_code;
use pbrs_core::{registry, CodeComparison};
use pbrs_erasure::ErasureCode;
use pbrs_trace::report::to_markdown_table;

fn main() {
    // Every scheme under comparison, selected uniformly through the registry.
    let codes: Vec<registry::DynCode> = ["rep-3", "rs-10-4", "piggyback-10-4", "lrc-10-2-4"]
        .iter()
        .map(|spec| registry::build_str(spec).expect("comparison specs are valid"))
        .collect();

    let comparisons: Vec<(CodeComparison, &dyn ErasureCode)> = codes
        .iter()
        .map(|code| {
            (
                CodeComparison::of(code.as_ref()),
                code.as_ref() as &dyn ErasureCode,
            )
        })
        .collect();

    // Reliability: bandwidth-bound repair times at 40 MB/s per repair, 256 MB
    // blocks, one permanent block loss per 4 years of block-hours.
    let block = 256.0 * 1024.0 * 1024.0;
    let bandwidth = 40.0 * 1024.0 * 1024.0;
    let mtbf_hours = 4.0 * 365.25 * 24.0;

    // Name the active GF backend so throughput-adjacent numbers remain
    // comparable across machines and PBRS_GF_BACKEND overrides.
    section(&format!(
        "Storage, repair and reliability comparison (E7) [gf backend: {}]",
        pbrs_gf::backend::active()
    ));
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|(c, code)| {
            let k = code.params().data_shards() as f64;
            let single_bytes = c.average_blocks_per_repair * block;
            let mttdl = model_for_code(
                code.params().total_shards(),
                code.fault_tolerance(),
                single_bytes,
                k * block,
                bandwidth,
                mtbf_hours,
            );
            vec![
                c.name.clone(),
                format!("{}x", f2(c.storage_overhead)),
                c.fault_tolerance.to_string(),
                if c.is_mds {
                    "yes (storage optimal)"
                } else {
                    "no"
                }
                .to_string(),
                f2(c.average_blocks_per_repair),
                format!("{:.1}%", c.saving_vs_rs() * 100.0),
                format!("{:.1e}", mttdl.stripe_mttdl_years()),
            ]
        })
        .collect();
    print!(
        "{}",
        to_markdown_table(
            &[
                "scheme",
                "storage overhead",
                "failures tolerated",
                "MDS",
                "blocks downloaded per repair",
                "repair saving vs stripe size",
                "per-stripe MTTDL (years)"
            ],
            &rows
        )
    );

    println!();
    println!("claims checked against the paper:");
    println!("  * §1: RS(10,4) needs 1.4x storage vs 3x for replication, for similar reliability.");
    println!("  * §3: Piggybacked-RS keeps the 1.4x MDS storage and the 4-failure tolerance");
    println!("        while cutting repair download by ~30% for data blocks.");
    println!("  * §5: LRC also cuts repair download but is not MDS (1.6x storage here).");
    println!("  * §3.2: faster (smaller) repairs raise the MTTDL of the piggybacked system.");
}
